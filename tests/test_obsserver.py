"""Tests for the live observability plane.

The load-bearing guarantees:

* histograms use one fixed bucket layout, so snapshots from any process
  merge bucket-for-bucket, and quantile estimates stay within a bucket
  width of the truth;
* ``/metrics`` is conformant Prometheus text exposition: the line grammar
  holds, histogram buckets are cumulative and monotone, ``_count`` equals
  the ``+Inf`` bucket and ``_sum`` is consistent;
* ``/status`` is one JSON document carrying campaign progress and
  per-worker health rows; a worker that dies flips to ``lost`` within its
  staleness window;
* the read-only contract: fingerprints are bit-for-bit identical with the
  observability plane on or off, serial and distributed;
* teardown is clean: a scrape racing shutdown gets a 503, never a
  traceback, and closing the server joins its thread with a bound.
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest
from _helpers import loopback_available

from repro.telemetry import JsonlSink, set_sink
from repro.telemetry.live import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    MetricsSink,
    merge_metric_snapshots,
    render_prometheus,
    render_status,
    sanitize_metric_name,
    tail,
)


@pytest.fixture(autouse=True)
def _null_sink_between_tests():
    set_sink(None)
    yield
    set_sink(None)


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_bounds_are_shared_sorted_and_log_spaced(self):
        assert list(BUCKET_BOUNDS) == sorted(BUCKET_BOUNDS)
        assert BUCKET_BOUNDS[0] == pytest.approx(1e-6)
        assert BUCKET_BOUNDS[-1] == pytest.approx(1e9)
        # Four buckets per decade: consecutive ratios ~ 10^(1/4).
        for lower, upper in zip(BUCKET_BOUNDS, BUCKET_BOUNDS[1:]):
            assert upper / lower == pytest.approx(10.0 ** 0.25, rel=1e-3)

    def test_observe_counts_sum_and_overflow(self):
        histogram = Histogram()
        for value in (0.001, 0.001, 0.5, 2.0, 1e12):  # last one: +Inf bucket
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(0.001 + 0.001 + 0.5 + 2.0 + 1e12)
        assert histogram.counts[len(BUCKET_BOUNDS)] == 1  # the overflow slot
        assert sum(histogram.counts) == histogram.count

    def test_snapshot_round_trip_and_merge(self):
        left, right = Histogram(), Histogram()
        for value in (0.01, 0.02, 3.0):
            left.observe(value)
        for value in (0.02, 40.0):
            right.observe(value)
        merged = Histogram.from_snapshot(left.snapshot())
        merged.merge(right.snapshot())
        assert merged.count == 5
        assert merged.sum == pytest.approx(left.sum + right.sum)
        # Bucket-for-bucket: the merge is exact, not a resample.
        for index in range(len(merged.counts)):
            assert merged.counts[index] == left.counts[index] + right.counts[index]

    def test_merge_tolerates_garbage_snapshots(self):
        histogram = Histogram()
        histogram.observe(1.0)
        histogram.merge("not a dict")
        histogram.merge({"buckets": {"abc": "nan", "999999": 3, "-1": 2}, "sum": "x"})
        assert histogram.count == 1

    def test_quantiles_are_bucket_accurate(self):
        histogram = Histogram()
        for _ in range(100):
            histogram.observe(0.010)
        for _ in range(5):
            histogram.observe(10.0)
        p50, p99 = histogram.quantile(0.50), histogram.quantile(0.99)
        # The true p50 is 0.010; a bucket spans ~1.78x, so the estimate
        # must land inside the bucket containing 0.010.
        assert 0.0056 <= p50 <= 0.0178
        assert 5.6 <= p99 <= 17.8
        assert Histogram().quantile(0.5) == 0.0

    def test_registry_merges_and_copies(self):
        registry = MetricsRegistry()
        registry.incr("hits", 2)
        registry.gauge("depth", 7.0)
        registry.observe("lat", 0.5)
        other = Histogram()
        other.observe(0.5)
        registry.merge_histogram("lat", other.snapshot())
        assert registry.histogram("lat").count == 2
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"hits": 2}
        assert snapshot["gauges"] == {"depth": 7.0}
        assert snapshot["histograms"]["lat"]["count"] == 2
        # histogram() returns a copy: mutating it must not leak back
        registry.histogram("lat").observe(1.0)
        assert registry.histogram("lat").count == 2

    def test_metrics_sink_spans_feed_histograms(self):
        sink = MetricsSink()
        with sink.span("stage.compile") as span:
            span.set(anything=1)  # must be accepted and ignored
        sink.incr("engine.evaluated", 3)
        sink.gauge("fleet.size", 2)
        snapshot = sink.metrics_snapshot()
        assert snapshot["histograms"]["stage.compile.seconds"]["count"] == 1
        assert snapshot["counters"] == {"engine.evaluated": 3}
        assert snapshot["gauges"] == {"fleet.size": 2}

    def test_jsonl_sink_records_histograms_in_close_snapshot(self, tmp_path):
        with JsonlSink(tmp_path, flush_every=1) as sink:
            with sink.span("stage.compile"):
                pass
            with sink.span("stage.compile"):
                pass
        records = [
            json.loads(line)
            for path in tmp_path.glob("*.jsonl")
            for line in path.read_text().splitlines()
        ]
        (metrics,) = [r for r in records if r.get("type") == "metrics"]
        assert metrics["histograms"]["stage.compile.seconds"]["count"] == 2


# ---------------------------------------------------------------------------
# Prometheus text exposition conformance
# ---------------------------------------------------------------------------

_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le=\"[^\"]+\"\})? "
    r"(-?\d+(\.\d+)?([eE][+-]?\d+)?|NaN|[+-]Inf)$"
)
_COMMENT_LINE = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


def _assert_prometheus_conformant(text: str) -> None:
    """A strict line-level parse of the text exposition format."""
    assert text.endswith("\n")
    series = {}
    for line in text.splitlines():
        if line.startswith("#"):
            assert _COMMENT_LINE.match(line), f"bad comment line: {line!r}"
            continue
        assert _METRIC_LINE.match(line), f"bad metric line: {line!r}"
        name_and_labels, value = line.rsplit(" ", 1)
        series[name_and_labels] = float(value)
    # Histogram families: cumulative monotone buckets, consistent _count.
    families = {
        match.group(1)
        for key in series
        for match in [re.match(r"^(.*)_bucket\{", key)]
        if match
    }
    for family in families:
        buckets = []
        for key, value in series.items():
            match = re.match(rf'^{re.escape(family)}_bucket\{{le="([^"]+)"\}}$', key)
            if match:
                bound = float("inf") if match.group(1) == "+Inf" else float(match.group(1))
                buckets.append((bound, value))
        buckets.sort()
        assert buckets[-1][0] == float("inf"), f"{family}: no +Inf bucket"
        counts = [count for _bound, count in buckets]
        assert counts == sorted(counts), f"{family}: buckets not cumulative"
        assert series[f"{family}_count"] == counts[-1]
        assert f"{family}_sum" in series


class TestPrometheusExposition:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("stage.compile.seconds") == "stage_compile_seconds"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("a-b c") == "a_b_c"

    def test_render_is_conformant_and_complete(self):
        registry = MetricsRegistry()
        registry.incr("artifact.memory_hits", 12)
        registry.gauge("fleet.workers.healthy", 2)
        for value in (0.001, 0.02, 0.02, 3.0, 1e12):
            registry.observe("stage.compile.seconds", value)
        text = render_prometheus(registry.snapshot())
        _assert_prometheus_conformant(text)
        assert "artifact_memory_hits_total 12" in text
        assert "fleet_workers_healthy 2" in text
        assert 'stage_compile_seconds_bucket{le="+Inf"} 5' in text
        assert "stage_compile_seconds_count 5" in text
        # every non-empty bucket is cumulative: the le="1" bucket holds the
        # three sub-second observations
        assert 'stage_compile_seconds_bucket{le="1"} 3' in text

    def test_counter_total_suffix_not_doubled(self):
        registry = MetricsRegistry()
        registry.incr("requests_total", 1)
        text = render_prometheus(registry.snapshot())
        assert "requests_total 1" in text
        assert "requests_total_total" not in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_merge_snapshots_adds_counters_merges_histograms(self):
        a = MetricsRegistry()
        a.incr("hits", 2)
        a.observe("lat.seconds", 0.1)
        b = MetricsRegistry()
        b.incr("hits", 3)
        b.observe("lat.seconds", 0.2)
        b.gauge("depth", 9)
        merged = merge_metric_snapshots([a.snapshot(), b.snapshot(), "junk"])
        assert merged["counters"]["hits"] == 5
        assert merged["gauges"]["depth"] == 9
        assert merged["histograms"]["lat.seconds"]["count"] == 2


# ---------------------------------------------------------------------------
# the HTTP server (loopback-gated from here down)
# ---------------------------------------------------------------------------

needs_loopback = pytest.mark.skipif(
    not loopback_available(), reason="no AF_INET loopback in this sandbox"
)


def _get(url: str, timeout: float = 5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


@needs_loopback
class TestObservabilityServer:
    def test_metrics_and_status_round_trip(self):
        from repro.distrib.obsserver import ObservabilityServer

        sink = MetricsSink()
        set_sink(sink)
        with sink.span("stage.compile"):
            pass
        sink.incr("engine.evaluated", 4)
        with ObservabilityServer() as server:
            server.add_source("campaign", lambda: {"name": "t", "state": "running"})
            code, text = _get(server.url() + "/metrics")
            assert code == 200
            _assert_prometheus_conformant(text)
            assert "stage_compile_seconds_bucket" in text
            assert "engine_evaluated_total 4" in text
            code, body = _get(server.url() + "/status")
            status = json.loads(body)
            assert status["campaign"] == {"name": "t", "state": "running"}
            assert status["stages"]["stage.compile"]["count"] == 1
            assert status["errors"] == 0

    def test_broken_source_returns_500_and_counts(self):
        from repro.distrib.obsserver import ObservabilityServer

        with ObservabilityServer() as server:
            server.add_metrics_source(lambda: 1 / 0)
            code, text = _get(server.url() + "/metrics")
            # a broken *metrics source* is skipped, the scrape still succeeds
            assert code == 200
            assert "obs_errors_total 1" in text
            # a broken *status source* degrades to an error section
            server.add_source("bad", lambda: 1 / 0)
            code, body = _get(server.url() + "/status")
            assert code == 200
            assert "ZeroDivisionError" in json.loads(body)["bad"]["error"]

    def test_unknown_path_404(self):
        from repro.distrib.obsserver import ObservabilityServer

        with ObservabilityServer() as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url() + "/nope")
            assert excinfo.value.code == 404

    def test_begin_shutdown_serves_clean_503(self):
        from repro.distrib.obsserver import ObservabilityServer

        server = ObservabilityServer()
        try:
            url = server.url()
            # the teardown race: backing state is going away, server not yet
            server.begin_shutdown()
            for path in ("/status", "/metrics"):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _get(url + path)
                assert excinfo.value.code == 503
        finally:
            server.close()

    def test_close_joins_thread_bounded_and_is_idempotent(self):
        from repro.distrib.obsserver import ObservabilityServer

        server = ObservabilityServer()
        url = server.url()
        started = time.monotonic()
        server.close(timeout=2.0)
        assert time.monotonic() - started < 5.0
        assert not server._thread.is_alive()
        server.close()  # second close: no-op, no error
        # after close the port no longer answers
        with pytest.raises((urllib.error.URLError, OSError)):
            _get(url + "/status", timeout=0.5)


# ---------------------------------------------------------------------------
# the tail / --live rendering
# ---------------------------------------------------------------------------

class TestTail:
    STATUS = {
        "campaign": {
            "name": "demo", "state": "running", "jobs_total": 2,
            "jobs_completed": 1, "generations_total": 10,
            "current": {"family": "llvm", "program": "mcf",
                        "generation": 3, "best_fitness": 0.91},
        },
        "stages": {"stage.compile": {"count": 5, "p50": 0.01, "p95": 0.02, "p99": 0.03}},
        "fleet": [
            {"worker_id": 1, "peer": "a:1", "health": "healthy", "slots": 2,
             "batches": 4, "busy_ratio": 0.5, "straggler": False},
            {"worker_id": 2, "peer": "b:2", "health": "lost", "slots": 1,
             "batches": 1, "busy_ratio": 0.1, "straggler": True},
        ],
    }

    def test_render_status_lines(self):
        text = render_status(self.STATUS)
        assert "campaign demo: job 1/2 llvm/mcf gen 3 best 0.9100" in text
        assert "stage.compile p95 20.0ms" in text
        assert "[+] worker 1 a:1 healthy slots 2 batches 4 busy 50%" in text
        assert "[x] worker 2 b:2 lost STRAGGLER" in text

    def test_render_status_rate_from_previous_poll(self):
        previous = json.loads(json.dumps(self.STATUS))
        previous["campaign"]["generations_total"] = 4
        text = render_status(self.STATUS, previous, elapsed=2.0)
        assert "(3.00 gen/s)" in text

    def test_render_empty_status(self):
        assert render_status({}) == "(no status yet)"

    def test_tail_stops_when_campaign_finishes(self):
        import io

        polls = iter([
            dict(self.STATUS),
            {"campaign": {"name": "demo", "state": "finished"}},
        ])
        stream = io.StringIO()
        rc = tail("127.0.0.1:1", interval=0.0, stream=stream,
                  fetch=lambda url: next(polls))
        assert rc == 0
        assert "[finished]" in stream.getvalue()

    def test_tail_reports_server_gone_after_connect(self):
        import io

        calls = {"n": 0}

        def fetch(url):
            calls["n"] += 1
            if calls["n"] == 1:
                return dict(self.STATUS)
            raise OSError("refused")

        stream = io.StringIO()
        assert tail("127.0.0.1:1", interval=0.0, stream=stream, fetch=fetch) == 0
        assert "run over?" in stream.getvalue()

    def test_tail_fails_when_never_connected(self):
        import io

        def fetch(url):
            raise OSError("refused")

        stream = io.StringIO()
        rc = tail("127.0.0.1:1", interval=0.0, stream=stream, fetch=fetch,
                  max_polls=3)
        assert rc == 1
        assert "waiting for" in stream.getvalue()


# ---------------------------------------------------------------------------
# worker health tracking (coordinator-side)
# ---------------------------------------------------------------------------

def _wait_until(predicate, timeout: float = 5.0, interval: float = 0.05) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@needs_loopback
class TestWorkerHealth:
    def _handshake(self, coordinator, heartbeat_interval: float = 0.0):
        """A hand-rolled worker: registers, then goes silent on command."""
        from repro.distrib import protocol

        sock = socket.create_connection(coordinator.address, timeout=5.0)
        protocol.send_message(
            sock, protocol.Hello(slots=1, heartbeat_interval=heartbeat_interval)
        )
        welcome = protocol.recv_message(sock)
        assert welcome.worker_id >= 1
        return sock, welcome.worker_id

    def test_silent_worker_ages_healthy_to_stale_to_lost(self):
        from repro.distrib import Coordinator

        with Coordinator(stale_after=0.25, lost_after=0.6) as coordinator:
            sock, worker_id = self._handshake(coordinator)
            try:
                assert coordinator.worker_health() == {worker_id: "healthy"}
                assert _wait_until(
                    lambda: coordinator.worker_health()[worker_id] == "stale",
                    timeout=2.0,
                )
                assert _wait_until(
                    lambda: coordinator.worker_health()[worker_id] == "lost",
                    timeout=2.0,
                )
                (row,) = coordinator.fleet_status()
                assert row["health"] == "lost"
                assert row["last_seen_age_seconds"] >= 0.6
            finally:
                sock.close()

    def test_heartbeats_keep_an_idle_worker_healthy(self):
        import test_distrib
        from repro.distrib import Coordinator

        with Coordinator(stale_after=0.5, lost_after=2.0) as coordinator:
            with test_distrib.thread_workers(
                coordinator, 1, heartbeat_interval=0.1
            ):
                # Long past the stale window, but heartbeats flow: the idle
                # probe must see them and refresh last_seen.
                time.sleep(1.0)
                (row,) = coordinator.fleet_status()
                assert row["health"] == "healthy"

    def test_killed_worker_flips_to_lost_and_metrics_follow(self):
        from repro.distrib import Coordinator

        with Coordinator() as coordinator:
            sock, worker_id = self._handshake(coordinator, heartbeat_interval=0.2)
            assert coordinator.worker_health() == {worker_id: "healthy"}
            sock.close()  # the kill: EOF on an idle socket
            assert _wait_until(
                lambda: coordinator.worker_health().get(worker_id) == "lost",
                timeout=5.0,
            )
            # the row survives the discard, marked lost for the postmortem
            (row,) = coordinator.fleet_status()
            assert row["health"] == "lost"
            assert coordinator.worker_count() == 0
            gauges = coordinator.fleet_metrics()["gauges"]
            assert gauges["fleet.workers.lost"] == 1
            assert gauges["fleet.workers.healthy"] == 0

    def test_straggler_detection_flags_slow_ewma(self):
        from repro.distrib.coordinator import Coordinator, WorkerHandle

        coordinator = Coordinator.__new__(Coordinator)  # no sockets needed
        fast = WorkerHandle(1, None, 1, "a:1")
        slow = WorkerHandle(2, None, 1, "b:2")
        other = WorkerHandle(3, None, 1, "c:3")
        fast.ewma_task_seconds = 0.1
        other.ewma_task_seconds = 0.12
        slow.ewma_task_seconds = 0.9  # > 2x the fleet median
        assert coordinator._stragglers([fast, slow, other]) == {2}
        # a single reporting worker is never a straggler (no fleet to lag)
        assert coordinator._stragglers([slow]) == set()

    def test_fleet_rows_and_batch_histogram_after_real_batches(self):
        import test_distrib
        from repro.distrib import Coordinator, DistributedMapper

        with Coordinator(obs_port=0) as coordinator:
            with test_distrib.thread_workers(coordinator, 2, heartbeat_interval=0.1):
                mapper = DistributedMapper(
                    coordinator, test_distrib.FakeEvaluator()
                )
                results = mapper.map([("a",), ("b", "c"), ("d",), ("e", "f")])
                assert [r.fitness for r in results] == [1.0, 2.0, 1.0, 2.0]
                rows = coordinator.fleet_status()
                assert len(rows) == 2
                assert all(row["health"] == "healthy" for row in rows)
                assert sum(row["batches"] for row in rows) >= 2
                for row in rows:
                    assert 0.0 <= row["busy_ratio"] <= 1.0
                    assert row["straggler"] in (False, True)
                # the fleet-merged worker.batch histogram reached /metrics
                code, text = _get(coordinator.obs_server.url() + "/metrics")
                assert code == 200
                _assert_prometheus_conformant(text)
                assert "worker_batch_seconds_bucket" in text
                assert "fleet_workers_healthy 2" in text
                # and /status carries the same rows
                code, body = _get(coordinator.obs_server.url() + "/status")
                fleet = json.loads(body)["fleet"]
                assert [row["worker_id"] for row in fleet] == [1, 2]

    def test_coordinator_close_closes_obs_server(self):
        from repro.distrib import Coordinator

        coordinator = Coordinator(obs_port=0)
        url = coordinator.obs_server.url()
        code, _body = _get(url + "/status")
        assert code == 200
        coordinator.close()
        with pytest.raises((urllib.error.URLError, OSError)):
            _get(url + "/status", timeout=0.5)


# ---------------------------------------------------------------------------
# the read-only contract: observability on == off, bit for bit
# ---------------------------------------------------------------------------

from repro.campaign import Campaign, SharedWorkerPool  # noqa: E402


@needs_loopback
class TestObservabilityParity:
    def test_serial_fingerprint_identical_with_live_plane(self):
        import test_distrib
        from repro.distrib.obsserver import ObservabilityServer

        plain = Campaign(
            test_distrib.JOBS, test_distrib.tiny_campaign_config(),
            spec_provider=test_distrib.tiny_spec,
        ).run()
        set_sink(MetricsSink())
        try:
            with ObservabilityServer() as server:
                observed = Campaign(
                    test_distrib.JOBS, test_distrib.tiny_campaign_config(),
                    spec_provider=test_distrib.tiny_spec,
                ).run()
                code, text = _get(server.url() + "/metrics")
        finally:
            set_sink(None)
        assert observed.fingerprint() == plain.fingerprint()
        assert (observed.database.record_signatures()
                == plain.database.record_signatures())
        # the scrape really observed the run it rode along with
        assert code == 200
        assert "engine_generation_seconds_count" in text

    def test_distributed_fingerprint_identical_with_obs_server(self):
        import test_distrib

        serial = Campaign(
            test_distrib.JOBS, test_distrib.tiny_campaign_config(),
            spec_provider=test_distrib.tiny_spec,
        ).run()
        pool = SharedWorkerPool(dispatch="distributed", obs_port=0)
        try:
            with test_distrib.thread_workers(pool.coordinator, 2):
                distributed = Campaign(
                    test_distrib.JOBS,
                    test_distrib.tiny_campaign_config(dispatch="distributed"),
                    spec_provider=test_distrib.tiny_spec,
                ).run(pool=pool)
                code, body = _get(pool.obs_server.url() + "/status")
                fleet_rows = pool.fleet_status()
        finally:
            pool.close()
        assert distributed.fingerprint() == serial.fingerprint()
        assert (distributed.database.record_signatures()
                == serial.database.record_signatures())
        assert code == 200
        status = json.loads(body)
        assert len(status["fleet"]) == 2
        assert len(fleet_rows) == 2
        assert all(row["health"] in ("healthy", "stale") for row in fleet_rows)

    def test_campaign_progress_reaches_status_endpoint(self):
        import test_distrib
        from repro.distrib.obsserver import ObservabilityServer

        campaign = Campaign(
            test_distrib.JOBS, test_distrib.tiny_campaign_config(),
            spec_provider=test_distrib.tiny_spec,
        )
        seen: list = []
        with ObservabilityServer() as server:
            server.add_source("campaign", campaign.progress.snapshot)
            url = server.url()
            poller_stop = threading.Event()

            def poll():
                while not poller_stop.is_set():
                    _code, body = _get(url + "/status")
                    seen.append(json.loads(body)["campaign"])
                    time.sleep(0.01)

            poller = threading.Thread(target=poll, daemon=True)
            poller.start()
            result = campaign.run()
            poller_stop.set()
            poller.join(timeout=5.0)
        states = {snapshot["state"] for snapshot in seen}
        assert "running" in states
        final = campaign.progress.snapshot()
        assert final["state"] == "finished"
        assert final["jobs_completed"] == len(test_distrib.JOBS)
        assert final["generations_total"] > 0
        assert result.fingerprint()  # the run itself completed normally

    def test_cli_obs_port_and_live_smoke(self, tmp_path, capsys):
        from repro.campaign.cli import main

        rc = main([
            "--benchmarks", "462.libquantum",
            "--families", "llvm",
            "--max-iterations", "8",
            "--population", "6",
            "--obs-port", "0",
            "--live",
            "--json", str(tmp_path / "summary.json"),
            "--quiet",
        ])
        assert rc == 0
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["fingerprint"]
        # the sink installed for the live plane was restored afterwards
        from repro.telemetry import NULL_SINK, get_sink

        assert get_sink() is NULL_SINK
