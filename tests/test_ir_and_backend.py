"""Tests for the IR (builder, CFG, dataflow, verifier) and the backend
(ISA encode/decode, register allocation, codegen, linking, emulation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import disassemble, run_function, run_program
from repro.backend import (
    BinaryImage,
    CodegenOptions,
    MachInstr,
    OPCODES,
    decode_instruction,
    decode_stream,
    encode_instruction,
    link_module,
)
from repro.backend.isa import OPCODES_BY_NAME
from repro.backend.regalloc import TEMP_REGISTERS, allocate_registers
from repro.ir import (
    ConstInt,
    IRVerificationError,
    Temp,
    build_module,
    natural_loops,
    predecessors_map,
    reachable_blocks,
    reverse_postorder,
    verify_function,
    verify_module,
)
from repro.ir.dataflow import block_liveness, temp_definitions, temp_uses
from repro.ir.values import wrap64
from repro.minic import parse_program


class TestIRBuilder:
    def test_all_functions_lowered(self, sample_module):
        assert set(sample_module.function_names()) >= {"main", "fib", "classify", "scale"}

    def test_module_verifies(self, sample_module):
        assert verify_module(sample_module)

    def test_globals_present_with_sizes(self, sample_module):
        assert sample_module.globals["table"].size == 32
        assert sample_module.globals["primes"].init[:3] == [2, 3, 5]

    def test_string_literal_interned_once(self):
        module = build_module(parse_program(
            'int b[8]; int main() { strcpy(b, "xyz"); strcpy(b, "xyz"); return 0; }'
        ))
        strings = [g for g in module.globals.values() if g.is_string]
        assert len(strings) == 1
        assert strings[0].init == [ord("x"), ord("y"), ord("z"), 0]

    def test_switch_lowered_to_switch_terminator(self, sample_module):
        from repro.ir.instructions import Switch

        classify = sample_module.function("classify")
        assert any(isinstance(i, Switch) for i in classify.instructions())

    def test_loop_structure_recovered(self, sample_module):
        loops = natural_loops(sample_module.function("sum_to"))
        assert len(loops) == 1

    def test_every_block_terminated(self, sample_module):
        for fn in sample_module.functions.values():
            for block in fn.blocks.values():
                assert block.is_terminated()

    def test_temp_single_assignment(self, sample_module):
        for fn in sample_module.functions.values():
            seen = set()
            for instr in fn.instructions():
                for temp in instr.defs():
                    assert temp.name not in seen
                    seen.add(temp.name)

    def test_short_circuit_creates_branches(self):
        module = build_module(parse_program(
            "int main() { int a = 3; int b = 4; return a > 1 && b < 9; }"
        ))
        assert len(module.function("main").blocks) >= 3


class TestCFGAndDataflow:
    def test_reachability_and_rpo(self, sample_module):
        main = sample_module.function("main")
        reachable = reachable_blocks(main)
        assert main.entry in reachable
        rpo = reverse_postorder(main)
        assert rpo[0] == main.entry
        assert set(rpo) == reachable

    def test_predecessors_consistent_with_successors(self, sample_module):
        from repro.ir import successors

        main = sample_module.function("main")
        preds = predecessors_map(main)
        for label in main.blocks:
            for succ in successors(main, label):
                assert label in preds[succ]

    def test_temp_definitions_and_uses(self, sample_module):
        main = sample_module.function("main")
        defs = temp_definitions(main)
        uses = temp_uses(main)
        assert set(uses) <= set(defs)

    def test_liveness_contains_loop_counter(self, sample_module):
        sum_to = sample_module.function("sum_to")
        live = block_liveness(sum_to)
        assert any("i" in variables for variables in live.values())

    def test_verifier_rejects_missing_target(self, sample_module):
        from repro.ir.instructions import Jump

        broken = sample_module.function("square").clone()
        broken.entry_block().instructions[-1] = Jump("nowhere")
        with pytest.raises(IRVerificationError):
            verify_function(broken)

    def test_verifier_rejects_double_definition(self, sample_module):
        from repro.ir.instructions import Move

        broken = sample_module.function("square").clone()
        temp = next(iter(broken.instructions())).defs() or [Temp("t1")]
        broken.entry_block().instructions.insert(0, Move(temp[0], ConstInt(1)))
        broken.entry_block().instructions.insert(0, Move(temp[0], ConstInt(2)))
        with pytest.raises(IRVerificationError):
            verify_function(broken)


class TestISA:
    def test_every_opcode_roundtrips(self):
        for spec in OPCODES.values():
            operands = []
            for fmt in spec.operands:
                operands.append(3 if fmt in ("r", "v", "u8") else -7)
            instr = MachInstr(spec.name, operands)
            data = encode_instruction(instr)
            decoded, size = decode_instruction(data)
            assert size == len(data) == spec.size
            assert decoded.name == spec.name
            assert decoded.operands == operands

    def test_decode_stream_reports_offsets(self):
        code = encode_instruction(MachInstr("movis", [1, 5])) + encode_instruction(MachInstr("ret", []))
        stream = decode_stream(code)
        assert [offset for offset, _ in stream] == [0, 4]

    def test_unknown_opcode_rejected(self):
        with pytest.raises(Exception):
            decode_instruction(bytes([0xEE]))

    def test_immediate_overflow_rejected(self):
        with pytest.raises(Exception):
            encode_instruction(MachInstr("movis", [0, 1 << 20]))

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_movi_roundtrips_any_64bit_value(self, value):
        data = encode_instruction(MachInstr("movi", [4, value]))
        decoded, _ = decode_instruction(data)
        assert decoded.operands[1] == value

    @given(st.integers())
    def test_wrap64_is_idempotent_and_in_range(self, value):
        wrapped = wrap64(value)
        assert -(2**63) <= wrapped < 2**63
        assert wrap64(wrapped) == wrapped


class TestRegisterAllocation:
    def test_disabled_allocation_spills_everything(self, sample_module):
        assignment = allocate_registers(sample_module.function("main"), enable=False)
        assert not assignment.registers
        assert assignment.spill_count() > 0

    def test_enabled_allocation_uses_temp_registers_only(self, sample_module):
        assignment = allocate_registers(sample_module.function("main"), enable=True)
        assert assignment.registers
        assert set(assignment.registers.values()) <= set(TEMP_REGISTERS)

    def test_no_temp_both_spilled_and_registered(self, sample_module):
        assignment = allocate_registers(sample_module.function("main"), enable=True)
        assert not (set(assignment.registers) & set(assignment.spills))

    def test_block_local_temps_do_not_conflict(self, sample_module):
        """Two temps sharing a register must have disjoint intervals."""
        from repro.backend.regalloc import _live_intervals

        function = sample_module.function("main")
        assignment = allocate_registers(function, enable=True)
        intervals = _live_intervals(function)
        by_register = {}
        for name, register in assignment.registers.items():
            by_register.setdefault(register, []).append(intervals[name])
        for spans in by_register.values():
            spans.sort()
            for (start_a, end_a), (start_b, end_b) in zip(spans, spans[1:]):
                assert end_a <= start_b or end_b <= start_a or (start_a, end_a) == (start_b, end_b) or end_a < start_b or start_b >= end_a


class TestCodegenAndLinker:
    def test_image_sections_and_symbols(self, sample_module):
        image = link_module(sample_module.clone(), options=CodegenOptions(), name="sample")
        assert image.code_size() > 0
        assert {s.name for s in image.function_symbols()} >= {"main", "fib"}
        assert image.entry_point == image.symbol("main").offset

    def test_o0_style_code_is_larger(self, sample_module):
        o0 = link_module(sample_module.clone(), options=CodegenOptions(regalloc=False, short_immediates=False,
                                                                       machine_peephole=False), name="s")
        o1 = link_module(sample_module.clone(), options=CodegenOptions(), name="s")
        assert o0.code_size() > o1.code_size()

    def test_function_alignment_is_honoured(self, sample_module):
        image = link_module(sample_module.clone(), options=CodegenOptions(align_functions=16), name="s")
        for symbol in image.function_symbols():
            assert symbol.offset % 16 == 0

    def test_image_serialization_roundtrip(self, sample_images_llvm):
        image = sample_images_llvm["O2"]
        restored = BinaryImage.from_bytes(image.to_bytes())
        assert restored.text == image.text
        assert restored.sha256() == image.sha256()
        assert [s.name for s in restored.symbols] == [s.name for s in image.symbols]

    def test_text_fully_decodable(self, sample_images_llvm):
        for image in sample_images_llvm.values():
            stream = decode_stream(image.text)
            assert sum(instr.size for _, instr in stream) == len(image.text)

    def test_metadata_records_provenance(self, sample_images_llvm):
        assert sample_images_llvm["O3"].metadata["compiler_family"] == "llvm"


class TestEmulator:
    def test_program_output_and_return(self, sample_images_llvm):
        result = run_program(sample_images_llvm["O0"])
        assert result.output_text.count("\n") >= 2
        assert 0 <= result.return_value < 127

    def test_function_level_execution(self, sample_images_llvm):
        result = run_function(sample_images_llvm["O2"], "square", [9])
        assert result.return_value == 81

    def test_recursive_function(self, sample_images_llvm):
        assert run_function(sample_images_llvm["O2"], "fib", [10]).return_value == 55

    def test_builtin_min_max_abs(self, llvm):
        source = "int main() { print_int(min(3, -5)); print_int(max(3, -5)); print_int(abs(-9)); return 0; }"
        image = llvm.compile_level(source, "O1", name="builtins").image
        assert run_program(image).output_text.split() == ["-5", "3", "9"]

    def test_read_int_inputs(self, llvm):
        source = "int main() { int a = read_int(); int b = read_int(); return a + b; }"
        image = llvm.compile_level(source, "O1", name="inputs").image
        assert run_program(image, inputs=[30, 12]).return_value == 42

    def test_division_semantics_match_c(self, llvm):
        source = "int main() { print_int(-7 / 2); print_int(-7 % 2); print_int(7 / -2); return 0; }"
        image = llvm.compile_level(source, "O0", name="div").image
        assert run_program(image).output_text.split() == ["-3", "-1", "-3"]

    def test_step_limit_detects_runaway(self, llvm):
        source = "int main() { int i = 0; while (1) { i += 1; } return i; }"
        image = llvm.compile_level(source, "O0", name="loop").image
        from repro.analysis import EmulationLimitExceeded

        with pytest.raises(EmulationLimitExceeded):
            run_program(image, max_steps=5000)

    def test_exit_builtin_halts(self, llvm):
        source = "int main() { exit(7); return 1; }"
        image = llvm.compile_level(source, "O1", name="exit").image
        result = run_program(image)
        assert result.exited and result.exit_code == 7

    def test_cycles_accumulate(self, sample_images_llvm):
        assert run_program(sample_images_llvm["O0"]).cycles > run_program(sample_images_llvm["O3"]).cycles * 0  # non-zero
        assert run_program(sample_images_llvm["O0"]).cycles > 0


class TestDisassembler:
    def test_functions_and_blocks_recovered(self, sample_images_llvm):
        program = disassemble(sample_images_llvm["O2"])
        assert set(program.functions) >= {"main", "fib", "classify"}
        assert all(fn.block_count >= 1 for fn in program.functions.values())

    def test_cfg_edges_within_function(self, sample_images_llvm):
        program = disassemble(sample_images_llvm["O2"])
        for fn in program.functions.values():
            for block in fn.blocks.values():
                for successor in block.successors:
                    assert fn.start <= successor < fn.end

    def test_call_graph_contains_recursion_and_calls(self, sample_images_llvm):
        program = disassemble(sample_images_llvm["O1"])
        graph = program.call_graph()
        assert graph.has_edge("fib", "fib")
        assert graph.has_edge("main", "scale") or graph.has_edge("main", "sum_to")

    def test_optimization_changes_block_counts(self, sample_images_llvm):
        o0 = disassemble(sample_images_llvm["O0"]).total_blocks()
        o3 = disassemble(sample_images_llvm["O3"]).total_blocks()
        assert o0 != o3
