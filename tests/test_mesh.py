"""Tests for the artifact mesh and the distrib hang/validation fixes.

The load-bearing guarantees:

* the worker's connect **and** handshake are bounded by a deadline: a
  bound-but-never-accepting coordinator (the historical forever-hang) fails
  the attempt with :data:`CONNECTION_LOST_STATUS` so ``--reconnect`` can
  back off and retry;
* a bogus ``Hello.slots`` claim (zero, negative, bool, or absurdly large)
  is rejected at the door without taking the accept loop down;
* the coordinator's artifact plane absorbs pushed tier-2 entries and serves
  fetches chunked, verifying every payload — a tampered, corrupt, or
  aliased transfer reads as a *miss* on every reader, never a wrong
  artifact, and per-machine byte budgets hold server-side;
* end to end, a second machine joining with an **empty** local store is
  warm from the first machine's pushed work: zero redundant compiles, mesh
  hits accounted on every result, and a fingerprint identical to serial.

All socket tests bind loopback only and skip cleanly on sandboxes without
AF_INET loopback (same gate as ``test_distrib``).
"""

from __future__ import annotations

import socket
import time

import pytest
from _helpers import fresh_process_state, loopback_available

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="no AF_INET loopback in this sandbox"
)

from repro.campaign import Campaign, SharedWorkerPool  # noqa: E402
from repro.distrib import (  # noqa: E402
    ConnectionClosed,
    Coordinator,
    DistributedMapper,
)
from repro.distrib import artifacts, protocol  # noqa: E402
from repro.distrib.artifacts import (  # noqa: E402
    CoordinatorArtifactPlane,
    handle_artifact_message,
)
from repro.distrib.coordinator import MAX_WORKER_SLOTS  # noqa: E402
from repro.distrib.worker import (  # noqa: E402
    CONNECTION_LOST_STATUS,
    run_worker,
    serve,
)
from repro.tuner.store import ArtifactStore  # noqa: E402
from test_distrib import (  # noqa: E402
    JOBS,
    TINY_A,
    thread_workers,
    tiny_campaign_config,
    tiny_spec,
)


def _staged_evaluator(llvm, store_dir=None):
    from repro.tuner import StagedCandidateEvaluator

    baseline = llvm.compile_level(TINY_A, "O0", name="tiny").image
    return StagedCandidateEvaluator(
        compiler=llvm, source=TINY_A, name="tiny", baseline=baseline,
        store_dir=str(store_dir) if store_dir is not None else None,
    )


def _free_port() -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


# ---------------------------------------------------------------------------
# the connect/handshake deadline (the hang bugfix)
# ---------------------------------------------------------------------------

class TestConnectTimeout:
    def test_never_accepting_coordinator_fails_within_the_deadline(self):
        """The regression: a socket that is bound and listening but never
        accepts (a wedged coordinator, a firewall blackhole's cousin) used
        to hang the worker in ``recv`` forever.  Now the handshake deadline
        fires and the session ends with the *retryable* status."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(8)  # the kernel completes the TCP handshake...
            port = listener.getsockname()[1]
            start = time.monotonic()
            # ...but no Welcome ever comes: the worker must not wait forever.
            status = serve(
                f"127.0.0.1:{port}", connect_timeout=0.5, hard_exit=False
            )
            elapsed = time.monotonic() - start
        finally:
            listener.close()
        assert status == CONNECTION_LOST_STATUS
        assert elapsed < 10  # seconds, not forever (generous CI margin)

    def test_reconnect_backs_off_and_retries_the_stalled_handshake(self):
        """CONNECTION_LOST (not HANDSHAKE_FAILED) is the whole point: a
        stalled coordinator may heal, so --reconnect must retry it."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            listener.bind(("127.0.0.1", 0))
            listener.listen(8)
            port = listener.getsockname()[1]
            status = run_worker(
                f"127.0.0.1:{port}", reconnect=True, max_retries=1,
                backoff_base=0.05, hard_exit=False, connect_timeout=0.3,
            )
        finally:
            listener.close()
        assert status == CONNECTION_LOST_STATUS  # retried, then gave up

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            serve(f"127.0.0.1:{_free_port()}", connect_timeout=0.0)
        from repro.distrib.worker import main as worker_main

        with pytest.raises(SystemExit):
            worker_main(["--connect", "127.0.0.1:1", "--connect-timeout", "0"])

    def test_mesh_flags_mutually_exclusive(self):
        from repro.distrib.worker import main as worker_main

        with pytest.raises(SystemExit):
            worker_main(["--connect", "127.0.0.1:1", "--no-mesh",
                         "--mesh-budget-bytes", "1024"])


# ---------------------------------------------------------------------------
# Hello.slots validation at registration
# ---------------------------------------------------------------------------

class TestSlotsValidation:
    def test_bogus_slot_claims_rejected_without_killing_the_accept_loop(self):
        """slots weights batch partitioning (the mapper materializes that
        many cycle entries per worker), so zero, negative, bool, and absurd
        claims must all be refused cleanly — and registration must still
        work afterwards."""
        with Coordinator(handshake_timeout=0.5) as coordinator:
            for slots in (0, -3, True, MAX_WORKER_SLOTS + 1, 10**9):
                rogue = socket.create_connection(coordinator.address)
                rogue.settimeout(5)
                protocol.send_message(rogue, protocol.Hello(slots=slots))
                with pytest.raises(ConnectionClosed):
                    protocol.recv_message(rogue)  # closed, never Welcomed
                rogue.close()
            assert coordinator.worker_count() == 0
            with thread_workers(coordinator, 1, slots=2):
                assert coordinator.total_slots() == 2

    def test_maximum_slot_claim_is_accepted(self):
        """The bound is inclusive: MAX_WORKER_SLOTS itself registers."""
        with Coordinator(handshake_timeout=2.0) as coordinator:
            sock = socket.create_connection(coordinator.address)
            try:
                sock.settimeout(5)
                protocol.send_message(
                    sock, protocol.Hello(slots=MAX_WORKER_SLOTS)
                )
                welcome = protocol.recv_message(sock)
                assert isinstance(welcome, protocol.Welcome)
                coordinator.wait_for_workers(1, timeout=5)
                assert coordinator.total_slots() == MAX_WORKER_SLOTS
            finally:
                sock.close()


# ---------------------------------------------------------------------------
# the artifact frames and chunking
# ---------------------------------------------------------------------------

KEY = ("image", "llvm", "1.0", "srcdigest", "lzma", ("-dce", "-licm"))


class TestArtifactProtocol:
    def test_artifact_frames_round_trip(self):
        left, right = socket.socketpair()
        try:
            for message in (
                protocol.ArtifactHave((KEY, ("trace", "abc", (1,)))),
                protocol.ArtifactHaveReply((True, False)),
                protocol.ArtifactFetch(KEY),
                protocol.ArtifactData(KEY, 0, 2, b"\x00\x01"),
                protocol.ArtifactData(KEY, 0, 0, b""),  # the miss reply
                protocol.ArtifactPush(((KEY, 0, 1, b"payload"),)),
            ):
                protocol.send_message(left, message)
                assert protocol.recv_message(right) == message
        finally:
            left.close()
            right.close()

    def test_chunk_payload_covers_boundaries(self):
        assert protocol.chunk_payload(b"") == (b"",)
        assert protocol.chunk_payload(b"small") == (b"small",)
        exact = b"x" * protocol.ARTIFACT_CHUNK_BYTES
        assert protocol.chunk_payload(exact) == (exact,)
        parts = protocol.chunk_payload(exact + b"y")
        assert len(parts) == 2 and b"".join(parts) == exact + b"y"

    def test_welcome_defaults_are_meshless(self):
        """A pre-mesh Welcome (and the default constructor) advertises no
        plane — workers only arm the mesh client when told to."""
        welcome = protocol.Welcome(worker_id=7)
        assert welcome.mesh is False and welcome.mesh_budget_bytes is None


# ---------------------------------------------------------------------------
# the coordinator-side plane
# ---------------------------------------------------------------------------

class _FakeHandle:
    """Just the per-worker mesh state the plane touches."""

    def __init__(self):
        self.mesh_bytes = 0
        self.mesh_parts = {}


def _push_entries(key, value, parts=1):
    payload = ArtifactStore.encode_entry(key, value)
    size = max(1, (len(payload) + parts - 1) // parts)
    chunks = [payload[i : i + size] for i in range(0, len(payload), size)] or [b""]
    return tuple(
        (key, index, len(chunks), chunk) for index, chunk in enumerate(chunks)
    )


class TestCoordinatorArtifactPlane:
    def test_push_then_fetch_round_trips_chunked(self, tmp_path):
        plane = CoordinatorArtifactPlane(ArtifactStore(tmp_path / "plane"))
        handle = _FakeHandle()
        sent = []
        plane.handle(
            handle, protocol.ArtifactPush(_push_entries(KEY, "artifact", parts=3)),
            sent.append,
        )
        assert plane.pushes_accepted == 1 and not sent  # pushes get no reply
        assert plane.store.get(KEY) == "artifact"
        plane.handle(handle, protocol.ArtifactHave((KEY, ("image", "no"))), sent.append)
        assert sent.pop() == protocol.ArtifactHaveReply((True, False))
        plane.handle(handle, protocol.ArtifactFetch(KEY), sent.append)
        payload = b"".join(frame.data for frame in sent)
        assert all(frame.part_count == len(sent) for frame in sent)
        value, ok = ArtifactStore.decode_entry(payload, KEY)
        assert ok and value == "artifact"
        assert plane.fetches_served == 1 and plane.bytes_out == len(payload)

    def test_transfers_feed_the_byte_size_histogram(self, tmp_path):
        from repro import telemetry
        from repro.telemetry.live import MetricsSink

        previous = telemetry.get_sink()
        sink = MetricsSink()
        telemetry.set_sink(sink)
        try:
            plane = CoordinatorArtifactPlane(ArtifactStore(tmp_path / "plane"))
            handle = _FakeHandle()
            plane.handle(
                handle, protocol.ArtifactPush(_push_entries(KEY, "artifact")),
                lambda _message: None,
            )
            plane.handle(handle, protocol.ArtifactFetch(KEY), lambda _m: None)
        finally:
            telemetry.set_sink(previous)
        histogram = sink.registry.snapshot()["histograms"]["mesh.transfer.bytes"]
        # One push absorbed + one fetch served, both the same payload.
        assert histogram["count"] == 2
        assert histogram["sum"] == 2.0 * plane.bytes_out

    def test_tampered_and_aliased_pushes_never_land(self, tmp_path):
        plane = CoordinatorArtifactPlane(ArtifactStore(tmp_path / "plane"))
        handle = _FakeHandle()
        flipped = bytearray(ArtifactStore.encode_entry(KEY, "artifact"))
        flipped[-1] ^= 0xFF  # bit rot / tampering in flight
        aliased = ArtifactStore.encode_entry(("image", "other"), "foreign")
        for payload in (bytes(flipped), aliased, b"garbage"):
            plane.handle(
                handle, protocol.ArtifactPush(((KEY, 0, 1, payload),)),
                lambda _message: None,
            )
        assert plane.pushes_rejected == 3 and plane.pushes_accepted == 0
        assert not plane.store.contains(KEY)
        assert len(plane.store) == 0  # nothing landed under any key

    def test_out_of_order_and_orphaned_chunks_rejected(self, tmp_path):
        plane = CoordinatorArtifactPlane(ArtifactStore(tmp_path / "plane"))
        handle = _FakeHandle()
        entries = _push_entries(KEY, "artifact", parts=2)
        # Part 1 without part 0: an orphan; the reassembly must be dropped.
        plane.handle(
            handle, protocol.ArtifactPush((entries[1],)), lambda _m: None
        )
        assert plane.pushes_rejected == 1 and not handle.mesh_parts
        assert len(plane.store) == 0

    def test_oversize_reassembly_rejected(self, tmp_path, monkeypatch):
        monkeypatch.setattr(artifacts, "MESH_MAX_ENTRY_BYTES", 64)
        plane = CoordinatorArtifactPlane(ArtifactStore(tmp_path / "plane"))
        handle = _FakeHandle()
        plane.handle(
            handle,
            protocol.ArtifactPush(_push_entries(KEY, "x" * 500, parts=2)),
            lambda _m: None,
        )
        # The oversize chunk kills the reassembly; its orphaned successors
        # count as further rejections.  What matters: nothing was stored.
        assert plane.pushes_rejected >= 1 and plane.pushes_accepted == 0
        assert len(plane.store) == 0
        assert not handle.mesh_parts  # the partial reassembly was dropped

    def test_fetch_miss_replies_zero_parts(self, tmp_path):
        plane = CoordinatorArtifactPlane(ArtifactStore(tmp_path / "plane"))
        sent = []
        plane.handle(_FakeHandle(), protocol.ArtifactFetch(KEY), sent.append)
        assert sent == [protocol.ArtifactData(KEY, 0, 0, b"")]
        assert plane.fetches_missed == 1

    def test_fetch_budget_is_enforced_per_machine(self, tmp_path):
        store = ArtifactStore(tmp_path / "plane")
        store.put(KEY, "artifact")
        plane = CoordinatorArtifactPlane(store, budget_bytes=1)
        over, fresh = _FakeHandle(), _FakeHandle()
        sent = []
        plane.handle(over, protocol.ArtifactFetch(KEY), sent.append)
        # The payload would blow the 1-byte budget: served as a miss, and
        # no byte ever travels (the strict, size-known-in-advance check).
        assert sent == [protocol.ArtifactData(KEY, 0, 0, b"")]
        assert plane.budget_denied == 1 and over.mesh_bytes == 0
        assert fresh.mesh_bytes == 0  # budgets are per handle, not global

    def test_planeless_coordinator_still_answers(self):
        """handle_artifact_message with no plane: everything is a miss and
        pushes vanish — a degrade, never a protocol kill."""
        handle, sent = _FakeHandle(), []
        handle_artifact_message(None, handle, protocol.ArtifactHave((KEY,)), sent.append)
        assert sent.pop() == protocol.ArtifactHaveReply((False,))
        handle_artifact_message(None, handle, protocol.ArtifactFetch(KEY), sent.append)
        assert sent.pop() == protocol.ArtifactData(KEY, 0, 0, b"")
        handle_artifact_message(
            None, handle, protocol.ArtifactPush(((KEY, 0, 1, b"x"),)), sent.append
        )
        assert not sent


# ---------------------------------------------------------------------------
# end to end: the mesh over a real coordinator + worker
# ---------------------------------------------------------------------------

class TestMeshEndToEnd:
    def _session(self, llvm, keys, mesh_store, worker_store, budget=None, **kwargs):
        """One coordinator+worker lifetime; returns (results, mesh stats)."""
        with Coordinator(
            artifact_store=str(mesh_store), mesh_budget_bytes=budget
        ) as coordinator:
            with thread_workers(
                coordinator, 1, store_dir=str(worker_store), **kwargs
            ):
                mapper = DistributedMapper(coordinator, _staged_evaluator(llvm))
                results = mapper.map(keys)
                assert mapper.fallback_evaluations == 0
                return results, coordinator.mesh_stats()

    def test_second_machine_is_warm_from_the_first_machines_pushes(
        self, llvm, tmp_path
    ):
        """The tentpole scenario in miniature: machine A compiles and pushes;
        machine B (fresh process, empty local store) serves every key from
        the mesh — zero compiles, zero misses, identical results."""
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2", "O3")]
        mesh_store = tmp_path / "mesh-store"

        fresh_process_state()
        cold, cold_stats = self._session(
            llvm, keys, mesh_store, tmp_path / "machine-a"
        )
        assert cold_stats["pushes_accepted"] > 0  # fresh compiles traveled up
        assert sum(result.artifact_mesh_hits for result in cold) == 0

        fresh_process_state()  # machine B: a different, amnesiac interpreter
        warm, warm_stats = self._session(
            llvm, keys, mesh_store, tmp_path / "machine-b"
        )
        assert [(r.fitness, r.fingerprint) for r in warm] == [
            (r.fitness, r.fingerprint) for r in cold
        ]
        assert all(result.artifact_mesh_hits >= 1 for result in warm)
        assert sum(result.artifact_misses for result in warm) == 0  # no recompile
        assert warm_stats["fetches_served"] > 0
        assert warm_stats["bytes_out"] > 0

    def test_no_mesh_worker_never_touches_the_plane(self, llvm, tmp_path):
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2")]
        fresh_process_state()
        results, stats = self._session(
            llvm, keys, tmp_path / "mesh-store", tmp_path / "worker", mesh=False
        )
        assert sum(result.artifact_mesh_hits for result in results) == 0
        assert stats["pushes_accepted"] == 0 and stats["fetches_served"] == 0
        assert stats["fetches_missed"] == 0  # not even a probe arrived

    def test_transfer_budget_degrades_to_local_compiles(self, llvm, tmp_path):
        """Over budget, the mesh answers misses: the joining machine pays
        its own compiles, results stay correct, and the denials are
        accounted — never an error."""
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2")]
        mesh_store = tmp_path / "mesh-store"
        fresh_process_state()
        cold, _stats = self._session(llvm, keys, mesh_store, tmp_path / "machine-a")

        fresh_process_state()
        warm, stats = self._session(
            llvm, keys, mesh_store, tmp_path / "machine-b", budget=1
        )
        assert [(r.fitness, r.fingerprint) for r in warm] == [
            (r.fitness, r.fingerprint) for r in cold
        ]
        assert sum(result.artifact_mesh_hits for result in warm) == 0
        assert stats["fetches_served"] == 0 and stats["budget_denied"] > 0
        assert stats["bytes_out"] == 0  # the cap held before any byte moved


# ---------------------------------------------------------------------------
# campaign surface: config validation and the warm-join acceptance run
# ---------------------------------------------------------------------------

class TestMeshCampaignConfig:
    def test_mesh_requires_distributed_staged_and_a_store(self, tmp_path):
        with pytest.raises(ValueError, match="distributed"):
            Campaign(
                JOBS, tiny_campaign_config(mesh=True, store_dir=tmp_path / "s"),
                spec_provider=tiny_spec,
            )
        with pytest.raises(ValueError, match="store"):
            Campaign(
                JOBS, tiny_campaign_config(dispatch="distributed", mesh=True),
                spec_provider=tiny_spec,
            )
        with pytest.raises(ValueError, match="staged"):
            Campaign(
                JOBS,
                tiny_campaign_config(
                    dispatch="distributed", mesh=True,
                    store_dir=tmp_path / "s", pipeline="monolithic",
                ),
                spec_provider=tiny_spec,
            )
        with pytest.raises(ValueError, match="mesh_budget_bytes"):
            Campaign(
                JOBS, tiny_campaign_config(mesh_budget_bytes=1024),
                spec_provider=tiny_spec,
            )

    def test_pool_refuses_mesh_without_distributed_dispatch(self, tmp_path):
        with pytest.raises(ValueError, match="distributed"):
            SharedWorkerPool(dispatch="thread", mesh_store=tmp_path / "s")


class TestMeshWarmJoin:
    @pytest.mark.slow
    def test_joining_machine_compiles_nothing_and_matches_serial(self, tmp_path):
        """The acceptance scenario: a full mesh campaign on machine A, then
        a fresh machine B (empty worker store, fresh process) runs the same
        campaign against the same mesh — zero candidate compiles (every
        stage lookup lands in a cache tier, the cold ones in the mesh), and
        a database fingerprint identical to the serial run."""
        serial = Campaign(JOBS, tiny_campaign_config(), spec_provider=tiny_spec).run()
        mesh_store = tmp_path / "campaign-store"

        def mesh_run(worker_store):
            pool = SharedWorkerPool(dispatch="distributed", mesh_store=mesh_store)
            try:
                with thread_workers(pool.coordinator, 1, store_dir=str(worker_store)):
                    result = Campaign(
                        JOBS,
                        tiny_campaign_config(
                            dispatch="distributed", mesh=True, store_dir=mesh_store
                        ),
                        spec_provider=tiny_spec,
                    ).run(pool=pool)
                    # Before close(): an owned coordinator's plane dies with it.
                    return result, pool.mesh_stats()
            finally:
                pool.close()

        fresh_process_state()
        cold, cold_stats = mesh_run(tmp_path / "machine-a")
        assert cold.fingerprint() == serial.fingerprint()
        assert cold_stats["pushes_accepted"] > 0

        fresh_process_state()
        warm, warm_stats = mesh_run(tmp_path / "machine-b")
        assert warm.fingerprint() == serial.fingerprint()
        assert (warm.database.record_signatures()
                == serial.database.record_signatures())
        stats = warm.evaluation_stats()
        assert stats.artifact_misses == 0  # zero redundant compiles, fleet-wide
        assert stats.artifact_mesh_hits > 0
        assert warm_stats["fetches_served"] > 0
