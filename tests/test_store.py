"""Tests for the disk-backed artifact store (:mod:`repro.tuner.store`).

The load-bearing guarantees:

* writes are atomic (temp file + ``os.replace``): a crash mid-write leaves a
  stray temp file that is ignored by reads and collected by GC, never a
  truncated entry;
* loads verify a digest and the stored key: corruption, truncation, or an
  aliased entry reads as a *miss* — never as a wrong artifact;
* garbage collection respects the byte budget and evicts in LRU order
  (reads refresh recency);
* concurrent readers and writers (thread pool; the compile and measure
  lanes, or several worker slots) always observe consistent entries;
* the :class:`~repro.tuner.pipeline.ArtifactCache` write-through tier
  accounting distinguishes memory (tier-1) from disk (tier-2) hits.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.tuner import ArtifactCache, ArtifactStore, persistent_store
from repro.tuner.pipeline import MEMORY_TIER, MISS_TIER, STORE_TIER
from repro.tuner.store import (
    ENTRY_SUFFIX,
    MAGIC,
    OBJECTS_DIR,
    TMP_PREFIX,
    reset_persistent_stores,
)


def entry_files(store: ArtifactStore):
    return sorted(
        path for path in (store.directory / OBJECTS_DIR).iterdir()
        if path.name.endswith(ENTRY_SUFFIX) and not path.name.startswith(TMP_PREFIX)
    )


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("image", "llvm", "1.0", "srcdigest", "lzma", ("-dce", "-licm"))
        value = {"payload": b"\x00\x01binary", "size": 42}
        assert store.get(key) is None  # cold
        assert store.put(key, value)
        assert store.get(key) == value
        assert store.hits == 1 and store.misses == 1 and store.puts == 1

    def test_entries_survive_a_new_instance(self, tmp_path):
        """The whole point: a fresh process (a new instance) reads the old
        process's artifacts."""
        ArtifactStore(tmp_path / "store").put(("trace", "abc", (1,)), (7, "out"))
        restarted = ArtifactStore(tmp_path / "store")
        assert restarted.get(("trace", "abc", (1,))) == (7, "out")

    def test_distinct_keys_are_distinct_entries(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(("image", "a"), 1)
        store.put(("image", "b"), 2)
        assert store.get(("image", "a")) == 1
        assert store.get(("image", "b")) == 2
        assert len(store) == 2

    def test_unpicklable_value_degrades_to_false(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert not store.put(("image", "bad"), lambda: None)  # lambdas don't pickle
        assert store.get(("image", "bad")) is None

    def test_index_manifest_written(self, tmp_path):
        import json

        store = ArtifactStore(tmp_path / "store")
        store.put(("image", "a"), b"artifact")
        index = json.loads(store.index_path().read_text())
        assert index["entries"]
        size = next(iter(index["entries"].values()))["size"]
        assert size == entry_files(store)[0].stat().st_size

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path / "store", max_bytes=0)


class TestCrashAndCorruption:
    def test_partial_temp_files_are_ignored(self, tmp_path):
        """A kill mid-write strands a temp file; reads never see it and GC
        collects it once it is stale."""
        store = ArtifactStore(tmp_path / "store")
        key = ("image", "a")
        store.put(key, "artifact")
        # Simulate a writer killed mid-write: a partial temp file next to
        # (and newer than) the real entry.
        stranded = store.directory / OBJECTS_DIR / f"{TMP_PREFIX}999-0-partial.art"
        stranded.write_bytes(MAGIC + b"deadbeef")  # truncated garbage
        assert store.get(key) == "artifact"
        assert len(store) == 1  # the temp file is not an entry
        store.gc()
        assert stranded.exists()  # fresh temp files might be in-flight writes
        os.utime(stranded, (1, 1))  # make it stale
        store.gc()
        assert not stranded.exists()

    def test_first_put_sweeps_stale_temps_without_budget_pressure(self, tmp_path):
        """Crash leftovers must go even on stores whose byte budget never
        forces a GC: the next process's first put sweeps them."""
        first = ArtifactStore(tmp_path / "store", max_bytes=None)
        first.put(("image", "a"), "artifact")
        stranded = first.directory / OBJECTS_DIR / f"{TMP_PREFIX}777-0-crash.art"
        stranded.write_bytes(b"partial")
        os.utime(stranded, (1, 1))  # long-dead writer
        second = ArtifactStore(tmp_path / "store", max_bytes=None)  # "next process"
        second.put(("image", "b"), "artifact")
        assert not stranded.exists()
        assert second.get(("image", "a")) == "artifact"

    def test_directories_are_created_owner_only_and_lazily(self, tmp_path):
        """Entries are pickles, so the directory is a trust boundary: 0700,
        and nothing is created before the first put (a foreign path baked
        into an evaluator blob must not grow junk trees)."""
        store = ArtifactStore(tmp_path / "store")
        assert not (tmp_path / "store").exists()  # construction is side-effect free
        assert store.get(("image", "a")) is None  # reads tolerate absence too
        store.put(("image", "a"), "artifact")
        assert (tmp_path / "store").stat().st_mode & 0o777 == 0o700
        assert (tmp_path / "store" / OBJECTS_DIR).stat().st_mode & 0o777 == 0o700

    def test_truncated_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("image", "a")
        store.put(key, "artifact")
        path = entry_files(store)[0]
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])  # simulated torn write
        assert store.get(key) is None
        assert store.corrupt_dropped == 1
        assert not path.exists()  # dropped, so it cannot mislead again

    def test_bit_rot_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("image", "a")
        store.put(key, "artifact")
        path = entry_files(store)[0]
        payload = bytearray(path.read_bytes())
        payload[-1] ^= 0xFF  # flip a payload bit; the digest no longer matches
        path.write_bytes(bytes(payload))
        assert store.get(key) is None
        assert store.corrupt_dropped == 1

    def test_foreign_magic_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("image", "a")
        store.put(key, "artifact")
        path = entry_files(store)[0]
        path.write_bytes(b"not-an-artifact-store-entry")
        assert store.get(key) is None

    def test_aliased_key_is_a_miss_not_a_wrong_answer(self, tmp_path):
        """An entry whose embedded key differs from the requested one (the
        digest-collision case) must read as a miss."""
        store = ArtifactStore(tmp_path / "store")
        key = ("image", "a")
        store.put(key, "artifact")
        path = entry_files(store)[0]
        # Rewrite the entry in place with a *different* embedded key but a
        # valid digest — only the key check can catch this.
        body = pickle.dumps((("image", "other"), "foreign artifact"))
        import hashlib

        path.write_bytes(MAGIC + hashlib.sha256(body).hexdigest().encode() + b"\n" + body)
        assert store.get(key) is None

    def test_corruption_recovery_recompiles_once(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        key = ("image", "a")
        store.put(key, "artifact")
        entry_files(store)[0].write_bytes(b"garbage")
        assert store.get(key) is None  # miss, dropped
        store.put(key, "artifact")  # the caller recompiled and re-stored
        assert store.get(key) == "artifact"


class TestEncodedEntrySurface:
    """The mesh-facing surface: entries travel in their on-disk encoding and
    every receiver re-verifies before storing or using them — tampering,
    corruption, and key aliasing all read as a *miss*, never as a wrong
    artifact (the tentpole's by-construction poisoning defense)."""

    KEY = ("image", "llvm", "1.0", "srcdigest", "lzma", ("-dce",))

    def test_encode_decode_round_trip(self):
        payload = ArtifactStore.encode_entry(self.KEY, {"blob": b"\x00\x01"})
        value, ok = ArtifactStore.decode_entry(payload, self.KEY)
        assert ok and value == {"blob": b"\x00\x01"}

    def test_flipped_byte_reads_as_verified_miss(self):
        payload = bytearray(ArtifactStore.encode_entry(self.KEY, "artifact"))
        payload[-1] ^= 0xFF
        value, ok = ArtifactStore.decode_entry(bytes(payload), self.KEY)
        assert not ok and value is None

    def test_aliased_key_reads_as_verified_miss(self):
        """A payload whose digest is intact but whose embedded key is not
        the requested one (an aliasing push) must not decode."""
        payload = ArtifactStore.encode_entry(("image", "other"), "foreign")
        value, ok = ArtifactStore.decode_entry(payload, self.KEY)
        assert not ok and value is None

    def test_put_encoded_rejects_tampering(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        good = ArtifactStore.encode_entry(self.KEY, "artifact")
        flipped = bytearray(good)
        flipped[-1] ^= 0xFF
        assert not store.put_encoded(self.KEY, bytes(flipped))
        assert not store.put_encoded(
            self.KEY, ArtifactStore.encode_entry(("image", "other"), "foreign")
        )
        assert not store.put_encoded(self.KEY, b"garbage")
        assert store.corrupt_dropped == 3
        assert not store.contains(self.KEY)  # nothing ever landed
        assert store.put_encoded(self.KEY, good)  # the honest payload does
        assert store.get(self.KEY) == "artifact"

    def test_get_encoded_verifies_and_drops_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        store.put(self.KEY, "artifact")
        assert store.get_encoded(self.KEY) == ArtifactStore.encode_entry(
            self.KEY, "artifact"
        )
        entry_files(store)[0].write_bytes(b"rotted")
        assert store.get_encoded(self.KEY) is None
        assert store.corrupt_dropped == 1
        assert not store.contains(self.KEY)  # dropped, like get()

    def test_contains_is_existence_only(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert not store.contains(self.KEY)
        store.put(self.KEY, "artifact")
        hits, misses = store.hits, store.misses
        assert store.contains(self.KEY)
        # No verification and no counter traffic: a membership probe must
        # stay cheap enough to answer for whole batches at a time.
        assert (store.hits, store.misses) == (hits, misses)


class TestGarbageCollection:
    def _put_sized(self, store, name, size, mtime):
        key = ("image", name)
        store.put(key, b"x" * size)
        os.utime(store._entry_path(key), (mtime, mtime))
        return key

    def test_gc_respects_byte_budget_in_lru_order(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=10_000_000)  # no auto-GC yet
        # Equal-length keys and values => equal entry sizes, so the budget
        # arithmetic below forces exactly one eviction.
        old = self._put_sized(store, "k1", 400, 1_000)
        middle = self._put_sized(store, "k2", 400, 2_000)
        new = self._put_sized(store, "k3", 400, 3_000)
        total = store.total_bytes()
        # Budget of ~2.5 entries: over budget by one, and one eviction also
        # satisfies the low-water mark (0.9 * budget > two entries).
        store.max_bytes = total * 5 // 6
        evicted = store.gc()
        assert evicted == 1
        assert store.get(old) is None          # the coldest entry went first
        assert store.get(middle) is not None
        assert store.get(new) is not None
        assert store.total_bytes() <= store.max_bytes
        assert store.gc_evictions == 1

    def test_reads_refresh_recency(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=10_000_000)
        old = self._put_sized(store, "old", 400, 1_000)
        new = self._put_sized(store, "new", 400, 2_000)
        assert store.get(old) is not None  # os.utime: "old" is now the MRU
        store.max_bytes = store.total_bytes() - 1
        store.gc()
        assert store.get(old) is not None
        assert store.get(new) is None

    def test_put_triggers_gc_over_budget(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=2_000)
        for index in range(32):
            store.put(("image", index), b"y" * 256)
        assert store.total_bytes() <= store.max_bytes
        assert store.gc_evictions > 0

    def test_unbounded_store_never_collects_entries(self, tmp_path):
        store = ArtifactStore(tmp_path / "store", max_bytes=None)
        for index in range(16):
            store.put(("image", index), b"z" * 512)
        store.gc()
        assert len(store) == 16 and store.gc_evictions == 0


class TestConcurrency:
    def test_concurrent_readers_and_writers_see_consistent_entries(self, tmp_path):
        """Hammer one store from a thread pool: every successful get must
        return exactly the value content-addressed by its key."""
        store = ArtifactStore(tmp_path / "store")
        # index // 2 decouples the key from the reader/writer role below, so
        # writers (odd indexes) cover all eight keys.
        keys = [("image", (index // 2) % 8) for index in range(160)]

        def worker(index):
            key = keys[index]
            if index % 2:
                assert store.put(key, ("artifact", key[1]))
                return True
            value = store.get(key)
            assert value is None or value == ("artifact", key[1])
            return value is not None

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(worker, range(len(keys))))
        assert any(outcomes)  # at least some reads hit
        for index in range(8):  # final state: every key readable and correct
            assert store.get(("image", index)) == ("artifact", index)

    def test_concurrent_writers_under_gc_pressure(self, tmp_path):
        """Writers racing a byte budget small enough to GC constantly must
        never surface an error or a wrong value."""
        store = ArtifactStore(tmp_path / "store", max_bytes=4_096)

        def worker(index):
            key = ("image", index % 16)
            store.put(key, b"v" * 200 + bytes([index % 16]))
            value = store.get(key)
            assert value is None or value == b"v" * 200 + bytes([index % 16])

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(200)))
        assert store.total_bytes() <= store.max_bytes

    def test_two_instances_share_one_directory(self, tmp_path):
        """Two store objects on one directory (two processes in miniature):
        writes through either are visible through both."""
        left = ArtifactStore(tmp_path / "store")
        right = ArtifactStore(tmp_path / "store")
        left.put(("image", "l"), "from-left")
        right.put(("image", "r"), "from-right")
        assert left.get(("image", "r")) == "from-right"
        assert right.get(("image", "l")) == "from-left"


class TestPersistentStoreRegistry:
    def test_one_instance_per_resolved_path(self, tmp_path):
        reset_persistent_stores()
        try:
            first = persistent_store(tmp_path / "store")
            again = persistent_store(tmp_path / "store")
            other = persistent_store(tmp_path / "other")
            assert first is again and first is not other
        finally:
            reset_persistent_stores()


class TestTieredCache:
    def test_write_through_and_tier_accounting(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = ArtifactCache(max_entries=8, store=store)
        key = ("image", "k")
        value, tier = first.lookup(key)
        assert value is None and tier == MISS_TIER
        first.put(key, "artifact")
        value, tier = first.lookup(key)
        assert value == "artifact" and tier == MEMORY_TIER
        # A fresh cache over the same store: first lookup is a tier-2 hit
        # promoted into memory, the second a tier-1 hit.
        second = ArtifactCache(max_entries=8, store=store)
        value, tier = second.lookup(key)
        assert value == "artifact" and tier == STORE_TIER
        value, tier = second.lookup(key)
        assert tier == MEMORY_TIER
        assert second.store_hits == 1 and second.hits == 1 and second.misses == 0
        stats = second.stats()
        assert stats["store_hits"] == 1 and stats["store"]["puts"] == 1

    def test_memory_eviction_keeps_the_disk_tier(self, tmp_path):
        cache = ArtifactCache(max_entries=1, store=ArtifactStore(tmp_path / "store"))
        cache.put(("image", "a"), "first")
        cache.put(("image", "b"), "second")  # evicts "a" from memory only
        assert cache.evictions == 1
        value, tier = cache.lookup(("image", "a"))
        assert value == "first" and tier == STORE_TIER

    def test_corrupt_store_entry_falls_back_to_recompute_path(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        warm = ArtifactCache(max_entries=8, store=store)
        warm.put(("image", "a"), "artifact")
        for path in entry_files(store):
            path.write_bytes(b"garbage")
        cold = ArtifactCache(max_entries=8, store=store)
        value, tier = cold.lookup(("image", "a"))
        assert value is None and tier == MISS_TIER  # a miss, never garbage

    def test_storeless_cache_unchanged(self):
        cache = ArtifactCache(max_entries=2)
        cache.put(("k",), 1)
        assert cache.lookup(("k",)) == (1, MEMORY_TIER)
        assert cache.stats()["store"] is None
