"""Shared fixtures (importable helpers live in ``_helpers.py``).

Compilation is the expensive operation, so compiled images and recovered
programs are session-scoped and reused across test modules.
"""

from __future__ import annotations

import pytest

from repro.compilers import SimGCC, SimLLVM
from repro.minic import analyze, parse_program
from repro.ir import build_module

#: A small but representative program: globals, arrays, loops, switch,
#: recursion, short-circuit logic, ternary, builtins, strings.
SAMPLE_SOURCE = """
int table[32];
int primes[8] = {2, 3, 5, 7, 11, 13, 17, 19};
int buffer[16];

int square(int x) { return x * x; }

int classify(int x) {
  switch (x) {
    case 0: return 1;
    case 1: return 10;
    case 2: return 20;
    case 3: return 30;
    case 4: return 40;
    case 7: return 70;
    default: return -1;
  }
}

int sum_to(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i++) { s += i * 3; }
  return s;
}

int scale(int a[], int b[], int n) {
  int i;
  for (i = 0; i < n; i++) { buffer[i] = a[i] * b[i]; }
  int acc = 0;
  for (i = 0; i < n; i++) acc += buffer[i];
  return acc;
}

int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }

int main() {
  int i;
  for (i = 0; i < 32; i++) { table[i] = (i * 7) % 19 - 4; }
  int acc = scale(table, primes, 8);
  acc += sum_to(15);
  acc += fib(10);
  for (i = 0; i < 8; i++) acc += classify(i) + square(i);
  int mode = (acc > 100 && acc % 2 == 0) ? 3 : (acc < 0 ? 1 : 2);
  print_int(acc);
  print_int(mode);
  strcpy(buffer, "ok");
  print_str(buffer);
  return acc % 127;
}
"""


@pytest.fixture(scope="session")
def sample_source() -> str:
    return SAMPLE_SOURCE


@pytest.fixture(scope="session")
def sample_program(sample_source):
    return parse_program(sample_source, name="sample")


@pytest.fixture(scope="session")
def sample_info(sample_program):
    return analyze(sample_program)


@pytest.fixture(scope="session")
def sample_module(sample_program, sample_info):
    return build_module(sample_program, sample_info)


@pytest.fixture(scope="session")
def gcc():
    return SimGCC()


@pytest.fixture(scope="session")
def llvm():
    return SimLLVM()


@pytest.fixture(scope="session")
def sample_images_llvm(llvm, sample_source):
    """O0..O3/Os images of the sample program under SimLLVM."""
    return {
        level: llvm.compile_level(sample_source, level, name="sample").image
        for level in ("O0", "O1", "O2", "O3", "Os")
    }


@pytest.fixture(scope="session")
def sample_images_gcc(gcc, sample_source):
    return {
        level: gcc.compile_level(sample_source, level, name="sample").image
        for level in ("O0", "O1", "O2", "O3", "Os")
    }
