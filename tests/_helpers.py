"""Shared test helpers (importable, unlike conftest: ``benchmarks/`` has its
own conftest.py that wins the ``conftest`` module name in full-repo runs)."""

from __future__ import annotations

import socket


def fresh_process_state() -> None:
    """Forget every process-global artifact cache and store instance.

    A freshly started interpreter holds no in-memory artifact state; this
    puts the test process in the same position, so that any warmth a
    subsequent run shows can only have come from the disk-backed store.
    Shared by the restart-warmth tests across modules — a new process-global
    registry must be added here, once, to keep all of them honest.
    """
    from repro.analysis.emulator import reset_decoded_programs
    from repro.tuner import reset_persistent_stores, reset_shared_artifact_caches

    reset_shared_artifact_caches()
    reset_persistent_stores()
    reset_decoded_programs()


def loopback_available() -> bool:
    """Whether this sandbox can bind AF_INET loopback (distrib test gate)."""
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False
