"""Differential tests: table/superinstruction dispatch vs. the reference engine.

The table engine (process-level :class:`DecodedProgram` cache + pre-bound
closure blocks) must be *observationally indistinguishable* from the
reference if/elif interpreter: identical ``ExecutionResult`` fields, identical
exceptions at identical program points, and identical campaign fingerprints.
These tests drive both engines over randomized minic programs, fault paths,
step-budget boundaries, and a whole tuning campaign; plus the incremental
joint-compression lane's equality with the exact one-shot path.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.emulator import (
    DISPATCH_ENV,
    REFERENCE_DISPATCH,
    TABLE_DISPATCH,
    DecodedProgram,
    EmulationError,
    EmulationLimitExceeded,
    Emulator,
    decoded_program,
    decoded_program_cache_size,
    dispatch_mode,
    reset_decoded_programs,
    run_program,
)
from repro.difftools.ncd import NCD_EXACT_ENV, CachedNCDFitness, JointCompressor, _COMPRESSORS
from repro.tuner import BinTuner, BinTunerConfig, GAParameters
from repro.tuner.tuner import BuildSpec

from _helpers import fresh_process_state


@contextmanager
def dispatch(mode: str):
    previous = os.environ.get(DISPATCH_ENV)
    os.environ[DISPATCH_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(DISPATCH_ENV, None)
        else:
            os.environ[DISPATCH_ENV] = previous


def run_both(image, args=None, inputs=None, max_steps=2_000_000):
    """Run under both engines; return either (result, result) or raise-parity."""
    outcomes = []
    for mode in (REFERENCE_DISPATCH, TABLE_DISPATCH):
        with dispatch(mode):
            try:
                outcomes.append(("ok", run_program(image, args=args, inputs=inputs, max_steps=max_steps)))
            except EmulationError as exc:
                outcomes.append(("raise", (type(exc).__name__, str(exc))))
    (ref_kind, ref), (tab_kind, tab) = outcomes
    assert ref_kind == tab_kind, f"engines disagree on fault-vs-success: {outcomes}"
    if ref_kind == "raise":
        assert ref == tab
        return None, None
    assert_results_equal(ref, tab)
    return ref, tab


def assert_results_equal(ref, tab) -> None:
    # Explicit field list: ``blocks`` is table-only telemetry and excluded
    # from the parity contract by design.
    assert ref.output_text == tab.output_text
    assert ref.return_value == tab.return_value
    assert ref.steps == tab.steps
    assert ref.cycles == tab.cycles
    assert ref.exited == tab.exited
    assert ref.exit_code == tab.exit_code
    assert ref.assertion_failed == tab.assertion_failed
    assert ref.observable_state() == tab.observable_state()


# ---------------------------------------------------------------------------
# randomized program generation
# ---------------------------------------------------------------------------

_SAFE_OPS = ("+", "-", "*", "&", "|", "^")


@st.composite
def minic_programs(draw) -> str:
    """A randomized but always-valid minic program.

    Covers the dispatch surface: straight-line ALU runs (fused blocks),
    array loads/stores, branches and loops (block tails), calls and
    recursion (register-window frames), builtins (syscall tails), and
    modulo with guarded denominators.
    """
    array_size = draw(st.integers(min_value=8, max_value=32))
    loop_count = draw(st.integers(min_value=3, max_value=48))
    seed_value = draw(st.integers(min_value=0, max_value=9999))
    statements = []
    for _ in range(draw(st.integers(min_value=1, max_value=5))):
        op = draw(st.sampled_from(_SAFE_OPS))
        k = draw(st.integers(min_value=-19, max_value=19))
        statements.append(f"s = s {op} (i * {k});")
        if draw(st.booleans()):
            d = draw(st.integers(min_value=2, max_value=11))
            statements.append(f"a[i % {array_size}] = s % {d};")
            statements.append(f"s = s + a[(i * 3) % {array_size}];")
    loop_body = "\n    ".join(statements)
    rec_depth = draw(st.integers(min_value=0, max_value=9))
    use_builtins = draw(st.booleans())
    use_rand = draw(st.booleans())
    builtin_block = (
        "s = s + abs(0 - i) + min(s, i) - max(0 - s, i % 5);" if use_builtins else ""
    )
    rand_block = f"srand({seed_value}); s = s + rand() % 100;" if use_rand else ""
    return f"""
int a[{array_size}];

int rec(int n) {{
  if (n < 1) return 1;
  return rec(n - 1) + n % 3;
}}

int main() {{
  int i;
  int s = {seed_value};
  for (i = 0; i < {loop_count}; i++) {{
    {loop_body}
    {builtin_block}
  }}
  {rand_block}
  s = s + rec({rec_depth});
  if (s % 2 == 0) {{ print_int(s); }} else {{ print_int(0 - s); }}
  print_int(s % 97);
  return s % 127;
}}
"""


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(source=minic_programs(), family_level=st.sampled_from(
    [("gcc", "O0"), ("gcc", "O2"), ("llvm", "O1"), ("llvm", "O3"), ("llvm", "Os")]
))
def test_randomized_programs_differential(source, family_level):
    from repro.experiments.scores import make_compiler

    family, level = family_level
    image = make_compiler(family).compile_level(source, level, name="rand").image
    ref, tab = run_both(image)
    if ref is not None:
        assert tab.blocks > 0  # the table engine actually ran fused blocks


# ---------------------------------------------------------------------------
# fault and boundary parity
# ---------------------------------------------------------------------------

DIV_FAULT_SOURCE = """
int main() {
  int i;
  int s = 7;
  int z = 0;
  for (i = 0; i < 10; i++) { s = s + i; }
  s = s / z;
  print_int(s);
  return s;
}
"""

ASSERT_SOURCE = """
int main() {
  int s = 5;
  assert(s > 3);
  assert(s > 9);
  print_int(s);
  return s;
}
"""

EXIT_SOURCE = """
int main() {
  print_int(11);
  exit(42);
  print_int(22);
  return 0;
}
"""


class TestFaultParity:
    def test_division_by_zero(self, gcc):
        image = gcc.compile_level(DIV_FAULT_SOURCE, "O0", name="fault").image
        run_both(image)

    def test_assertion_failure(self, llvm):
        image = llvm.compile_level(ASSERT_SOURCE, "O1", name="asserts").image
        ref, tab = run_both(image)
        assert ref.assertion_failed and tab.assertion_failed

    def test_exit_builtin(self, llvm):
        image = llvm.compile_level(EXIT_SOURCE, "O2", name="exits").image
        ref, tab = run_both(image)
        assert ref.exited and tab.exited and ref.exit_code == 42

    def test_step_limit_parity_at_every_boundary(self, gcc, sample_source):
        """The budget must trip at the same pc with the same message even
        when the limit lands in the middle of a fused block."""
        image = gcc.compile_level(sample_source, "O2", name="sample").image
        with dispatch(TABLE_DISPATCH):
            total = run_program(image).steps
        for limit in (1, 2, 7, 63, 64, 65, total - 1):
            run_both(image, max_steps=limit)
        # And exactly at the step count, both succeed.
        run_both(image, max_steps=total)


# ---------------------------------------------------------------------------
# engine plumbing
# ---------------------------------------------------------------------------

class TestDispatchPlumbing:
    def test_mode_selection(self):
        with dispatch(REFERENCE_DISPATCH):
            assert dispatch_mode() == REFERENCE_DISPATCH
        with dispatch("TABLE"):
            assert dispatch_mode() == TABLE_DISPATCH
        with dispatch("nonsense"):
            assert dispatch_mode() == TABLE_DISPATCH

    def test_decoded_program_cache_shares_across_emulators(self, sample_images_gcc):
        reset_decoded_programs()
        image = sample_images_gcc["O2"]
        with dispatch(TABLE_DISPATCH):
            Emulator(image).run()
            assert decoded_program_cache_size() == 1
            program = decoded_program(image.text)
            blocks_before = len(program.blocks)
            assert blocks_before > 0
            Emulator(image).run()
            # Second run re-used the same decoded program: no new decode work.
            assert decoded_program_cache_size() == 1
            assert decoded_program(image.text) is program

    def test_blocks_counted_only_by_table_engine(self, sample_images_gcc):
        image = sample_images_gcc["O1"]
        with dispatch(REFERENCE_DISPATCH):
            assert run_program(image).blocks == 0
        with dispatch(TABLE_DISPATCH):
            assert run_program(image).blocks > 0

    def test_bad_entry_pc_raises_like_reference(self, sample_images_gcc):
        program = DecodedProgram(sample_images_gcc["O0"].text)
        with pytest.raises(EmulationError, match="program counter out of range"):
            program.block_at(10**9)

    def test_cycles_reset_between_runs_on_reused_emulator(self, sample_images_gcc):
        """Regression: cycles used to accumulate across run() calls."""
        image = sample_images_gcc["O2"]
        for mode in (REFERENCE_DISPATCH, TABLE_DISPATCH):
            with dispatch(mode):
                emulator = Emulator(image)
                first = emulator.run().cycles
                emulator2 = Emulator(image)
                emulator2.run()
                second = emulator2.run().cycles
                assert first > 0
                assert second == first, mode


# ---------------------------------------------------------------------------
# campaign fingerprints
# ---------------------------------------------------------------------------

def _campaign_fingerprint() -> str:
    from repro.experiments.scores import make_compiler
    from repro.workloads import benchmark

    fresh_process_state()
    reset_decoded_programs()
    workload = benchmark("429.mcf")
    tuner = BinTuner(
        make_compiler("gcc"),
        BuildSpec(
            source=workload.source,
            name="429.mcf",
            arguments=workload.arguments,
            inputs=workload.inputs,
        ),
        BinTunerConfig(
            max_iterations=10,
            ga=GAParameters(population_size=5, seed=23),
            stall_window=8,
        ),
    )
    try:
        tuner.run()
        return tuner.database.fingerprint()
    finally:
        tuner.close()


@pytest.mark.slow
def test_campaign_fingerprints_identical_across_engines():
    with dispatch(REFERENCE_DISPATCH):
        reference_fp = _campaign_fingerprint()
    with dispatch(TABLE_DISPATCH):
        table_fp = _campaign_fingerprint()
    assert reference_fp == table_fp


# ---------------------------------------------------------------------------
# incremental NCD == exact NCD
# ---------------------------------------------------------------------------

@contextmanager
def exact_ncd():
    previous = os.environ.get(NCD_EXACT_ENV)
    os.environ[NCD_EXACT_ENV] = "1"
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(NCD_EXACT_ENV, None)
        else:
            os.environ[NCD_EXACT_ENV] = previous


class TestIncrementalNCD:
    @pytest.mark.parametrize("compressor", sorted(_COMPRESSORS))
    def test_joint_size_matches_one_shot(self, compressor, sample_images_gcc):
        baseline = sample_images_gcc["O0"]
        joint = JointCompressor(baseline.text, compressor)
        one_shot = _COMPRESSORS[compressor]
        for level in ("O1", "O2", "O3", "Os"):
            suffix = sample_images_gcc[level].text
            assert joint.joint_size(suffix) == len(one_shot(baseline.text + suffix))
        if compressor == "zlib":
            assert joint.incremental_available
            assert joint.incremental_joints == 4
        else:
            assert not joint.incremental_available
            assert joint.exact_joints == 4

    @pytest.mark.parametrize("compressor", sorted(_COMPRESSORS))
    def test_fitness_identical_with_and_without_incremental(
        self, compressor, sample_images_gcc
    ):
        baseline = sample_images_gcc["O0"]
        candidates = [sample_images_gcc[level] for level in ("O1", "O2", "O3", "Os")]
        incremental = CachedNCDFitness(baseline, compressor=compressor)
        incremental_values = [incremental(candidate) for candidate in candidates]
        with exact_ncd():
            exact = CachedNCDFitness(baseline, compressor=compressor)
            exact_values = [exact(candidate) for candidate in candidates]
        assert incremental_values == exact_values

    def test_exact_hatch_disables_incremental_lane(self, sample_images_gcc):
        joint = JointCompressor(sample_images_gcc["O0"].text, "zlib")
        with exact_ncd():
            joint.joint_size(sample_images_gcc["O2"].text)
        assert joint.exact_joints == 1
        assert joint.incremental_joints == 0

    def test_empty_prefix_and_suffix(self):
        joint = JointCompressor(b"", "zlib")
        assert joint.joint_size(b"") == len(_COMPRESSORS["zlib"](b""))
        assert joint.joint_size(b"abc") == len(_COMPRESSORS["zlib"](b"abc"))
