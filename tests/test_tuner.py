"""Tests for BinTuner: constraints, search engines, database, tuning runs,
potency analysis."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.opt.flags import FlagVector, build_gcc_registry, build_llvm_registry
from repro.tuner import (
    BinTuner,
    BinTunerConfig,
    BuildSpec,
    ConstraintEngine,
    ConstraintViolation,
    GAParameters,
    GeneticAlgorithm,
    HillClimber,
    IterationRecord,
    RandomSearch,
    TuningDatabase,
    flag_potency,
    jaccard_with_level,
)


@pytest.fixture(scope="module")
def registry():
    return build_gcc_registry()


@pytest.fixture(scope="module")
def engine(registry):
    return ConstraintEngine(registry)


TINY_SOURCE = """
int acc[16];
int work(int n) { int i; int s = 0; for (i = 0; i < n; i++) { acc[i % 16] = i * 3; s += acc[i % 16]; } return s; }
int pick(int x) { switch (x) { case 0: return 5; case 1: return 9; case 2: return 13; default: return 1; } }
int main() { int s = work(40); int i; for (i = 0; i < 6; i++) s += pick(i % 4); print_int(s); return s % 101; }
"""


class TestConstraints:
    def test_presets_are_valid(self, registry, engine):
        for level in registry.presets:
            assert engine.is_valid(registry.preset(level))

    def test_missing_prerequisite_detected(self, registry, engine):
        vector = FlagVector(registry, frozenset({"-fpartial-inlining"}))
        assert not engine.is_valid(vector)
        assert any("requires" in problem for problem in engine.violations(vector))

    def test_conflict_detected(self, registry, engine):
        vector = FlagVector(registry, frozenset({"-fconserve-stack", "-falign-loops"}))
        assert any("conflicts" in problem for problem in engine.violations(vector))

    def test_check_raises_on_invalid(self, registry, engine):
        with pytest.raises(ConstraintViolation):
            engine.check(FlagVector(registry, frozenset({"-fpartial-inlining"})))

    def test_repair_adds_prerequisites(self, registry, engine):
        repaired = engine.repair(FlagVector(registry, frozenset({"-fpartial-inlining"})))
        assert "-finline-functions" in repaired

    def test_repair_resolves_conflicts(self, registry, engine):
        repaired = engine.repair(
            FlagVector(registry, frozenset({"-fconserve-stack", "-falign-loops", "-falign-functions"}))
        )
        assert engine.is_valid(repaired)

    def test_constraint_counts(self, engine):
        requires, conflicts = engine.constraint_count()
        assert requires >= 5 and conflicts >= 3

    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(data=st.data())
    def test_repair_always_produces_valid_vectors(self, registry, engine, data):
        bits = data.draw(st.lists(st.integers(0, 1), min_size=len(registry), max_size=len(registry)))
        repaired = engine.sanitize_bits(bits)
        assert engine.is_valid(repaired)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_repair_is_idempotent(self, registry, engine, data):
        bits = data.draw(st.lists(st.integers(0, 1), min_size=len(registry), max_size=len(registry)))
        once = engine.sanitize_bits(bits)
        assert engine.repair(once).enabled == once.enabled

    @pytest.mark.parametrize("seed", [0, 1, 7, 42, 20210620])
    def test_sanitize_invariants_over_seeded_bit_vectors(self, registry, engine, seed):
        """Seeded randomized sweep: sanitize is always valid and idempotent."""
        rng = random.Random(seed)
        for _ in range(40):
            density = rng.random()
            bits = [1 if rng.random() < density else 0 for _ in range(len(registry))]
            repaired = engine.sanitize_bits(bits)
            assert engine.is_valid(repaired)
            again = engine.repair(repaired)
            assert again.enabled == repaired.enabled


class _CountingFitness:
    """A cheap synthetic fitness: rewards vectors close to a hidden target."""

    def __init__(self, registry, seed=5):
        rng = random.Random(seed)
        names = registry.flag_names()
        self.target = {name for name in names if rng.random() < 0.5}
        self.calls = 0

    def __call__(self, flags):
        self.calls += 1
        overlap = len(self.target & flags.enabled)
        miss = len(flags.enabled - self.target)
        return (overlap - 0.3 * miss) / max(len(self.target), 1)


class TestSearchEngines:
    def test_genetic_algorithm_improves_over_random_start(self, registry, engine):
        fitness = _CountingFitness(registry)
        ga = GeneticAlgorithm(registry, engine, GAParameters(population_size=10, seed=3))
        best_flags, best_fitness, evaluations = ga.run(fitness, max_iterations=120)
        assert evaluations <= 120
        assert best_fitness > 0.3
        assert engine.is_valid(best_flags)

    def test_ga_respects_iteration_budget(self, registry, engine):
        fitness = _CountingFitness(registry)
        ga = GeneticAlgorithm(registry, engine, GAParameters(population_size=8, seed=1))
        _, _, evaluations = ga.run(fitness, max_iterations=25)
        assert evaluations <= 25

    def test_ga_observer_sees_every_evaluation(self, registry, engine):
        seen = []
        ga = GeneticAlgorithm(registry, engine, GAParameters(population_size=6, seed=2))
        ga.run(_CountingFitness(registry), max_iterations=18, observer=lambda i, f, s: seen.append(i))
        assert len(seen) <= 18 and seen == sorted(seen)

    def test_ga_terminates_on_plateau(self, registry, engine):
        constant = lambda flags: 0.5
        ga = GeneticAlgorithm(registry, engine, GAParameters(population_size=8, seed=4))
        _, _, evaluations = ga.run(constant, max_iterations=500, stall_window=20)
        assert evaluations < 500

    def test_hill_climber_and_random_search_run(self, registry, engine):
        fitness = _CountingFitness(registry)
        best, score, evals = HillClimber(registry, engine).run(fitness, max_iterations=40)
        assert evals == 40 and engine.is_valid(best)
        best, score, evals = RandomSearch(registry, engine).run(fitness, max_iterations=30)
        assert evals == 30 and engine.is_valid(best)

    def test_strategies_accept_batch_evaluators(self, registry, engine):
        """The batch-first protocol: a batch object sees whole generations."""

        class BatchFitness:
            def __init__(self, inner):
                self.inner = inner
                self.batch_sizes = []

            def evaluate_batch(self, batch):
                self.batch_sizes.append(len(batch))
                return [self.inner(vector) for vector in batch]

        for strategy in (
            GeneticAlgorithm(registry, engine, GAParameters(population_size=6, seed=2)),
            HillClimber(registry, engine),
            RandomSearch(registry, engine),
        ):
            fitness = BatchFitness(_CountingFitness(registry))
            best, _, evals = strategy.run(fitness, max_iterations=20)
            assert evals == sum(fitness.batch_sizes) == 20
            assert max(fitness.batch_sizes) > 1  # generations, not singletons
            assert engine.is_valid(best)


class TestMutationGuarantee:
    def _ga(self, registry, engine, **kwargs):
        return GeneticAlgorithm(registry, engine, GAParameters(**kwargs))

    def test_fallback_never_reverts_a_flip(self, registry, engine):
        """Regression: with mutation_rate=0 the fallback loop used to pick an
        already-flipped index and revert it, so "at least N mutations" could
        silently become zero.  On a 3-bit chromosome collisions are frequent;
        every outcome must differ in exactly must_mutate_count positions."""
        ga = self._ga(registry, engine, mutation_rate=0.0, must_mutate_count=2, seed=0)
        for _ in range(300):
            bits = [0, 0, 0]
            mutated = ga._mutate_bits(list(bits))
            assert sum(a != b for a, b in zip(bits, mutated)) == 2

    def test_minimum_flips_across_seeds(self, registry, engine):
        for seed in range(25):
            ga = self._ga(registry, engine, mutation_rate=0.02, must_mutate_count=3, seed=seed)
            bits = [0] * len(registry)
            mutated = ga._mutate_bits(list(bits))
            assert sum(a != b for a, b in zip(bits, mutated)) >= 3

    def test_must_mutate_count_capped_by_chromosome_length(self, registry, engine):
        ga = self._ga(registry, engine, mutation_rate=0.0, must_mutate_count=10, seed=1)
        mutated = ga._mutate_bits([0, 1])
        assert sum(a != b for a, b in zip([0, 1], mutated)) == 2  # all bits, no hang

    def test_mutate_returns_valid_vector(self, registry, engine):
        ga = self._ga(registry, engine, seed=5)
        vector = registry.preset("O2")
        assert engine.is_valid(ga._mutate(vector))


class TestStallDetection:
    def test_exactly_window_length_history_is_not_stalled(self):
        history = [0.5] * 20
        assert not GeneticAlgorithm._stalled(history, window=20, threshold=0.01)
        assert GeneticAlgorithm._stalled([0.5] * 21, window=20, threshold=0.01)

    def test_empty_and_short_history(self):
        assert not GeneticAlgorithm._stalled([], window=10, threshold=0.01)
        assert not GeneticAlgorithm._stalled([1.0], window=10, threshold=0.01)

    def test_non_positive_previous_best(self):
        # previous == 0: stalled only if no growth at all.
        assert GeneticAlgorithm._stalled([0.0, 0.0, 0.0], window=1, threshold=0.01)
        assert not GeneticAlgorithm._stalled([0.0, 0.0, 0.5], window=1, threshold=0.01)
        # previous < 0 (penalty scores): any climb above it keeps searching.
        assert not GeneticAlgorithm._stalled([-1.0, -1.0, 0.4], window=1, threshold=0.01)
        assert GeneticAlgorithm._stalled([-1.0, -1.0, -1.0], window=1, threshold=0.01)

    def test_relative_growth_threshold(self):
        grown = [1.0, 1.0, 1.02]
        assert not GeneticAlgorithm._stalled(grown, window=1, threshold=0.01)
        flat = [1.0, 1.0, 1.005]
        assert GeneticAlgorithm._stalled(flat, window=1, threshold=0.01)


class TestDatabase:
    def _record(self, i, fitness):
        return IterationRecord(
            iteration=i, flags=(f"-f{i}",), fitness=fitness, code_size=100 + i,
            fingerprint=f"fp{i}", elapsed_seconds=0.01,
        )

    def test_best_and_history(self):
        db = TuningDatabase(program="p", compiler="c")
        for i, fitness in enumerate([0.2, 0.5, 0.4, 0.9, 0.7], start=1):
            db.record(self._record(i, fitness))
        assert db.best().fitness == 0.9
        assert db.fitness_history() == [0.2, 0.5, 0.5, 0.9, 0.9]
        assert len(db) == 5

    def test_lookup_by_flags(self):
        db = TuningDatabase()
        db.record(self._record(1, 0.3))
        assert db.lookup(("-f1",)).fitness == 0.3
        assert db.lookup(("-other",)) is None

    def test_growth_rate_reaches_plateau(self):
        db = TuningDatabase()
        for i in range(40):
            db.record(self._record(i, 0.5))
        assert db.growth_rate(window=10) == 0.0

    def test_json_roundtrip(self, tmp_path):
        db = TuningDatabase(program="p", compiler="c")
        db.record(self._record(1, 0.4))
        path = tmp_path / "db.json"
        db.save(path)
        restored = TuningDatabase.load(path)
        assert restored.program == "p" and len(restored) == 1
        assert restored.best().fitness == 0.4


class TestBinTunerEndToEnd:
    @pytest.fixture(scope="class")
    def tuning_result(self, llvm):
        spec = BuildSpec(name="tiny", source=TINY_SOURCE)
        config = BinTunerConfig(max_iterations=18, ga=GAParameters(population_size=6, seed=9), stall_window=12)
        tuner = BinTuner(llvm, spec, config)
        return tuner, tuner.run()

    def test_run_produces_best_binary(self, tuning_result):
        tuner, result = tuning_result
        assert result.best_fitness > 0.0
        assert result.best_image.code_size() > 0
        assert result.iterations <= 18
        assert len(result.database) == result.iterations

    def test_tuned_binary_behaves_like_baseline(self, tuning_result):
        from repro.analysis import run_program

        tuner, result = tuning_result
        assert (
            run_program(result.best_image).observable_state()
            == run_program(result.baseline_image).observable_state()
        )

    def test_bintuner_beats_or_matches_default_levels(self, tuning_result):
        tuner, result = tuning_result
        levels = tuner.compare_levels()
        assert result.best_fitness >= max(levels.values()) - 0.02

    def test_database_caches_repeat_evaluations(self, tuning_result):
        tuner, result = tuning_result
        size_before = len(tuner.database)
        tuner.evaluate(result.best_flags)
        assert len(tuner.database) == size_before

    def test_invalid_vector_scores_penalty(self, llvm):
        spec = BuildSpec(name="tiny", source=TINY_SOURCE)
        tuner = BinTuner(llvm, spec, BinTunerConfig(max_iterations=5))
        registry = llvm.registry
        invalid = FlagVector(registry, frozenset({"-fpartial-inlining"}))
        assert tuner.evaluate(invalid) == tuner.config.invalid_fitness

    def test_programming_errors_escape_evaluate(self, llvm, monkeypatch):
        """Only domain failures may score the penalty; an injected TypeError
        must propagate instead of becoming an invalid_fitness record."""
        spec = BuildSpec(name="tiny", source=TINY_SOURCE)
        tuner = BinTuner(llvm, spec, BinTunerConfig(max_iterations=5))
        tuner.evaluation_engine()  # build the baseline before breaking compile

        def broken_compile(*args, **kwargs):
            raise TypeError("injected bug")

        monkeypatch.setattr(llvm, "compile", broken_compile)
        records_before = len(tuner.database)
        with pytest.raises(TypeError):
            tuner.evaluate(llvm.preset("O1"))
        assert len(tuner.database) == records_before  # no bogus penalty record

    def test_parallel_config_knobs_default_to_serial(self):
        config = BinTunerConfig()
        assert config.workers == 1 and config.executor == "serial"

    def test_flag_potency_report(self, llvm, tuning_result):
        tuner, result = tuning_result
        report = flag_potency(llvm, TINY_SOURCE, result.best_flags, program_name="tiny", max_flags=6)
        assert abs(sum(report.shares.values()) - 1.0) < 1e-6 or not report.shares
        assert 0.0 <= report.jaccard_with_o3 <= 1.0
        assert report.top(3)

    def test_jaccard_with_level_helper(self, llvm):
        assert jaccard_with_level(llvm, llvm.preset("O3"), "O3") == 1.0
