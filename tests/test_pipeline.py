"""Tests for the staged evaluation pipeline (:mod:`repro.tuner.pipeline`).

The load-bearing guarantees:

* the staged pipeline produces results — records, order, database
  fingerprints — bit-for-bit identical to the monolithic evaluator on the
  serial, thread, process and distributed executors;
* the :class:`ArtifactCache` is a correct bounded LRU with honest hit/miss/
  eviction accounting, and eviction never changes any result;
* compile artifacts are content-addressed (compiler, source digest, flags)
  and traces by (image digest, workload), so shared caches are safe across
  evaluators, programs and reruns — a warm-started rerun stops recompiling;
* the final best-candidate build is served from the cache instead of being
  recompiled from scratch, and ``compare_levels`` goes through the stages;
* with a disk-backed store (:mod:`repro.tuner.store`) behind the cache, a
  run restarted in a *fresh process* is bit-for-bit identical to — and
  compiles nothing already compiled by — the cold run, on every executor,
  with the store cold, warm, or GC-thrashed mid-run (the property-based
  harness at the bottom randomizes seeds and flag domains over exactly
  that invariant).
"""

from __future__ import annotations

import pickle
import shutil
import tempfile
import threading
from pathlib import Path

import pytest
from _helpers import fresh_process_state, loopback_available
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import Campaign, CampaignConfig, ProgramJob
from repro.difftools import NCDFitness
from repro.tuner import (
    ArtifactCache,
    BinTuner,
    BinTunerConfig,
    BuildSpec,
    CompileStage,
    GAParameters,
    MeasureStage,
    ScoreStage,
    StagedCandidateEvaluator,
    TunerCandidateEvaluator,
    persistent_store,
    shared_artifact_cache,
    shared_compile_lane,
    shutdown_compile_lane,
)
from repro.tuner.evaluation import split_into_chunks

TINY_SOURCE = """
int acc[16];
int work(int n) { int i; int s = 0; for (i = 0; i < n; i++) { acc[i % 16] = i * 3; s += acc[i % 16]; } return s; }
int pick(int x) { switch (x) { case 0: return 5; case 1: return 9; case 2: return 13; default: return 1; } }
int main() { int s = work(40); int i; for (i = 0; i < 6; i++) s += pick(i % 4); print_int(s); return s % 101; }
"""

TINY_B = """
int grid[24];
int mix(int n) { int i; int s = 1; for (i = 1; i < n; i++) { grid[i % 24] = s ^ (i * 5); s += grid[i % 24] % 7; } return s; }
int main() { int s = mix(30); print_int(s); return s % 97; }
"""

SOURCES = {"tiny-a": TINY_SOURCE, "tiny-b": TINY_B}
JOBS = [ProgramJob("llvm", "tiny-a"), ProgramJob("llvm", "tiny-b")]


def tiny_spec(job: ProgramJob) -> BuildSpec:
    return BuildSpec(name=job.program, source=SOURCES[job.program])


def signature(record):
    """Identity fields of one record (everything but wall-clock timing)."""
    return (record.iteration, record.flags, record.fitness, record.code_size,
            record.fingerprint, record.generation, record.valid)


def tune(llvm, pipeline, executor="serial", workers=1, cache=None, max_iterations=16):
    config = BinTunerConfig(
        max_iterations=max_iterations,
        ga=GAParameters(population_size=6, seed=9),
        stall_window=12,
        pipeline=pipeline,
        executor=executor,
        workers=workers,
    )
    tuner = BinTuner(
        llvm, BuildSpec(name="tiny", source=TINY_SOURCE), config, artifact_cache=cache
    )
    try:
        return tuner.run(), tuner
    finally:
        tuner.close()


# ---------------------------------------------------------------------------
# the artifact cache
# ---------------------------------------------------------------------------

class TestArtifactCache:
    def test_hit_miss_accounting(self):
        cache = ArtifactCache(max_entries=8)
        assert cache.get(("image", "a")) is None
        cache.put(("image", "a"), "artifact-a")
        assert cache.get(("image", "a")) == "artifact-a"
        assert (cache.hits, cache.misses) == (1, 1)
        assert 0.0 < cache.hit_ratio < 1.0
        stats = cache.stats()
        assert stats["entries"] == 1 and stats["evictions"] == 0

    def test_lru_eviction_order(self):
        cache = ArtifactCache(max_entries=2)
        cache.put(("k", 1), "one")
        cache.put(("k", 2), "two")
        assert cache.get(("k", 1)) == "one"  # 1 becomes most recent
        cache.put(("k", 3), "three")         # evicts 2, the LRU entry
        assert cache.get(("k", 2)) is None
        assert cache.get(("k", 1)) == "one"
        assert cache.get(("k", 3)) == "three"
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_bound_is_enforced(self):
        cache = ArtifactCache(max_entries=3)
        for index in range(10):
            cache.put(("k", index), index)
        assert len(cache) == 3
        assert cache.evictions == 7

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            ArtifactCache(max_entries=0)

    def test_clear(self):
        cache = ArtifactCache()
        cache.put(("k",), 1)
        cache.clear()
        assert len(cache) == 0 and cache.get(("k",)) is None


# ---------------------------------------------------------------------------
# the stages
# ---------------------------------------------------------------------------

class TestStages:
    def test_compile_stage_content_addressing(self, llvm):
        cache = ArtifactCache()
        stage = CompileStage(llvm, TINY_SOURCE, "tiny", cache, compressor="lzma")
        key = tuple(llvm.preset("O2").sorted_names())
        cold = stage.run(key)
        warm = stage.run(key)
        assert not cold.cached and warm.cached
        assert warm.value is cold.value  # the artifact itself, not a copy
        assert cold.value.image.fingerprint() == (
            llvm.compile(TINY_SOURCE, llvm.preset("O2"), name="tiny").image.fingerprint()
        )
        # The precomputed compressed size is exactly what scoring would use.
        import lzma

        assert cold.value.text_compressed_size == len(
            lzma.compress(cold.value.image.text, preset=6)
        )

    def test_compile_stage_key_separates_sources_and_flags(self, llvm):
        cache = ArtifactCache()
        stage_a = CompileStage(llvm, TINY_SOURCE, "a", cache)
        stage_b = CompileStage(llvm, TINY_B, "b", cache)
        key = tuple(llvm.preset("O1").sorted_names())
        assert stage_a.key(key) != stage_b.key(key)
        assert stage_a.key(key) != stage_a.key(tuple(llvm.preset("O2").sorted_names()))
        stage_a.run(key)
        # The other source is a different address: no false sharing.
        assert not stage_b.run(key).cached

    def test_measure_stage_keyed_by_image_digest(self, llvm):
        cache = ArtifactCache()
        stage = MeasureStage(arguments=(), inputs=(), max_steps=2_000_000, cache=cache)
        image = llvm.compile_level(TINY_SOURCE, "O1", name="tiny").image
        cold = stage.run(image)
        warm = stage.run(image)
        assert not cold.cached and warm.cached
        assert warm.value.behaviour == cold.value.behaviour
        assert cold.value.steps > 0 and cold.value.cycles > 0
        # A different workload is a different address.
        other = MeasureStage(arguments=(3,), inputs=(), max_steps=2_000_000, cache=cache)
        assert other.key(image) != stage.key(image)

    def test_score_stage_matches_plain_fitness(self, llvm):
        from repro.difftools import CachedNCDFitness

        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        cache = ArtifactCache()
        compile_stage = CompileStage(llvm, TINY_SOURCE, "tiny", cache, compressor="lzma")
        fitness = CachedNCDFitness(baseline)
        stage = ScoreStage(fitness)
        plain = NCDFitness(baseline)
        for level in ("O1", "O2", "O3"):
            artifact = compile_stage.run(tuple(llvm.preset(level).sorted_names())).value
            assert stage.run(artifact).value == plain(artifact.image)


# ---------------------------------------------------------------------------
# the staged evaluator
# ---------------------------------------------------------------------------

@pytest.fixture
def evaluator_pair(llvm):
    baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
    common = dict(compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline)
    return (
        StagedCandidateEvaluator(artifact_cache=ArtifactCache(), **common),
        TunerCandidateEvaluator(**common),
    )


class TestStagedEvaluator:
    def test_results_match_monolithic(self, llvm, evaluator_pair):
        staged, monolithic = evaluator_pair
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2", "O3", "Os")]
        keys.append(("-fpartial-inlining",))  # constraint violation: invalid
        for key in keys:
            lhs, rhs = staged(key), monolithic(key)
            assert (lhs.fitness, lhs.code_size, lhs.fingerprint, lhs.valid) == (
                rhs.fitness, rhs.code_size, rhs.fingerprint, rhs.valid
            )
        assert staged(keys[-1]).staged and not monolithic(keys[-1]).staged

    def test_batch_matches_sequential_in_order(self, llvm, evaluator_pair):
        staged, _monolithic = evaluator_pair
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2", "O3")]
        keys.append(("-fpartial-inlining",))
        sequential = [staged(key) for key in keys]
        fresh = StagedCandidateEvaluator(
            compiler=staged.compiler, source=staged.source, name=staged.name,
            baseline=staged.baseline, artifact_cache=ArtifactCache(),
        )
        batched = fresh.evaluate_batch(keys)
        assert [
            (r.fitness, r.code_size, r.fingerprint, r.valid) for r in batched
        ] == [
            (r.fitness, r.code_size, r.fingerprint, r.valid) for r in sequential
        ]

    def test_artifact_hits_reported_per_candidate(self, llvm):
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        cache = ArtifactCache()
        common = dict(compiler=llvm, source=TINY_SOURCE, name="tiny",
                      baseline=baseline, artifact_cache=cache)
        key = tuple(llvm.preset("O2").sorted_names())
        cold = StagedCandidateEvaluator(**common)(key)
        assert cold.artifact_hits == 0 and cold.artifact_misses >= 1
        # A second evaluator sharing the cache reuses the compiled artifact.
        warm = StagedCandidateEvaluator(**common)(key)
        assert warm.artifact_hits >= 1
        assert (warm.fitness, warm.fingerprint) == (cold.fitness, cold.fingerprint)
        assert cache.hits >= 1

    def test_cached_unchecked_compile_cannot_bypass_constraints(self, llvm):
        """compare_levels compiles without a constraint check (matching the
        monolithic compile_level path); a conflicting key it happened to
        cache must still score invalid when the *search* evaluates it."""
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        evaluator = StagedCandidateEvaluator(
            compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline,
            artifact_cache=ArtifactCache(),
        )
        conflicting = ("-fpartial-inlining",)  # missing its prerequisite
        evaluator.score_flags(conflicting)  # unchecked: compiles and caches
        result = evaluator(conflicting)     # search path: constraint-checked
        assert not result.valid and result.fingerprint == "invalid"

    def test_shared_cache_across_compressors_keeps_scores_exact(self, llvm):
        """The precomputed C(.text) is compressor-specific, so the compile
        artifact's address must be too — a shared cache must never serve one
        compressor's size to another's scoring."""
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        cache = ArtifactCache()
        key = tuple(llvm.preset("O2").sorted_names())
        common = dict(compiler=llvm, source=TINY_SOURCE, name="tiny",
                      baseline=baseline, artifact_cache=cache)
        lzma_result = StagedCandidateEvaluator(compressor="lzma", **common)(key)
        zlib_result = StagedCandidateEvaluator(compressor="zlib", **common)(key)
        reference = TunerCandidateEvaluator(
            compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline,
            compressor="zlib",
        )(key)
        assert zlib_result.fitness == reference.fitness
        assert zlib_result.fitness != lzma_result.fitness  # sanity: they differ

    def test_pickle_round_trip_adopts_shared_cache(self, llvm, evaluator_pair):
        staged, _monolithic = evaluator_pair
        key = tuple(llvm.preset("O1").sorted_names())
        original = staged(key)
        clone = pickle.loads(pickle.dumps(staged))
        assert clone.artifact_cache is shared_artifact_cache()
        assert clone(key).fitness == original.fitness

    def test_programming_errors_propagate_from_batch(self, llvm, monkeypatch):
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        evaluator = StagedCandidateEvaluator(
            compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline,
            artifact_cache=ArtifactCache(),
        )

        def broken_compile(*args, **kwargs):
            raise TypeError("injected bug")

        monkeypatch.setattr(evaluator.compiler, "compile", broken_compile)
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2")]
        with pytest.raises(TypeError):
            evaluator.evaluate_batch(keys)

    def test_lookahead_and_cap_never_change_results(self, llvm):
        """The lookahead window and the in-flight byte cap schedule work;
        they must never reorder or alter a single result."""
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2", "O3", "Os")]
        keys.append(("-fpartial-inlining",))  # invalid rides along

        def run(**knobs):
            evaluator = StagedCandidateEvaluator(
                compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline,
                artifact_cache=ArtifactCache(), **knobs,
            )
            return [
                (r.fitness, r.code_size, r.fingerprint, r.valid)
                for r in evaluator.evaluate_batch(keys)
            ]

        reference = run(lookahead=1)
        assert run(lookahead=8) == reference
        assert run(lookahead=3, inflight_artifact_bytes=1) == reference
        assert run(lookahead=3, inflight_artifact_bytes=None) == reference

    def test_compile_lane_is_persistent_and_process_wide(self, llvm):
        lane = shared_compile_lane()
        assert shared_compile_lane() is lane  # singleton across callers
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        evaluator = StagedCandidateEvaluator(
            compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline,
            artifact_cache=ArtifactCache(),
        )
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2")]
        evaluator.evaluate_batch(keys)
        evaluator.evaluate_batch(keys)
        # Batches never tore the lane down.
        assert shared_compile_lane() is lane
        # The test hook rebuilds it (what a forked child does via the pid
        # guard): a fresh executor, still usable.
        shutdown_compile_lane()
        rebuilt = shared_compile_lane()
        assert rebuilt is not lane
        assert rebuilt.submit(lambda: 42).result() == 42

    def test_split_into_chunks_is_deterministic_and_total(self):
        items = list(range(11))
        chunks = split_into_chunks(items, 4)
        assert [item for chunk in chunks for item in chunk] == items
        assert [len(chunk) for chunk in chunks] == [3, 3, 3, 2]
        assert split_into_chunks(items, 4) == chunks
        assert split_into_chunks([], 4) == []
        assert split_into_chunks([1, 2], 8) == [[1], [2]]


# ---------------------------------------------------------------------------
# tuner integration: parity, cache reuse, the best-image fast path
# ---------------------------------------------------------------------------

class TestTunerPipelineParity:
    def test_staged_serial_matches_monolithic(self, llvm):
        mono, _tuner = tune(llvm, "monolithic")
        staged, _tuner = tune(llvm, "staged")
        assert staged.database.fingerprint() == mono.database.fingerprint()
        assert staged.best_flags.sorted_names() == mono.best_flags.sorted_names()
        assert [signature(r) for r in staged.database.records] == [
            signature(r) for r in mono.database.records
        ]
        assert staged.best_image.fingerprint() == mono.best_image.fingerprint()

    def test_staged_thread_matches_monolithic_serial(self, llvm):
        mono, _tuner = tune(llvm, "monolithic")
        staged, _tuner = tune(llvm, "staged", executor="thread", workers=2)
        assert staged.database.fingerprint() == mono.database.fingerprint()

    @pytest.mark.slow
    def test_staged_process_four_workers_matches_monolithic_serial(self, llvm):
        mono, _tuner = tune(llvm, "monolithic")
        staged, _tuner = tune(llvm, "staged", executor="process", workers=4)
        assert staged.database.fingerprint() == mono.database.fingerprint()
        assert staged.best_flags.sorted_names() == mono.best_flags.sorted_names()

    def test_unknown_pipeline_rejected(self, llvm):
        with pytest.raises(ValueError):
            BinTuner(
                llvm,
                BuildSpec(name="tiny", source=TINY_SOURCE),
                BinTunerConfig(pipeline="quantum"),
            )


class TestTunerCacheReuse:
    def test_best_image_served_from_cache_not_recompiled(self, llvm, monkeypatch):
        """The run() bugfix: one compile less than the monolithic path."""
        calls = []
        original = llvm.compile

        def counting_compile(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(llvm, "compile", counting_compile)
        _result, _tuner = tune(llvm, "monolithic")
        monolithic_calls = len(calls)
        calls.clear()
        _result, _tuner = tune(llvm, "staged")
        staged_calls = len(calls)
        # Identical seeded searches compile identical candidate sets; the
        # staged run skips exactly the final best-candidate recompile.
        assert staged_calls == monolithic_calls - 1

    def test_compare_levels_matches_and_caches(self, llvm, monkeypatch):
        mono_result, mono_tuner = tune(llvm, "monolithic")
        staged_result, staged_tuner = tune(llvm, "staged")
        assert staged_tuner.compare_levels() == mono_tuner.compare_levels()
        calls = []
        original = llvm.compile

        def counting_compile(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(llvm, "compile", counting_compile)
        staged_tuner.compare_levels()  # every preset is already an artifact
        assert calls == []

    def test_warm_rerun_hits_artifact_cache(self, llvm):
        cache = ArtifactCache()
        cold, _tuner = tune(llvm, "staged", cache=cache)
        warm, _tuner = tune(llvm, "staged", cache=cache)
        assert warm.database.fingerprint() == cold.database.fingerprint()
        stats = warm.evaluation_stats
        assert stats.artifact_hits > 0
        assert stats.artifact_hit_ratio == 1.0  # every stage was cached
        assert warm.evaluation_stats.evaluated == cold.evaluation_stats.evaluated

    def test_eviction_never_changes_results(self, llvm):
        unbounded, _tuner = tune(llvm, "staged", cache=ArtifactCache())
        tiny_cache = ArtifactCache(max_entries=2)
        bounded, _tuner = tune(llvm, "staged", cache=tiny_cache)
        assert tiny_cache.evictions > 0
        assert bounded.database.fingerprint() == unbounded.database.fingerprint()
        assert bounded.best_image.fingerprint() == unbounded.best_image.fingerprint()


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------

class TestCampaignPipeline:
    def _campaign(self, **config_kwargs):
        config = CampaignConfig(
            tuner=BinTunerConfig(
                max_iterations=12, ga=GAParameters(population_size=6, seed=9),
                stall_window=10,
            ),
            **config_kwargs,
        )
        return Campaign(JOBS, config, spec_provider=tiny_spec)

    def test_staged_campaign_matches_monolithic(self):
        mono = self._campaign(pipeline="monolithic").run()
        staged = self._campaign(pipeline="staged").run()
        assert staged.database.fingerprint() == mono.database.fingerprint()
        assert mono.artifact_cache_stats is None
        assert staged.artifact_cache_stats is not None
        assert staged.artifact_cache_stats["misses"] > 0

    def test_eviction_under_warm_started_campaign(self):
        """A 2-entry campaign cache thrashes constantly (warm starts and all)
        yet the database is identical to the generously cached run."""
        roomy = self._campaign(pipeline="staged", warm_start=True).run()
        tight = self._campaign(
            pipeline="staged", warm_start=True, artifact_cache_size=2
        ).run()
        assert tight.artifact_cache_stats["evictions"] > 0
        assert tight.database.fingerprint() == roomy.database.fingerprint()

    def test_evaluation_stats_survive_checkpoint_manifest(self, tmp_path):
        first = self._campaign(
            pipeline="staged", checkpoint_dir=tmp_path / "ckpt"
        ).run()
        resumed = self._campaign(
            pipeline="staged", checkpoint_dir=tmp_path / "ckpt"
        ).run()
        assert all(program.resumed for program in resumed.programs)
        for program in resumed.programs:
            stats = program.evaluation_stats
            assert stats is not None and stats.evaluated > 0
            live = first.result_for(program.job.family, program.job.program)
            assert stats.evaluated == live.evaluation_stats.evaluated
            assert stats.artifact_misses == live.evaluation_stats.artifact_misses
        assert resumed.database.fingerprint() == first.database.fingerprint()

    def test_monolithic_knob_reaches_tuner(self):
        campaign = self._campaign(pipeline="monolithic")
        assert campaign.artifact_cache is None
        with pytest.raises(ValueError):
            self._campaign(pipeline="quantum")


# ---------------------------------------------------------------------------
# distributed parity (loopback-gated, slow: 4 worker threads)
# ---------------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.skipif(not loopback_available(), reason="no AF_INET loopback in this sandbox")
def test_staged_distributed_four_workers_matches_monolithic_serial(llvm):
    from repro.distrib.worker import serve

    mono, _tuner = tune(llvm, "monolithic")
    config = BinTunerConfig(
        max_iterations=16, ga=GAParameters(population_size=6, seed=9),
        stall_window=12, pipeline="staged", executor="distributed",
    )
    tuner = BinTuner(llvm, BuildSpec(name="tiny", source=TINY_SOURCE), config)
    engine = tuner.evaluation_engine()
    coordinator = engine.mapper.coordinator
    threads = [
        threading.Thread(
            target=serve,
            kwargs=dict(connect=coordinator.address_string(), hard_exit=False,
                        slots=2, heartbeat_interval=0.5),
            daemon=True,
        )
        for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    coordinator.wait_for_workers(4, timeout=10)
    try:
        staged = tuner.run()
    finally:
        tuner.close()
    assert staged.database.fingerprint() == mono.database.fingerprint()
    assert staged.best_flags.sorted_names() == mono.best_flags.sorted_names()


# ---------------------------------------------------------------------------
# the disk store behind the cache: worker rehydration + executor parity
# ---------------------------------------------------------------------------

def tune_with_store(
    llvm,
    store_dir,
    ga_seed=9,
    population=6,
    warm_start=(),
    executor="serial",
    workers=1,
    store_max_bytes=None,
    max_iterations=12,
):
    config = BinTunerConfig(
        max_iterations=max_iterations,
        ga=GAParameters(population_size=population, seed=ga_seed),
        stall_window=10,
        pipeline="staged",
        executor=executor,
        workers=workers,
        warm_start=warm_start,
        store_dir=store_dir,
        store_max_bytes=store_max_bytes,
    )
    tuner = BinTuner(llvm, BuildSpec(name="tiny", source=TINY_SOURCE), config)
    try:
        return tuner.run()
    finally:
        tuner.close()


class TestStoreBackedEvaluator:
    def test_fresh_worker_process_is_warm_from_store(self, llvm, tmp_path, monkeypatch):
        """The worker-side fix: the process-global cache only shares state
        within one interpreter, so a *fresh* worker process used to start
        cold.  With ``store_dir`` in the evaluator blob, the rehydrated
        evaluator consults the disk tier before compiling anything."""
        fresh_process_state()
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        evaluator = StagedCandidateEvaluator(
            compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline,
            store_dir=str(tmp_path / "store"),
        )
        key = tuple(llvm.preset("O2").sorted_names())
        original = evaluator(key)
        assert original.artifact_store_hits == 0  # cold: really compiled
        blob = pickle.dumps(evaluator)
        fresh_process_state()  # the next unpickle acts like a new interpreter
        clone = pickle.loads(blob)

        def recompile_is_a_bug(*_args, **_kwargs):
            raise AssertionError("fresh worker recompiled a stored configuration")

        monkeypatch.setattr(clone.compiler, "compile", recompile_is_a_bug)
        result = clone(key)
        assert (result.fitness, result.code_size, result.fingerprint, result.valid) == (
            original.fitness, original.code_size, original.fingerprint, original.valid
        )
        assert result.artifact_store_hits >= 1 and result.artifact_misses == 0

    def test_attach_store_repoints_at_a_worker_local_tier(self, llvm, tmp_path):
        """The distributed worker's ``--store-dir`` override: the
        orchestrator's path is replaced by the worker's own before any
        evaluation, so artifacts land in the local tier."""
        fresh_process_state()
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        evaluator = StagedCandidateEvaluator(
            compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline,
            store_dir=str(tmp_path / "orchestrator"),
        )
        clone = pickle.loads(pickle.dumps(evaluator))
        clone.attach_store(tmp_path / "worker-local")
        clone(tuple(llvm.preset("O1").sorted_names()))
        local = persistent_store(tmp_path / "worker-local")
        assert len(local) > 0
        # The foreign path was never even created, let alone written.
        assert not (tmp_path / "orchestrator").exists()

    def test_attach_store_none_detaches_the_disk_tier(self, llvm, tmp_path):
        """The worker's ``--no-store``: the orchestrator's baked-in path is
        dropped entirely — no local persistence, no foreign directories."""
        fresh_process_state()
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        evaluator = StagedCandidateEvaluator(
            compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline,
            store_dir=str(tmp_path / "orchestrator"),
        )
        clone = pickle.loads(pickle.dumps(evaluator))
        clone.attach_store(None)
        result = clone(tuple(llvm.preset("O1").sorted_names()))
        assert result.valid and result.artifact_store_hits == 0
        assert clone.artifact_cache.store is None
        assert not (tmp_path / "orchestrator").exists()

    def test_eviction_of_the_memory_tier_falls_back_to_disk(self, llvm, tmp_path):
        """A 1-entry memory tier thrashes constantly; results still come
        from the store, not from recompilation, and stay identical."""
        fresh_process_state()
        reference = tune_with_store(llvm, tmp_path / "store")
        fresh_process_state()
        config = BinTunerConfig(
            max_iterations=12, ga=GAParameters(population_size=6, seed=9),
            stall_window=10, store_dir=tmp_path / "store", artifact_cache_size=1,
        )
        tuner = BinTuner(llvm, BuildSpec(name="tiny", source=TINY_SOURCE), config)
        try:
            tiny_memory = tuner.run()
        finally:
            tuner.close()
        assert tiny_memory.database.fingerprint() == reference.database.fingerprint()
        assert tiny_memory.evaluation_stats.artifact_misses == 0
        assert tiny_memory.evaluation_stats.artifact_store_hits > 0


class TestStoreParityProperties:
    """The property-based harness: for randomized GA seeds, populations, and
    warm-start flag domains, serial == thread == restart-warm == GC-evicted
    fingerprints, and a restart-warm run recompiles nothing."""

    @settings(max_examples=4, deadline=None, database=None)
    @given(data=st.data())
    def test_cold_warm_restart_and_gc_runs_are_identical(self, llvm, data):
        ga_seed = data.draw(st.integers(0, 2**16), label="ga_seed")
        population = data.draw(st.integers(4, 8), label="population")
        names = sorted(llvm.registry.flag_names())
        warm_start = tuple(
            tuple(sorted(set(subset)))
            for subset in data.draw(
                st.lists(
                    st.lists(st.sampled_from(names), min_size=1, max_size=4),
                    max_size=2,
                ),
                label="warm_start",
            )
        )
        knobs = dict(ga_seed=ga_seed, population=population, warm_start=warm_start,
                     max_iterations=10)
        root = Path(tempfile.mkdtemp(prefix="repro-store-prop-"))
        try:
            fresh_process_state()
            cold = tune_with_store(llvm, root / "store", **knobs)
            fingerprint = cold.database.fingerprint()

            # Restart-warm: a fresh process over the same store must be
            # bit-for-bit identical to the cold run and compile nothing.
            fresh_process_state()
            restarted = tune_with_store(llvm, root / "store", **knobs)
            assert restarted.database.fingerprint() == fingerprint
            stats = restarted.evaluation_stats
            assert stats.artifact_misses == 0
            assert stats.artifact_store_hits > 0
            assert stats.evaluated == cold.evaluation_stats.evaluated

            # The thread executor over the same (now warm) store.
            fresh_process_state()
            threaded = tune_with_store(
                llvm, root / "store", executor="thread", workers=2, **knobs
            )
            assert threaded.database.fingerprint() == fingerprint

            # A byte budget smaller than one entry: GC evicts mid-run,
            # constantly; eviction must never change any result.
            fresh_process_state()
            thrashed = tune_with_store(
                llvm, root / "tiny-store", store_max_bytes=1024, **knobs
            )
            assert thrashed.database.fingerprint() == fingerprint
            assert persistent_store(root / "tiny-store").gc_evictions > 0
        finally:
            shutil.rmtree(root, ignore_errors=True)


@pytest.mark.slow
class TestStoreParitySlow:
    """Restart-warm parity on the multi-process executors (CI's determinism
    job): fresh worker processes must be served by the disk tier."""

    def test_process_pool_restart_warm_matches_cold(self, llvm, tmp_path):
        fresh_process_state()
        cold = tune_with_store(
            llvm, tmp_path / "store", executor="process", workers=4, max_iterations=16
        )
        fresh_process_state()
        restarted = tune_with_store(
            llvm, tmp_path / "store", executor="process", workers=4, max_iterations=16
        )
        assert restarted.database.fingerprint() == cold.database.fingerprint()
        stats = restarted.evaluation_stats
        assert stats.artifact_misses == 0 and stats.artifact_store_hits > 0

    @pytest.mark.skipif(not loopback_available(),
                        reason="no AF_INET loopback in this sandbox")
    def test_distributed_restart_warm_matches_cold(self, llvm, tmp_path):
        from repro.distrib.worker import serve

        def run():
            config = BinTunerConfig(
                max_iterations=16, ga=GAParameters(population_size=6, seed=9),
                stall_window=12, pipeline="staged", executor="distributed",
                store_dir=tmp_path / "store",
            )
            tuner = BinTuner(llvm, BuildSpec(name="tiny", source=TINY_SOURCE), config)
            engine = tuner.evaluation_engine()
            coordinator = engine.mapper.coordinator
            threads = [
                threading.Thread(
                    target=serve,
                    kwargs=dict(connect=coordinator.address_string(),
                                hard_exit=False, slots=2, heartbeat_interval=0.5),
                    daemon=True,
                )
                for _ in range(2)
            ]
            for thread in threads:
                thread.start()
            coordinator.wait_for_workers(2, timeout=10)
            try:
                return tuner.run()
            finally:
                tuner.close()

        fresh_process_state()
        cold = run()
        fresh_process_state()  # worker threads shared this process's caches
        restarted = run()
        assert restarted.database.fingerprint() == cold.database.fingerprint()
        stats = restarted.evaluation_stats
        assert stats.artifact_misses == 0 and stats.artifact_store_hits > 0
