"""Tests for NCD, BinHunt, the Figure-8 diffing tools and the metrics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import disassemble
from repro.difftools import (
    ALL_TOOLS,
    Asm2Vec,
    BinDiffMatcher,
    BinHunt,
    BinSlayer,
    CoP,
    IMFSim,
    InnerEye,
    MultiMH,
    VulSeeker,
    compressed_size,
    make_tool,
    matched_ratios,
    ncd,
    ncd_images,
    precision_at_1,
)
from repro.difftools.metrics import precision_at_k


class TestNCD:
    def test_identical_data_scores_zero(self):
        data = b"the same bytes" * 50
        assert ncd(data, data) < 0.1

    def test_unrelated_data_scores_high(self):
        import os
        import random

        rng = random.Random(1)
        a = bytes(rng.randrange(256) for _ in range(4096))
        b = bytes(rng.randrange(256) for _ in range(4096))
        assert ncd(a, b) > 0.9

    def test_bounds(self):
        assert 0.0 <= ncd(b"aaa" * 100, b"aab" * 100) <= 1.0

    def test_empty_inputs(self):
        assert ncd(b"", b"") == 0.0

    def test_all_compressors_available(self):
        data = b"x" * 1000
        for compressor in ("lzma", "zlib", "bz2"):
            assert compressed_size(data, compressor) < len(data)

    def test_unknown_compressor_rejected(self):
        with pytest.raises(ValueError):
            compressed_size(b"x", "zip9000")

    def test_image_ncd_orders_optimization_levels(self, sample_images_llvm):
        o0 = sample_images_llvm["O0"]
        assert ncd_images(o0, o0) < 0.1
        o1 = ncd_images(o0, sample_images_llvm["O1"])
        o3 = ncd_images(o0, sample_images_llvm["O3"])
        assert 0.0 < o1 <= 1.0 and 0.0 < o3 <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=0, max_size=300), st.binary(min_size=0, max_size=300))
    def test_ncd_always_within_bounds(self, a, b):
        assert 0.0 <= ncd(a, b, "zlib") <= 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=300))
    def test_ncd_symmetric_enough(self, data):
        assert abs(ncd(data, data[::-1], "zlib") - ncd(data[::-1], data, "zlib")) < 0.2


class TestBinHunt:
    def test_identical_images_score_near_zero(self, sample_images_llvm):
        binhunt = BinHunt()
        assert binhunt.difference(sample_images_llvm["O2"], sample_images_llvm["O2"]) < 0.05

    def test_difference_increases_with_optimization_distance(self, sample_images_llvm):
        binhunt = BinHunt()
        o0 = sample_images_llvm["O0"]
        o1 = binhunt.difference(o0, sample_images_llvm["O1"])
        o3 = binhunt.difference(o0, sample_images_llvm["O3"])
        assert 0.0 < o1 < 1.0
        assert o3 >= o1 - 0.05

    def test_score_in_unit_interval(self, sample_images_llvm, sample_images_gcc):
        binhunt = BinHunt()
        score = binhunt.difference(sample_images_llvm["O0"], sample_images_gcc["O3"])
        assert 0.0 <= score <= 1.0

    def test_result_counts_are_consistent(self, sample_images_llvm):
        binhunt = BinHunt()
        result = binhunt.compare(sample_images_llvm["O0"], sample_images_llvm["O2"])
        assert result.matched_blocks <= min(result.total_blocks)
        assert result.matched_functions <= min(result.total_functions)
        assert 0.0 <= result.call_graph_score <= 1.0

    def test_matched_ratios_extraction(self, sample_images_llvm):
        binhunt = BinHunt()
        ratios = matched_ratios(binhunt.compare(sample_images_llvm["O0"], sample_images_llvm["O3"]))
        assert 0.0 <= ratios.block_ratio <= 1.0
        assert "/" in ratios.as_tuple_text()

    def test_wrong_pair_comparison_is_more_different(self, sample_images_llvm, llvm):
        """Comparing unrelated programs should look at least as different as
        comparing two builds of the same program (the paper's Coreutils vs
        OpenSSL observation)."""
        other_source = """
        int acc_data[16];
        int mix(int x) { return (x * 31 + 7) % 1009; }
        int main() { int i; int s = 0; for (i = 0; i < 16; i++) { acc_data[i] = mix(i); s += acc_data[i]; } print_int(s); return s % 97; }
        """
        other = llvm.compile_level(other_source, "O2", name="other").image
        binhunt = BinHunt()
        same_program = binhunt.difference(sample_images_llvm["O0"], sample_images_llvm["O1"])
        wrong_pair = binhunt.difference(sample_images_llvm["O0"], other)
        assert wrong_pair >= same_program - 0.1


class TestTools:
    def test_factory_covers_all_tools(self):
        for name in ALL_TOOLS:
            assert make_tool(name).name

    def test_unknown_tool_rejected(self):
        with pytest.raises(ValueError):
            make_tool("ghidra")

    @pytest.mark.parametrize("tool_class", [BinDiffMatcher, BinSlayer, Asm2Vec, InnerEye, VulSeeker, CoP, MultiMH])
    def test_self_comparison_is_perfect(self, tool_class, sample_images_llvm):
        tool = tool_class()
        program = disassemble(sample_images_llvm["O2"])
        result = tool.compare_programs(program, program)
        assert precision_at_1(result) == 1.0

    @pytest.mark.parametrize("tool_class", [BinDiffMatcher, Asm2Vec, VulSeeker, CoP, MultiMH, BinSlayer])
    def test_scores_bounded(self, tool_class, sample_images_llvm):
        tool = tool_class()
        result = tool.compare(sample_images_llvm["O0"], sample_images_llvm["O2"])
        for candidates in result.rankings.values():
            for _, score in candidates:
                assert 0.0 <= score <= 1.0 + 1e-9

    def test_precision_degrades_from_o1_to_o3(self, sample_images_llvm):
        """At least the structural tools should find O3 harder than O1."""
        o0 = disassemble(sample_images_llvm["O0"])
        o1 = disassemble(sample_images_llvm["O1"])
        o3 = disassemble(sample_images_llvm["O3"])
        drops = 0
        for tool_class in (BinSlayer, CoP, MultiMH, InnerEye):
            tool = tool_class()
            p1 = precision_at_1(tool.compare_programs(o0, o1))
            p3 = precision_at_1(tool.compare_programs(o0, o3))
            if p3 <= p1:
                drops += 1
        assert drops >= 2

    def test_imfsim_matches_behaviourally_identical_functions(self, sample_images_llvm):
        tool = IMFSim(samples=4)
        result = tool.compare(sample_images_llvm["O1"], sample_images_llvm["O2"])
        assert result.top_match("fib") == "fib"

    def test_precision_at_k_is_not_below_precision_at_1(self, sample_images_llvm):
        tool = Asm2Vec()
        result = tool.compare(sample_images_llvm["O0"], sample_images_llvm["O3"])
        assert precision_at_k(result, 3) >= precision_at_1(result)
