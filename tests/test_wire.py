"""Protocol fuzz battery for the pickle-free client wire format.

Three layers of assurance:

1. **Round-trip identity** — hypothesis generates schema-conforming messages
   for *every* type in :data:`repro.distrib.wire.SCHEMAS` (the strategies are
   derived from the table, so a new message type is enrolled automatically)
   and asserts ``decode(encode(m)) == m``.
2. **Garbage corpus** — truncated, oversized, type-confused, and outright
   garbage frames each raise a *typed* :class:`WireError` at the codec layer,
   and when thrown at a live service socket are answered with a clean
   ``error`` frame — never a traceback, never a hangup (except the one
   documented unrecoverable case, an oversized announcement) — and the
   accept loop keeps serving.
3. **The no-unpickle proof** — ``pickle.loads`` and ``pickle.Unpickler`` are
   replaced with booby traps for the duration of a full client session
   (including hostile frames); if any client-originated byte reached pickle,
   the test would detonate.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.distrib.errors import ConnectionClosed, ServiceError
from repro.distrib.wire import (
    MAX_WIRE_FRAME_BYTES,
    SCHEMAS,
    WIRE_VERSION,
    FrameTooLarge,
    WireError,
    decode_payload,
    encode_payload,
    make_message,
    recv_wire,
    send_wire,
    validate_message,
)

from _helpers import loopback_available

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="sandbox forbids AF_INET loopback"
)

_HEADER = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Strategies derived from the schema table
# ---------------------------------------------------------------------------

_SAFE_TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=64
)
_JSON_SCALAR = st.one_of(
    st.none(), st.booleans(), st.integers(-2**31, 2**31), _SAFE_TEXT
)
_JSON_VALUE = st.recursive(
    _JSON_SCALAR,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_SAFE_TEXT, children, max_size=4),
    ),
    max_leaves=8,
)


def _field_strategy(types: tuple) -> st.SearchStrategy:
    options = []
    for accepted in types:
        if accepted is None:
            options.append(st.none())
        elif accepted is str:
            options.append(_SAFE_TEXT)
        elif accepted is bool:
            options.append(st.booleans())
        elif accepted is int:
            options.append(st.integers(-2**31, 2**31))
        elif accepted is float:
            options.append(
                st.floats(allow_nan=False, allow_infinity=False, width=32)
            )
        elif accepted is dict:
            options.append(st.dictionaries(_SAFE_TEXT, _JSON_VALUE, max_size=4))
        elif accepted is list:
            options.append(st.lists(_JSON_VALUE, max_size=4))
    return st.one_of(options)


def _message_strategy(kind: str) -> st.SearchStrategy:
    schema = SCHEMAS[kind]
    fields = {}
    for name, (types, required) in schema.items():
        strategy = _field_strategy(types)
        fields[name] = strategy if required else st.one_of(st.nothing(), strategy)

    def build(present: dict) -> dict:
        message = {"v": WIRE_VERSION, "type": kind}
        message.update(present)
        return message

    required_names = [n for n, (_t, req) in schema.items() if req]
    return st.fixed_dictionaries(
        {n: fields[n] for n in required_names},
        optional={n: fields[n] for n in schema if n not in required_names},
    ).map(build)


_ANY_MESSAGE = st.one_of([_message_strategy(kind) for kind in sorted(SCHEMAS)])


class TestRoundTrip:
    @given(message=_ANY_MESSAGE)
    @settings(max_examples=200, deadline=None)
    def test_every_schema_round_trips_identically(self, message):
        """decode(encode(m)) == m for schema-conforming m of every type."""
        # None-valued optional fields are droppable on encode only via
        # make_message; raw encode must preserve them exactly as sent.
        assert decode_payload(encode_payload(message)) == message

    @given(message=_ANY_MESSAGE)
    @settings(max_examples=50, deadline=None)
    def test_encoding_is_deterministic(self, message):
        assert encode_payload(message) == encode_payload(message)

    def test_make_message_drops_none_fields(self):
        message = make_message("error", code="x", message="y", job_id=None)
        assert "job_id" not in message
        assert decode_payload(encode_payload(message)) == message

    def test_msgpack_codec_is_gated_not_required(self):
        """Requesting msgpack either works (module present) or fails typed."""
        message = make_message("ping")
        try:
            import msgpack  # noqa: F401
        except ImportError:
            with pytest.raises(WireError) as excinfo:
                encode_payload(message, codec="msgpack")
            assert excinfo.value.code == "bad-codec"
        else:
            assert decode_payload(encode_payload(message, codec="msgpack")) == message


# ---------------------------------------------------------------------------
# Codec-level garbage corpus
# ---------------------------------------------------------------------------

def _payload(obj) -> bytes:
    return b"J" + json.dumps(obj).encode()


#: (payload bytes, expected error code).  Every entry must raise WireError —
#: never any other exception, never succeed.
GARBAGE_CORPUS = [
    (b"", "bad-codec"),                                  # empty frame
    (b"\x80\x04\x95pickle", "bad-codec"),                # a pickled worker frame
    (b"Q" + b"{}", "bad-codec"),                         # unknown codec tag
    (b"J" + b"\xff\xfe garbage", "bad-json"),            # not UTF-8
    (b"J" + b"{not json", "bad-json"),                   # not JSON
    (b"J" + b"[1,2,3]", "bad-schema"),                   # JSON but not an object
    (b"J" + b"null", "bad-schema"),
    (_payload({"type": "ping"}), "bad-version"),         # missing version
    (_payload({"v": "1", "type": "ping"}), "bad-version"),   # string version
    (_payload({"v": True, "type": "ping"}), "bad-version"),  # bool-as-int version
    (_payload({"v": 99, "type": "ping"}), "bad-version"),    # wrong version
    (_payload({"v": 1}), "bad-schema"),                  # missing type
    (_payload({"v": 1, "type": "evil"}), "bad-type"),    # unknown type
    (_payload({"v": 1, "type": "ping", "extra": 1}), "bad-schema"),  # unknown field
    (_payload({"v": 1, "type": "submit"}), "bad-schema"),  # missing required
    (_payload({"v": 1, "type": "submit", "tenant": 7, "program": "p",
               "source": "s", "family": "gcc", "budget": {}}), "bad-schema"),
    (_payload({"v": 1, "type": "submit", "tenant": "t", "program": "p",
               "source": "s", "family": "gcc", "budget": []}), "bad-schema"),
    (_payload({"v": 1, "type": "stream", "job_id": "j",
               "from_seq": True}), "bad-schema"),        # bool where int expected
    (_payload({"v": 1, "type": "submitted", "job_id": "j",
               "position": 1.5}), "bad-schema"),         # float where int expected
]


class TestGarbageCorpus:
    @pytest.mark.parametrize(
        "payload,code", GARBAGE_CORPUS,
        ids=[f"{i:02d}-{code}" for i, (_p, code) in enumerate(GARBAGE_CORPUS)],
    )
    def test_codec_rejects_with_typed_error(self, payload, code):
        with pytest.raises(WireError) as excinfo:
            decode_payload(payload)
        assert excinfo.value.code == code

    @given(blob=st.binary(max_size=256))
    @settings(max_examples=200, deadline=None)
    def test_random_bytes_never_crash_the_decoder(self, blob):
        """Arbitrary bytes either decode to a valid message or raise typed."""
        try:
            message = decode_payload(blob)
        except WireError:
            return
        validate_message(message)  # anything accepted must be schema-valid

    def test_bool_never_satisfies_int(self):
        with pytest.raises(WireError):
            validate_message({"v": WIRE_VERSION, "type": "event", "job_id": "j",
                              "seq": True, "kind": "k", "data": {}})


# ---------------------------------------------------------------------------
# Live-service corpus: error frames, surviving accept loop, no unpickle
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def service():
    from repro.distrib.service import ServiceConfig, TuningService

    svc = TuningService(ServiceConfig(max_frame_bytes=64 * 1024))
    yield svc
    svc.close()


def _connect(service) -> socket.socket:
    sock = socket.create_connection((service.host, service.port), timeout=10)
    welcome = recv_wire(sock)
    assert welcome["type"] == "welcome"
    return sock


def _send_raw(sock: socket.socket, payload: bytes) -> None:
    sock.sendall(_HEADER.pack(len(payload)) + payload)


class TestLiveService:
    def test_garbage_frames_get_error_frames_and_the_loop_survives(self, service):
        """Every corpus entry is answered with an ``error`` frame on one
        persistent connection — the handler never dies mid-session."""
        sock = _connect(service)
        try:
            for payload, code in GARBAGE_CORPUS:
                _send_raw(sock, payload)
                reply = recv_wire(sock)
                assert reply["type"] == "error", (payload, reply)
                assert reply["code"] == code
            # The same connection still serves well-formed requests.
            send_wire(sock, make_message("ping"))
            assert recv_wire(sock)["type"] == "pong"
        finally:
            sock.close()

    def test_oversized_frame_is_refused_then_hung_up(self, service):
        """An oversized announcement is the one unrecoverable case: a typed
        error frame, then the service hangs up (the payload was never read,
        so the stream cannot be resynchronized)."""
        sock = _connect(service)
        try:
            sock.sendall(_HEADER.pack(service.config.max_frame_bytes + 1))
            reply = recv_wire(sock)
            assert reply["type"] == "error"
            assert reply["code"] == "frame-too-large"
            with pytest.raises(ConnectionClosed):
                recv_wire(sock)
        finally:
            sock.close()

    def test_truncated_frame_then_disconnect_leaves_service_alive(self, service):
        """A client that announces N bytes, sends fewer, and vanishes must
        not wedge or kill anything."""
        sock = _connect(service)
        sock.sendall(_HEADER.pack(1000) + b"J{only a fragment")
        sock.close()
        fresh = _connect(service)
        try:
            send_wire(fresh, make_message("ping"))
            assert recv_wire(fresh)["type"] == "pong"
        finally:
            fresh.close()

    def test_server_bound_types_are_refused_as_requests(self, service):
        """Schema-valid but service->client types bounce with bad-type."""
        sock = _connect(service)
        try:
            send_wire(sock, make_message("pong", uptime_seconds=1.0))
            reply = recv_wire(sock)
            assert reply["type"] == "error"
            assert reply["code"] == "bad-type"
        finally:
            sock.close()

    @given(blob=st.binary(min_size=0, max_size=512))
    @settings(max_examples=25, deadline=None)
    def test_random_payloads_against_live_socket(self, service, blob):
        """Random bytes as a frame payload: always an answer or a clean
        close, never silence past the timeout and never a crash."""
        sock = _connect(service)
        try:
            _send_raw(sock, blob)
            try:
                reply = recv_wire(sock)
            except ConnectionClosed:
                pass  # refused hard — acceptable, as long as the next works
            else:
                assert reply["type"] in ("error", "pong")
        finally:
            sock.close()

    def test_no_client_bytes_ever_reach_pickle(self, service, monkeypatch):
        """THE acceptance-criterion test: a full client session — hostile
        frames included — runs with pickle booby-trapped.  Any path from a
        client socket into ``pickle.loads``/``Unpickler`` detonates."""

        def bomb(*args, **kwargs):
            raise AssertionError(
                "client-originated bytes reached pickle — wire format breached"
            )

        monkeypatch.setattr(pickle, "loads", bomb)
        monkeypatch.setattr(pickle, "load", bomb)
        monkeypatch.setattr(pickle, "Unpickler", bomb)

        from repro.distrib.client import ServiceClient

        with ServiceClient(service.address_string()) as client:
            client.ping()
            with pytest.raises(ServiceError) as excinfo:
                client.submit("mallory", "x", "int main(){return 0;}", "no-such",
                              generations=1)
            assert excinfo.value.code == "unknown-family"
            job_id = client.submit(
                "alice", "tiny",
                "int main(void) { int a = 3; return a * a; }", "gcc",
                generations=1, population=2,
            )
            events = list(client.stream(job_id))
            assert events[-1]["kind"] == "done"
        # Hostile raw frames under the same booby trap (0x80 is the pickle
        # protocol-4 opcode — exactly what a worker frame starts with).
        sock = _connect(service)
        try:
            for payload in (b"\x80\x04\x95\x00\x00", b"", b"Jnull"):
                _send_raw(sock, payload)
                assert recv_wire(sock)["type"] == "error"
        finally:
            sock.close()
