"""Tests for the mini-C lexer, parser and semantic analyzer."""

import pytest
from hypothesis import given, strategies as st

from repro.minic import (
    LexerError,
    ParseError,
    SemanticError,
    TokenKind,
    analyze,
    parse_program,
    tokenize,
)
from repro.minic import ast_nodes as ast


class TestLexer:
    def test_tokenizes_keywords_and_identifiers(self):
        tokens = tokenize("int main() { return 0; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] is TokenKind.KEYWORD
        assert kinds[1] is TokenKind.IDENT
        assert kinds[-1] is TokenKind.EOF

    def test_integer_literals_decimal_and_hex(self):
        tokens = tokenize("123 0xff 0x10")
        assert [t.value for t in tokens[:3]] == [123, 255, 16]

    def test_integer_suffixes_are_accepted(self):
        tokens = tokenize("10UL 3u 7LL")
        assert [t.value for t in tokens[:3]] == [10, 3, 7]

    def test_char_literals(self):
        tokens = tokenize("'a' '\\n' '\\0'")
        assert [t.value for t in tokens[:3]] == [ord("a"), ord("\n"), 0]

    def test_string_literal_with_escapes(self):
        tokens = tokenize('"hi\\tthere"')
        assert tokens[0].value == "hi\tthere"

    def test_comments_and_preprocessor_lines_are_skipped(self):
        source = "#include <stdio.h>\n// line comment\n/* block */ int x;"
        tokens = tokenize(source)
        assert tokens[0].is_keyword("int")

    def test_multichar_punctuators_maximal_munch(self):
        tokens = tokenize("a <<= b >> c <= d")
        texts = [t.text for t in tokens if t.kind is TokenKind.PUNCT]
        assert texts == ["<<=", ">>", "<="]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexerError):
            tokenize('"oops')

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("/* never closed")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("int $x;")

    def test_line_numbers_are_tracked(self):
        tokens = tokenize("int a;\nint b;")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2

    @given(st.integers(min_value=0, max_value=2**31))
    def test_any_decimal_literal_roundtrips(self, value):
        tokens = tokenize(str(value))
        assert tokens[0].value == value

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12))
    def test_identifier_like_text_lexes_to_single_token(self, name):
        tokens = tokenize(name)
        assert len(tokens) == 2  # token + EOF
        assert tokens[0].kind in (TokenKind.IDENT, TokenKind.KEYWORD)


class TestParser:
    def test_parses_sample_program(self, sample_program):
        assert "main" in sample_program.function_names()
        assert len(sample_program.globals) >= 3

    def test_function_parameters(self):
        program = parse_program("int f(int a, int b[], int c) { return a + c; } int main(){return f(1, 0, 2);}")
        params = program.function("f").params
        assert [p.name for p in params] == ["a", "b", "c"]
        assert params[1].type.is_array

    def test_operator_precedence(self):
        program = parse_program("int main() { return 1 + 2 * 3; }")
        ret = program.function("main").body.statements[0]
        assert isinstance(ret.value, ast.BinaryOp)
        assert ret.value.op == "+"
        assert isinstance(ret.value.right, ast.BinaryOp)
        assert ret.value.right.op == "*"

    def test_ternary_and_logical_operators(self):
        program = parse_program("int main() { int x = 1; return x > 0 && x < 5 ? x : -x; }")
        assert program.function("main") is not None

    def test_switch_with_default(self):
        program = parse_program(
            "int main() { switch (3) { case 1: return 1; case 3: return 3; default: return 0; } }"
        )
        switch = program.function("main").body.statements[0]
        assert isinstance(switch, ast.Switch)
        assert len(switch.cases) == 3
        assert switch.cases[-1].value is None

    def test_case_labels_support_constant_expressions(self):
        program = parse_program("int main() { switch (4) { case 2+2: return 1; default: return 0; } }")
        switch = program.function("main").body.statements[0]
        assert switch.cases[0].value == 4

    def test_for_while_do_loops(self):
        source = """
        int main() {
          int s = 0; int i;
          for (i = 0; i < 3; i++) s += i;
          while (s < 10) s += 2;
          do { s -= 1; } while (s > 5);
          return s;
        }
        """
        program = parse_program(source)
        kinds = [type(stmt).__name__ for stmt in program.function("main").body.statements]
        assert "For" in kinds and "While" in kinds and "DoWhile" in kinds

    def test_compound_assignment_and_increment(self):
        program = parse_program("int main() { int x = 1; x += 2; x++; ++x; return x; }")
        assert program is not None

    def test_postincrement_preserves_value_semantics(self):
        program = parse_program("int main() { int x = 5; int y = x++; return y; }")
        decl = program.function("main").body.statements[1]
        assert isinstance(decl.init, ast.BinaryOp)

    def test_global_array_with_initializer(self):
        program = parse_program("int t[4] = {1, 2, 3, 4}; int main() { return t[0]; }")
        assert program.globals[0].init_list is not None
        assert len(program.globals[0].init_list) == 4

    def test_sizeof_becomes_word_size(self):
        program = parse_program("int main() { return sizeof(int); }")
        ret = program.function("main").body.statements[0]
        assert isinstance(ret.value, ast.IntLiteral)
        assert ret.value.value == 8

    def test_cast_is_ignored(self):
        program = parse_program("int main() { return (int) 7; }")
        ret = program.function("main").body.statements[0]
        assert isinstance(ret.value, ast.IntLiteral)

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_program("int main() { return 0 }")

    def test_bad_assignment_target_raises(self):
        with pytest.raises(ParseError):
            parse_program("int main() { 1 = 2; return 0; }")

    def test_unterminated_block_raises(self):
        with pytest.raises(ParseError):
            parse_program("int main() { return 0;")


class TestSemantic:
    def test_sample_program_analyzes(self, sample_program):
        info = analyze(sample_program)
        assert "main" in info.functions
        assert "print_int" in info.used_builtins

    def test_undeclared_variable_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int main() { return y; }"))

    def test_duplicate_local_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int main() { int a; int a; return 0; }"))

    def test_duplicate_global_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int g; int g; int main() { return 0; }"))

    def test_unknown_function_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int main() { return missing(1); }"))

    def test_wrong_arity_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int f(int a) { return a; } int main() { return f(1, 2); }"))

    def test_builtin_arity_checked(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int main() { return min(1); }"))

    def test_indexing_scalar_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int main() { int x; return x[0]; }"))

    def test_break_outside_loop_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int main() { break; return 0; }"))

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int main() { continue; return 0; }"))

    def test_missing_main_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program("int helper() { return 1; }"))

    def test_duplicate_case_rejected(self):
        with pytest.raises(SemanticError):
            analyze(parse_program(
                "int main() { switch (1) { case 1: return 1; case 1: return 2; } return 0; }"
            ))

    def test_shadowing_in_nested_scope_allowed(self):
        info = analyze(parse_program("int main() { int x = 1; { int x = 2; print_int(x); } return x; }"))
        assert info is not None
