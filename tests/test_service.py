"""Acceptance battery for the multi-tenant tuning service.

The contract under test, end to end over real sockets:

* **fingerprint parity** — a job run through the service (concurrently with
  other tenants, over shared caches) produces a tuning database fingerprint
  bit-for-bit identical to a solo :class:`BinTuner` constructed from the
  same :class:`JobBudget` mapping;
* **dedupe economics** — the second tenant submitting an identical
  (source, family) pays ~nothing: zero artifact misses, ~zero compile
  seconds, visible in per-tenant accounting;
* **typed admission** — absurd budgets and oversized sources are refused
  with stable error codes before any work is queued;
* **fault tolerance** — a client vanishing mid-stream, a service restart
  mid-job, and a worker process crashing mid-generation all leave the queue
  consistent and the surviving/restored jobs at full parity.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.campaign.campaign import default_compiler_provider
from repro.distrib.client import ServiceClient
from repro.distrib.errors import ServiceError
from repro.distrib.jobs import (
    AdmissionError,
    AdmissionLimits,
    JobBudget,
    validate_submission,
)
from repro.distrib.service import ServiceConfig, TuningService
from repro.tuner import BinTuner, BinTunerConfig, BuildSpec

from _helpers import loopback_available

pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="sandbox forbids AF_INET loopback"
)

SRC_DIR = Path(__file__).resolve().parent.parent / "src"

SOURCE = """
int table[16];
int fill(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) { table[i] = i * 3 - 1; acc += table[i]; }
  return acc;
}
int main(void) { return fill(16) & 0xff; }
"""

OTHER_SOURCE = """
int mix(int a, int b) { return (a ^ b) + (a & b) * 2; }
int main(void) {
  int acc = 0;
  for (int i = 0; i < 24; i++) acc = mix(acc, i);
  return acc & 0xff;
}
"""

BUDGET = JobBudget(generations=3, population=4)


def solo_fingerprint(source: str, program: str,
                     budget: JobBudget = BUDGET, family: str = "gcc") -> str:
    """The reference run: a BinTuner constructed from the *same* budget
    mapping the service uses (JobBudget.tuner_config_kwargs is the shared
    source of truth — parity is constructive, not coincidental)."""
    tuner = BinTuner(
        default_compiler_provider(family),
        BuildSpec(name=program, source=source),
        BinTunerConfig(**budget.tuner_config_kwargs(), pipeline="staged"),
    )
    return tuner.run().database.fingerprint()


def submit_budget(client: ServiceClient, tenant: str, program: str,
                  source: str, budget: JobBudget = BUDGET) -> str:
    return client.submit(tenant, program, source, "gcc",
                         generations=budget.generations,
                         population=budget.population,
                         stall_window=budget.stall_window)


# ---------------------------------------------------------------------------
# Admission control (the typed-rejection satellite)
# ---------------------------------------------------------------------------

class TestAdmission:
    LIMITS = AdmissionLimits(max_source_bytes=1024)

    def _submit(self, **overrides):
        payload = {"tenant": "alice", "program": "p", "source": "int main(){}",
                   "family": "gcc", "budget": {"generations": 2}}
        payload.update(overrides)
        return validate_submission(payload, self.LIMITS)

    @pytest.mark.parametrize("budget,code", [
        ({"generations": 0}, "bad-budget"),
        ({"generations": -3}, "bad-budget"),
        ({"generations": True}, "bad-budget"),      # JSON true is not 1
        ({"generations": 2.5}, "bad-budget"),
        ({"generations": 10_000}, "bad-budget"),    # past the cap
        ({"generations": 2, "population": 1}, "bad-budget"),
        ({"generations": 2, "population": 100_000}, "bad-budget"),
        ({"generations": 2, "stall_window": 0}, "bad-budget"),
        ({"generations": 2, "warp_factor": 9}, "bad-budget"),  # unknown knob
        ({}, "bad-budget"),                         # no generations at all
    ])
    def test_absurd_budgets_rejected_typed(self, budget, code):
        with pytest.raises(AdmissionError) as excinfo:
            self._submit(budget=budget)
        assert excinfo.value.code == code

    def test_oversized_source_rejected_at_the_configured_cap(self):
        big = "int main(){}" + ("/* pad */" * 200)
        assert len(big.encode()) > self.LIMITS.max_source_bytes
        with pytest.raises(AdmissionError) as excinfo:
            self._submit(source=big)
        assert excinfo.value.code == "source-too-large"
        # One byte under the cap is admitted.
        ok = "int main(){}".ljust(self.LIMITS.max_source_bytes - 1, " ")
        assert self._submit(source=ok).program == "p"

    @pytest.mark.parametrize("field,value,code", [
        ("source", "", "empty-source"),
        ("source", "   \n  ", "empty-source"),
        ("family", "icc", "unknown-family"),
        ("tenant", "", "bad-name"),
        ("tenant", "evil tenant!", "bad-name"),
        ("tenant", "x" * 65, "bad-name"),
        ("program", "../escape", "bad-name"),
        ("priority", 99, "bad-budget"),
        ("priority", -1, "bad-budget"),
    ])
    def test_malformed_fields_rejected_typed(self, field, value, code):
        with pytest.raises(AdmissionError) as excinfo:
            self._submit(**{field: value})
        assert excinfo.value.code == code

    def test_rejections_reach_the_client_typed_and_accounted(self):
        """Over the wire: a doomed submission raises a ServiceError with the
        admission code, nothing is enqueued, and the tenant's rejection
        counter ticks."""
        with TuningService(ServiceConfig()) as svc:
            with ServiceClient(svc.address_string()) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.submit("alice", "p", SOURCE, "gcc", generations=0)
                assert excinfo.value.code == "bad-budget"
                assert client.jobs() == []
                assert client.accounting()["alice"]["jobs_rejected"] == 1

    def test_queue_full_is_a_typed_rejection(self):
        config = ServiceConfig(
            max_active_jobs=1,
            limits=AdmissionLimits(max_queued_per_tenant=1),
        )
        with TuningService(config) as svc:
            with ServiceClient(svc.address_string()) as client:
                submit_budget(client, "alice", "one", SOURCE)   # -> active
                submit_budget(client, "alice", "two", SOURCE)   # -> queued
                with pytest.raises(ServiceError) as excinfo:
                    submit_budget(client, "alice", "three", SOURCE)
                assert excinfo.value.code == "queue-full"


# ---------------------------------------------------------------------------
# Multi-tenant parity and dedupe (THE acceptance criterion)
# ---------------------------------------------------------------------------

class TestMultiTenantParity:
    def test_two_tenants_same_source_parity_and_dedupe(self):
        """Two tenants submit the identical (source, family) concurrently.
        Both finish with the solo fingerprint, and the lighter tenant's
        generations are pure cache hits: zero artifact misses."""
        solo = solo_fingerprint(SOURCE, "work")
        with TuningService(ServiceConfig(max_active_jobs=2)) as svc:
            with ServiceClient(svc.address_string()) as alice, \
                 ServiceClient(svc.address_string()) as bob:
                job_a = submit_budget(alice, "alice", "work", SOURCE)
                job_b = submit_budget(bob, "bob", "work", SOURCE)
                row_a = alice.wait(job_a)
                row_b = bob.wait(job_b)
                assert row_a["state"] == "done" and row_b["state"] == "done"
                assert row_a["result"]["fingerprint"] == solo
                assert row_b["result"]["fingerprint"] == solo
                accounts = alice.accounting()
        # The fair-share turnstile guarantees the dedupe shape: whichever
        # tenant ran a generation second found every stage already cached.
        light = min(accounts, key=lambda t: accounts[t]["compile_seconds"])
        heavy = max(accounts, key=lambda t: accounts[t]["compile_seconds"])
        assert light != heavy
        assert accounts[light]["artifact_misses"] == 0
        assert accounts[light]["compile_seconds"] < 0.01
        assert accounts[heavy]["artifact_misses"] > 0
        assert accounts[light]["candidates_evaluated"] > 0

    def test_distinct_sources_do_not_interfere(self):
        """Concurrent tenants tuning different programs each match their own
        solo fingerprint — shared caches change timing, never results."""
        solo_one = solo_fingerprint(SOURCE, "one")
        solo_two = solo_fingerprint(OTHER_SOURCE, "two")
        assert solo_one != solo_two
        with TuningService(ServiceConfig(max_active_jobs=2)) as svc:
            with ServiceClient(svc.address_string()) as client:
                job_one = submit_budget(client, "alice", "one", SOURCE)
                job_two = submit_budget(client, "bob", "two", OTHER_SOURCE)
                assert client.wait(job_one)["result"]["fingerprint"] == solo_one
                assert client.wait(job_two)["result"]["fingerprint"] == solo_two

    def test_stream_carries_generation_summaries_in_order(self):
        with TuningService(ServiceConfig()) as svc:
            with ServiceClient(svc.address_string()) as client:
                job_id = submit_budget(client, "alice", "work", SOURCE)
                events = list(client.stream(job_id))
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "queued" and kinds[1] == "started"
        assert kinds[-1] == "done"
        generations = [e for e in events if e["kind"] == "generation"]
        assert len(generations) >= 1
        assert [e["seq"] for e in events] == list(
            range(events[0]["seq"], events[0]["seq"] + len(events)))
        done = events[-1]["data"]
        assert set(done) >= {"best_flags", "best_fitness", "fingerprint"}

    def test_stream_resumes_from_any_offset(self):
        """Seq-numbered replay: a second stream from a mid-run offset sees
        exactly the suffix, terminal event included."""
        with TuningService(ServiceConfig()) as svc:
            with ServiceClient(svc.address_string()) as client:
                job_id = submit_budget(client, "alice", "work", SOURCE)
                full = list(client.stream(job_id))
                middle = full[len(full) // 2]["seq"]
                suffix = list(client.stream(job_id, from_seq=middle))
        assert [e["seq"] for e in suffix] == [
            e["seq"] for e in full if e["seq"] > middle]

    def test_cancel_queued_job_is_immediate_and_accounted(self):
        config = ServiceConfig(max_active_jobs=1)
        with TuningService(config) as svc:
            with ServiceClient(svc.address_string()) as client:
                running = submit_budget(client, "alice", "run", SOURCE)
                queued = submit_budget(client, "alice", "waiting", SOURCE)
                assert client.cancel(queued) == "cancelled"
                assert client.status(queued)["state"] == "cancelled"
                assert client.wait(running)["state"] == "done"
                assert client.accounting()["alice"]["jobs_cancelled"] == 1

    def test_token_auth_rejects_and_admits(self):
        with TuningService(ServiceConfig(token="sesame")) as svc:
            with ServiceClient(svc.address_string()) as anon:
                anon.ping()  # health stays open
                with pytest.raises(ServiceError) as excinfo:
                    anon.jobs()
                assert excinfo.value.code == "unauthorized"
            with ServiceClient(svc.address_string(), token="sesame") as client:
                assert client.jobs() == []


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------

class TestFaultInjection:
    def test_client_disconnect_mid_stream_leaves_job_and_queue_intact(self):
        """A streaming client hard-closing its socket must not disturb the
        job, the other tenant, or the service."""
        solo = solo_fingerprint(SOURCE, "work")
        with TuningService(ServiceConfig(max_active_jobs=2)) as svc:
            with ServiceClient(svc.address_string()) as client:
                job_id = submit_budget(client, "alice", "work", SOURCE)
                other = submit_budget(client, "bob", "work", SOURCE)
                # A raw streaming connection, dropped after the first frame.
                sock = socket.create_connection((svc.host, svc.port), timeout=10)
                from repro.distrib.wire import make_message, recv_wire, send_wire
                assert recv_wire(sock)["type"] == "welcome"
                send_wire(sock, make_message("stream", job_id=job_id))
                recv_wire(sock)  # one event, then vanish without a goodbye
                sock.close()
                # Both jobs still run to completion at full parity.
                assert client.wait(job_id)["result"]["fingerprint"] == solo
                assert client.wait(other)["result"]["fingerprint"] == solo
                assert client.ping() > 0

    def test_service_restart_resumes_job_to_identical_fingerprint(self, tmp_path):
        """Kill the service mid-job; a new service over the same state_dir
        re-queues the job and resumes from the per-generation checkpoint,
        finishing with the uninterrupted run's fingerprint."""
        budget = JobBudget(generations=6, population=4)
        solo = solo_fingerprint(SOURCE, "work", budget)
        state_dir = tmp_path / "state"

        first = TuningService(ServiceConfig(state_dir=state_dir))
        try:
            client = ServiceClient(first.address_string())
            job_id = submit_budget(client, "alice", "work", SOURCE, budget)
            # Let at least one generation checkpoint, then pull the plug.
            for event in client.stream(job_id):
                if event["kind"] == "generation":
                    break
            client.close()
        finally:
            first.close()
        interrupted = first.job(job_id)
        assert not interrupted.terminal, "service drained too late to test resume"

        second = TuningService(ServiceConfig(state_dir=state_dir))
        try:
            with ServiceClient(second.address_string()) as client:
                row = client.wait(job_id, timeout=120)
                assert row["state"] == "done"
                assert row["result"]["fingerprint"] == solo
        finally:
            second.close()

    @pytest.mark.slow
    def test_worker_crash_mid_job_recovers_with_parity(self, tmp_path):
        """Distributed dispatch with a worker that hard-crashes
        (``--max-batches``, an ``os._exit`` mid-session): the mapper
        re-dispatches the lost batch and both tenants' jobs finish with solo
        fingerprints."""
        solo = solo_fingerprint(SOURCE, "work")
        config = ServiceConfig(dispatch="distributed", max_active_jobs=2,
                               state_dir=tmp_path / "state")
        with TuningService(config) as svc:
            env = dict(os.environ)
            env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
            workers = [
                subprocess.Popen(
                    [sys.executable, "-m", "repro.distrib.worker",
                     "--connect", svc.worker_address(), "--quiet", *extra],
                    env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                )
                for extra in ((), ("--max-batches", "2"))
            ]
            try:
                svc.wait_for_workers(2, timeout=60)
                with ServiceClient(svc.address_string()) as client:
                    job_a = submit_budget(client, "alice", "work", SOURCE)
                    job_b = submit_budget(client, "bob", "work", SOURCE)
                    row_a = client.wait(job_a, timeout=300)
                    row_b = client.wait(job_b, timeout=300)
                assert row_a["state"] == "done" and row_b["state"] == "done"
                assert row_a["result"]["fingerprint"] == solo
                assert row_b["result"]["fingerprint"] == solo
            finally:
                # The surviving worker only exits once the coordinator does;
                # final reaping happens after the service closes, below.
                pass
        from repro.distrib.worker import CRASH_EXIT_STATUS

        codes = []
        for process in workers:
            try:
                codes.append(process.wait(timeout=10))
            except subprocess.TimeoutExpired:
                process.kill()
                codes.append(process.wait(timeout=10))
        # The injected crash really happened.
        assert CRASH_EXIT_STATUS in codes


# ---------------------------------------------------------------------------
# Observability plane
# ---------------------------------------------------------------------------

class TestObservability:
    def test_status_and_metrics_show_per_tenant_accounting(self):
        import json as json_module
        import urllib.request

        with TuningService(ServiceConfig(obs_port=0)) as svc:
            with ServiceClient(svc.address_string()) as client:
                job_id = submit_budget(client, "alice", "work", SOURCE)
                client.wait(job_id)
            url = svc.obs_server.url()
            status = json_module.loads(
                urllib.request.urlopen(f"{url}/status", timeout=10).read())
            assert "service" in status
            section = status["service"]
            assert section["jobs"][0]["state"] == "done"
            assert section["tenants"]["alice"]["candidates_evaluated"] > 0
            metrics = urllib.request.urlopen(
                f"{url}/metrics", timeout=10).read().decode()
            assert "service_tenant_alice_candidates" in metrics.replace(".", "_") \
                or "service.tenant.alice.candidates" in metrics

    def test_tenant_tagged_spans_reach_telemetry(self, tmp_path):
        """With a telemetry_dir, every job generation lands as a
        tenant-tagged ``service.generation`` span, and the report's
        per-tenant table aggregates them."""
        from repro.telemetry.report import load_events, tenant_breakdown

        run_dir = tmp_path / "telemetry"
        with TuningService(ServiceConfig(telemetry_dir=run_dir)) as svc:
            with ServiceClient(svc.address_string()) as client:
                client.wait(submit_budget(client, "alice", "work", SOURCE))
                client.wait(submit_budget(client, "bob", "work", SOURCE))
        events, skipped = load_events(run_dir)
        assert skipped == 0
        rows = tenant_breakdown(events)
        assert {row["tenant"] for row in rows} == {"alice", "bob"}
        for row in rows:
            assert row["jobs"] == 1
            assert row["generations"] == BUDGET.generations
