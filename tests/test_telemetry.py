"""Tests for the structured telemetry plane.

The load-bearing guarantees:

* the JSONL schema round-trips: spans carry monotonic start + duration and
  hierarchical parent ids, the meta line anchors them to a wall-clock
  epoch, and the close-time metrics snapshot carries the counter registry;
* the sink is thread-safe and **bounded**: concurrent writers never corrupt
  a line, and past ``max_events`` records are dropped (and counted), never
  written;
* the chrome-trace export is valid trace-event JSON (``ph``/``ts``/``dur``/
  ``pid``/``tid`` on every event);
* the hard invariant: a campaign runs bit-for-bit identically with
  telemetry on or off — serial and distributed — because telemetry
  observes and never participates.
"""

from __future__ import annotations

import json
import threading

import pytest
from _helpers import loopback_available

from repro import telemetry
from repro.telemetry import (
    DEFAULT_MAX_EVENTS,
    JsonlSink,
    NULL_SINK,
    get_sink,
    set_sink,
)
from repro.telemetry.report import (
    chrome_trace,
    load_events,
    main as report_cli,
    merged_counters,
    span_breakdown,
    spans,
    tier_ratio_rows,
    worker_rows,
)


@pytest.fixture(autouse=True)
def _null_sink_between_tests():
    """Every test starts and ends on the null sink (the process default)."""
    set_sink(None)
    yield
    set_sink(None)


# ---------------------------------------------------------------------------
# the sink
# ---------------------------------------------------------------------------

class TestSink:
    def test_null_sink_is_the_default_and_restores(self, tmp_path):
        assert get_sink() is NULL_SINK
        assert not get_sink().enabled
        with get_sink().span("anything", attr=1) as span:
            span.set(more=2)  # all no-ops
        sink = JsonlSink(tmp_path)
        previous = set_sink(sink)
        assert previous is NULL_SINK
        assert get_sink() is sink
        set_sink(previous)
        assert get_sink() is NULL_SINK
        sink.close()

    def test_jsonl_schema_roundtrip(self, tmp_path):
        with JsonlSink(tmp_path, label="t", flush_every=1) as sink:
            with sink.span("outer", program="tiny") as outer:
                with sink.span("inner"):
                    pass
                outer.set(tier="store")
            sink.event("fleet.worker", worker_id=3, slots=2)
            sink.incr("hits", 4)
            sink.incr("hits")
            sink.gauge("depth", 7.5)
        events, skipped = load_events(tmp_path)
        assert skipped == 0
        meta = [e for e in events if e["type"] == "meta"]
        assert len(meta) == 1
        assert meta[0]["version"] == telemetry.SCHEMA_VERSION
        assert meta[0]["pid"] > 0 and meta[0]["wall_epoch"] > 0
        recorded = {e["name"]: e for e in spans(events)}
        assert set(recorded) == {"outer", "inner"}
        outer, inner = recorded["outer"], recorded["inner"]
        for record in (outer, inner):
            assert record["dur"] >= 0 and record["ts"] >= 0
            assert isinstance(record["id"], int) and isinstance(record["tid"], int)
        # hierarchy: inner's parent is outer; outer has no parent.
        assert inner["parent"] == outer["id"]
        assert "parent" not in outer
        # attrs set mid-span land next to the open-time attrs.
        assert outer["attrs"] == {"program": "tiny", "tier": "store"}
        point = [e for e in events if e["type"] == "event"]
        assert point[0]["name"] == "fleet.worker"
        assert point[0]["attrs"] == {"worker_id": 3, "slots": 2}
        metrics = [e for e in events if e["type"] == "metrics"]
        assert len(metrics) == 1
        assert metrics[0]["counters"] == {"hits": 5}
        assert metrics[0]["gauges"] == {"depth": 7.5}
        assert metrics[0]["dropped"] == 0

    def test_exception_marks_the_span_and_propagates(self, tmp_path):
        with JsonlSink(tmp_path, flush_every=1) as sink:
            with pytest.raises(KeyError):
                with sink.span("doomed"):
                    raise KeyError("boom")
        events, _ = load_events(tmp_path)
        (doomed,) = spans(events)
        assert doomed["attrs"]["error"] == "KeyError"

    def test_concurrent_writers_never_corrupt_lines(self, tmp_path):
        threads, per_thread = 8, 100
        sink = JsonlSink(tmp_path, flush_every=7)

        def hammer(tag: int) -> None:
            for index in range(per_thread):
                with sink.span("work", tag=tag):
                    sink.incr("ops")
                sink.event("tick", tag=tag, index=index)

        workers = [
            threading.Thread(target=hammer, args=(tag,)) for tag in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        sink.close()
        events, skipped = load_events(tmp_path)
        assert skipped == 0  # every line parsed: no interleaved partial writes
        assert len(spans(events)) == threads * per_thread
        assert len([e for e in events if e["type"] == "event"]) == threads * per_thread
        assert merged_counters(events) == {"ops": threads * per_thread}
        # span ids are unique across threads
        ids = [record["id"] for record in spans(events)]
        assert len(set(ids)) == len(ids)

    def test_event_log_is_bounded(self, tmp_path):
        sink = JsonlSink(tmp_path, max_events=5, flush_every=1)
        for index in range(20):
            sink.event("tick", index=index)
        sink.close()
        events, _ = load_events(tmp_path)
        written = [e for e in events if e["type"] == "event"]
        assert len(written) == 5
        (metrics,) = [e for e in events if e["type"] == "metrics"]
        # the bound never silences itself: drops are counted in the snapshot
        assert metrics["dropped"] == 15
        assert metrics["events"] == 5
        assert sink.dropped == 15

    def test_default_bound_is_large(self):
        assert DEFAULT_MAX_EVENTS >= 100_000


# ---------------------------------------------------------------------------
# the report and the chrome-trace export
# ---------------------------------------------------------------------------

def _write_sample_run(tmp_path):
    with JsonlSink(tmp_path, label="campaign", flush_every=1) as sink:
        for generation in range(4):
            with sink.span(
                "engine.generation", generation=generation
            ) as span:
                with sink.span("stage.compile"):
                    pass
                span.set(
                    artifact_hits=generation,
                    artifact_store_hits=1,
                    artifact_mesh_hits=0,
                    artifact_misses=3 - generation if generation < 3 else 0,
                )
        sink.event(
            "fleet.worker",
            worker_id=1, peer="127.0.0.1:9", slots=2, batches=4,
            candidates=24, busy_seconds=1.5, uptime_seconds=3.0,
            mesh_bytes_sent=10, mesh_bytes_received=32,
        )
        sink.incr("artifact.memory_hits", 6)


class TestReport:
    def test_breakdown_tiers_and_workers(self, tmp_path):
        _write_sample_run(tmp_path)
        events, skipped = load_events(tmp_path)
        assert skipped == 0
        breakdown = {row["name"]: row for row in span_breakdown(events)}
        assert breakdown["engine.generation"]["count"] == 4
        assert breakdown["stage.compile"]["count"] == 4
        tiers = tier_ratio_rows(events, buckets=2)
        assert len(tiers) == 2
        assert tiers[0]["generations"] == "1-2"
        assert tiers[0]["lookups"] == sum((0 + 1 + 3, 1 + 1 + 2))
        assert 0.0 <= tiers[0]["miss_ratio"] <= 1.0
        (worker,) = worker_rows(events)
        assert worker["worker_id"] == 1
        assert worker["utilization"] == pytest.approx(0.5)
        assert worker["mesh_bytes"] == 42

    def test_chrome_trace_is_valid(self, tmp_path):
        _write_sample_run(tmp_path)
        out = tmp_path / "trace.json"
        assert report_cli(["report", str(tmp_path), "--chrome-trace", str(out)]) == 0
        trace = json.loads(out.read_text())  # must be valid JSON
        assert trace["traceEvents"]
        for entry in trace["traceEvents"]:
            assert {"name", "ph", "ts", "dur", "pid", "tid"} <= set(entry)
            assert entry["ph"] == "X"
            assert entry["ts"] >= 0 and entry["dur"] >= 0
        # timestamps are relative to the earliest span: the origin is 0
        assert min(e["ts"] for e in trace["traceEvents"]) == 0

    def test_report_renders_every_table(self, tmp_path, capsys):
        _write_sample_run(tmp_path)
        assert report_cli(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "per-stage time breakdown" in out
        assert "artifact tier hit ratios over time" in out
        assert "worker utilization" in out
        assert "counters (all processes)" in out
        assert "artifact.memory_hits" in out

    def test_report_on_empty_dir_warns_and_succeeds(self, tmp_path, capsys):
        assert report_cli(["report", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "no telemetry events" in captured.err
        assert "warning" in captured.err

    def test_report_on_spanless_dir_warns_and_succeeds(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"type": "meta", "pid": 7, "wall_epoch": 100.0}\n'
            '{"type": "event", "name": "fleet.worker", "ts": 0.5, '
            '"attrs": {"worker_id": 1, "peer": "x", "slots": 1}}\n'
        )
        assert report_cli(["report", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "no spans" in captured.err
        assert "worker utilization" in captured.out

    def test_report_tolerates_truncated_trailing_line(self, tmp_path, capsys):
        _write_sample_run(tmp_path)
        path = next(tmp_path.glob("*.jsonl"))
        with path.open("a") as handle:
            # A crash mid-append leaves a partial JSON document with no
            # trailing newline; the well-formed prefix must still report.
            handle.write('{"type": "span", "name": "stage.comp')
        assert report_cli(["report", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "1 malformed lines skipped" in captured.out
        assert "per-stage time breakdown" in captured.out

    def test_loader_tolerates_garbage_field_types(self, tmp_path):
        (tmp_path / "garbage.jsonl").write_text(
            '{"type": "meta", "pid": "not-an-int", "wall_epoch": "later"}\n'
            '{"type": "span", "name": "stage.compile", "ts": 1.0, "dur": "fast"}\n'
            '{"type": "event", "name": "fleet.worker", "ts": 2.0, '
            '"attrs": {"worker_id": "seven", "slots": "many"}}\n'
        )
        events, skipped = load_events(tmp_path)
        assert skipped == 0  # parseable lines are kept, fields are coerced
        assert span_breakdown(events)[0]["seconds"] == 0.0
        assert worker_rows(events) == []  # uncoercible worker_id -> dropped
        assert report_cli(["report", str(tmp_path)]) == 0

    def test_loader_skips_malformed_lines(self, tmp_path):
        _write_sample_run(tmp_path)
        path = next(tmp_path.glob("*.jsonl"))
        with path.open("a") as handle:
            handle.write('{"truncated": \n')
            handle.write('[1, 2, 3]\n')  # parses, but not a record
        events, skipped = load_events(tmp_path)
        assert skipped == 2
        assert spans(events)  # the well-formed prefix still reports


# ---------------------------------------------------------------------------
# the hard invariant: telemetry on == telemetry off, bit for bit
# ---------------------------------------------------------------------------

from repro.campaign import Campaign, SharedWorkerPool  # noqa: E402
from test_distrib import (  # noqa: E402
    JOBS,
    thread_workers,
    tiny_campaign_config,
    tiny_spec,
)


class TestCampaignParity:
    def test_serial_fingerprint_identical_with_telemetry(self, tmp_path):
        plain = Campaign(JOBS, tiny_campaign_config(), spec_provider=tiny_spec).run()
        observed = Campaign(
            JOBS,
            tiny_campaign_config(telemetry_dir=tmp_path / "telemetry"),
            spec_provider=tiny_spec,
        ).run()
        assert observed.fingerprint() == plain.fingerprint()
        assert (observed.database.record_signatures()
                == plain.database.record_signatures())
        # the sink was restored after the run...
        assert get_sink() is NULL_SINK
        # ...and actually recorded the run: generations, jobs, stages.
        events, skipped = load_events(tmp_path / "telemetry")
        assert skipped == 0
        names = {record["name"] for record in spans(events)}
        assert {"campaign.run", "campaign.job", "engine.generation",
                "stage.compile", "stage.measure", "stage.score"} <= names
        counters = merged_counters(events)
        assert counters["engine.batches"] > 0
        assert counters.get("artifact.memory_hits", 0) > 0
        # generation spans carry the tier deltas the report buckets
        assert tier_ratio_rows(events)

    @pytest.mark.skipif(not loopback_available(),
                        reason="no AF_INET loopback in this sandbox")
    def test_distributed_fingerprint_identical_and_fleet_reported(self, tmp_path):
        serial = Campaign(JOBS, tiny_campaign_config(), spec_provider=tiny_spec).run()
        pool = SharedWorkerPool(dispatch="distributed")
        try:
            with thread_workers(pool.coordinator, 2):
                distributed = Campaign(
                    JOBS,
                    tiny_campaign_config(
                        dispatch="distributed",
                        telemetry_dir=tmp_path / "telemetry",
                    ),
                    spec_provider=tiny_spec,
                ).run(pool=pool)
                fleet = pool.fleet_telemetry()
        finally:
            pool.close()
        assert distributed.fingerprint() == serial.fingerprint()
        assert (distributed.database.record_signatures()
                == serial.database.record_signatures())
        # every worker forwarded TelemetrySummary frames the coordinator kept
        assert fleet and len(fleet) == 2
        for row in fleet:
            assert row["batches"] > 0
            assert row["candidates"] > 0
            assert row["busy_seconds"] > 0
            assert row["uptime_seconds"] >= row["busy_seconds"]
        # and the coordinator's sink recorded them as fleet.worker events
        events, _ = load_events(tmp_path / "telemetry")
        workers = worker_rows(events)
        assert [row["worker_id"] for row in workers] == [1, 2]
        assert all(row["batches"] > 0 for row in workers)

    def test_telemetry_cli_flag_end_to_end(self, tmp_path, capsys):
        from repro.campaign.cli import main

        args = [
            "--benchmarks", "462.libquantum",
            "--families", "llvm",
            "--max-iterations", "10",
            "--population", "6",
            "--telemetry-dir", str(tmp_path / "telemetry"),
            "--json", str(tmp_path / "summary.json"),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "database fingerprint" in out  # summary tables stay on stdout
        assert (tmp_path / "telemetry").is_dir()
        trace_out = tmp_path / "trace.json"
        assert report_cli([
            "report", str(tmp_path / "telemetry"), "--chrome-trace", str(trace_out),
        ]) == 0
        report_out = capsys.readouterr().out
        assert "per-stage time breakdown" in report_out
        trace = json.loads(trace_out.read_text())
        assert trace["traceEvents"]
