"""Tests for the distributed evaluation service.

The load-bearing guarantees:

* the wire protocol round-trips messages and fails loudly on corruption;
* ``DistributedMapper.map`` returns submission-order results for any worker
  count, survives worker death mid-batch via bounded re-dispatch, and falls
  back to in-process evaluation when no workers remain;
* remote evaluator exceptions propagate as programming errors (never
  re-dispatched), and transport failures surface as
  :class:`MapperTransportError` with the evaluator id and key slice;
* a tuner or campaign on ``dispatch="distributed"`` (or ``"thread"``)
  produces a database bit-for-bit identical to the serial run — including
  after killing a worker mid-generation and resuming from a checkpoint.

All socket tests bind loopback only and skip cleanly on sandboxes without
AF_INET loopback.
"""

from __future__ import annotations

import contextlib
import os
import socket
import subprocess
import sys
import threading
from pathlib import Path

import pytest
from _helpers import fresh_process_state, loopback_available

from repro.campaign import (
    Campaign,
    CampaignConfig,
    PooledThreadMapper,
    ProgramJob,
    SharedWorkerPool,
)
from repro.opt.flags import FlagVector, build_gcc_registry
from repro.tuner import (
    BinTuner,
    BinTunerConfig,
    BuildSpec,
    CandidateResult,
    EvaluationEngine,
    GAParameters,
    MapperTransportError,
    ThreadPoolMapper,
    make_mapper,
)

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

#: Sandboxes without AF_INET loopback cannot host the coordinator at all;
#: every test in this module at least imports it, so gate the whole module.
pytestmark = pytest.mark.skipif(
    not loopback_available(), reason="no AF_INET loopback in this sandbox"
)

from repro.distrib import (  # noqa: E402  (import after the loopback gate)
    ConnectionClosed,
    Coordinator,
    DistribError,
    DistributedMapper,
    ProtocolError,
    parse_address,
    serve,
)
from repro.distrib import protocol  # noqa: E402


TINY_A = """
int acc[16];
int work(int n) { int i; int s = 0; for (i = 0; i < n; i++) { acc[i % 16] = i * 3; s += acc[i % 16]; } return s; }
int main() { int s = work(40); print_int(s); return s % 101; }
"""

TINY_B = """
int grid[24];
int mix(int n) { int i; int s = 1; for (i = 1; i < n; i++) { grid[i % 24] = s ^ (i * 5); s += grid[i % 24] % 7; } return s; }
int main() { int s = mix(30); print_int(s); return s % 97; }
"""

SOURCES = {"tiny-a": TINY_A, "tiny-b": TINY_B}
JOBS = [ProgramJob("llvm", "tiny-a"), ProgramJob("llvm", "tiny-b")]


def tiny_spec(job: ProgramJob) -> BuildSpec:
    return BuildSpec(name=job.program, source=SOURCES[job.program])


def tiny_campaign_config(**kwargs) -> CampaignConfig:
    return CampaignConfig(
        tuner=BinTunerConfig(
            max_iterations=16, ga=GAParameters(population_size=6, seed=9), stall_window=12
        ),
        **kwargs,
    )


class FakeEvaluator:
    """Picklable deterministic evaluator (tagged so tests can tell whose
    results came back when several evaluators share one coordinator)."""

    def __init__(self, tag: str = "fake") -> None:
        self.tag = tag

    def __call__(self, key) -> CandidateResult:
        return CandidateResult(
            fitness=float(len(key)),
            code_size=10 * len(key),
            fingerprint=f"{self.tag}:{'+'.join(key)}",
            valid=True,
            elapsed_seconds=0.0,
        )


class ExplodingEvaluator:
    """Raises a programming error remotely (must be picklable)."""

    def __call__(self, key):
        raise TypeError("injected bug")


@contextlib.contextmanager
def thread_workers(coordinator: Coordinator, count: int, **kwargs):
    """Run ``count`` worker loops as daemon threads against ``coordinator``.

    ``hard_exit`` is forced off: an ``os._exit`` inside a thread would take
    the test process down with it — closing the socket instead is
    indistinguishable from the coordinator's point of view (EOF mid-batch).
    """
    target = coordinator.worker_count() + count  # cumulative: calls may nest
    threads = []
    for _ in range(count):
        thread = threading.Thread(
            target=serve,
            kwargs=dict(connect=coordinator.address_string(), hard_exit=False, **kwargs),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    coordinator.wait_for_workers(target, timeout=10)
    yield threads


def spawn_worker_process(address: str, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.distrib.worker", "--connect", address,
         "--quiet", *extra],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_messages_round_trip(self):
        left, right = socket.socketpair()
        try:
            for message in (
                protocol.Hello(slots=3),
                protocol.Welcome(worker_id=7),
                protocol.EvalBatch(5, ((0, ("-a",)), (1, ("-b", "-c"))), blob=b"blob"),
                protocol.BatchResult(5, ((0, "r0"), (1, "r1"))),
                protocol.EvaluatorMissing(5),
                protocol.Shutdown(),
            ):
                protocol.send_message(left, message)
                assert protocol.recv_message(right) == message
        finally:
            left.close()
            right.close()

    def test_non_protocol_objects_rejected(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(ProtocolError):
                protocol.send_message(left, {"not": "a message"})
        finally:
            left.close()
            right.close()

    def test_eof_mid_frame_is_connection_closed(self):
        left, right = socket.socketpair()
        left.sendall(b"\x00\x00")  # half a header, then hang up
        left.close()
        try:
            with pytest.raises(ConnectionClosed):
                protocol.recv_message(right)
        finally:
            right.close()

    def test_oversized_frame_announcement_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall((protocol.MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(ProtocolError):
                protocol.recv_message(right)
        finally:
            left.close()
            right.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.2:7099") == ("10.0.0.2", 7099)
        assert parse_address(":0") == ("127.0.0.1", 0)
        for bad in ("nohost", "host:port", "host:-1", "host:99999"):
            with pytest.raises(ValueError):
                parse_address(bad)


# ---------------------------------------------------------------------------
# coordinator + worker registration
# ---------------------------------------------------------------------------

class TestCoordinator:
    def test_workers_register_and_shut_down(self):
        with Coordinator() as coordinator:
            with thread_workers(coordinator, 2, slots=2) as threads:
                assert coordinator.worker_count() == 2
                assert coordinator.total_slots() == 4
                ids = [handle.worker_id for handle in coordinator.workers()]
                assert ids == sorted(ids)
        for thread in threads:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in threads)

    def test_wait_for_workers_times_out(self):
        with Coordinator() as coordinator:
            with pytest.raises(DistribError):
                coordinator.wait_for_workers(1, timeout=0.05)

    def test_garbage_connection_is_ignored(self):
        """A non-worker peer (port scanner, wrong protocol) must not wedge
        the accept loop or land in the registry."""
        with Coordinator(handshake_timeout=0.2) as coordinator:
            rogue = socket.create_connection(coordinator.address)
            rogue.sendall(b"GET / HTTP/1.1\r\n\r\n")
            rogue.close()
            with thread_workers(coordinator, 1):
                assert coordinator.worker_count() == 1

    def test_authkey_gates_registration(self):
        """With an authkey, only workers holding the secret register — and
        no pickle byte from an unauthenticated peer is ever parsed."""
        with Coordinator(handshake_timeout=0.2, authkey="s3cret") as coordinator:
            # A keyless worker's Hello pickle lands where the HMAC digest is
            # expected: rejected without being unpickled.
            rejected = threading.Thread(
                target=serve,
                kwargs=dict(connect=coordinator.address_string(), hard_exit=False),
                daemon=True,
            )
            rejected.start()
            rejected.join(timeout=5)
            assert coordinator.worker_count() == 0
            with thread_workers(coordinator, 1, authkey="s3cret"):
                assert coordinator.worker_count() == 1
                mapper = DistributedMapper(coordinator, FakeEvaluator("auth"))
                results = mapper.map(KEYS[:2])
                assert [r.fingerprint for r in results] == [
                    f"auth:{'+'.join(key)}" for key in KEYS[:2]
                ]
                assert mapper.fallback_evaluations == 0

    def test_keyless_non_loopback_bind_refused(self):
        """A coordinator without an authkey must refuse to listen beyond
        loopback — an unauthenticated pickle endpoint is remote code
        execution by misconfiguration."""
        with pytest.raises(ValueError, match="authkey"):
            Coordinator(host="0.0.0.0", port=0)
        Coordinator(host="0.0.0.0", port=0, authkey="k").close()  # keyed: fine

    def test_malformed_hello_does_not_kill_accept_loop(self):
        """A Hello with a non-int slots field (version skew, crafted peer)
        must be dropped without taking the accept thread down."""
        with Coordinator(handshake_timeout=0.2) as coordinator:
            rogue = socket.create_connection(coordinator.address)
            protocol.send_message(rogue, protocol.Hello(slots="2"))
            rogue.close()
            with thread_workers(coordinator, 1):  # registration still works
                assert coordinator.worker_count() == 1

    def test_wrong_authkey_rejected(self):
        with Coordinator(handshake_timeout=0.2, authkey="right") as coordinator:
            wrong = threading.Thread(
                target=serve,
                kwargs=dict(connect=coordinator.address_string(),
                            authkey="wrong", hard_exit=False),
                daemon=True,
            )
            wrong.start()
            wrong.join(timeout=5)
            assert coordinator.worker_count() == 0


# ---------------------------------------------------------------------------
# the distributed mapper
# ---------------------------------------------------------------------------

KEYS = [("-a",), ("-a", "-b"), ("-b", "-c", "-d"), ("-e",), ("-a", "-e"), ("-f",)]


class TestDistributedMapper:
    def test_submission_order_for_any_worker_count(self):
        expected = [FakeEvaluator("tag")(key) for key in KEYS]
        for workers in (1, 2, 3):
            with Coordinator() as coordinator:
                with thread_workers(coordinator, workers):
                    mapper = DistributedMapper(coordinator, FakeEvaluator("tag"))
                    assert mapper.map(KEYS) == expected
                    assert mapper.fallback_evaluations == 0

    def test_no_workers_falls_back_in_process(self):
        with Coordinator() as coordinator:
            mapper = DistributedMapper(coordinator, FakeEvaluator("local"))
            results = mapper.map(KEYS)
            assert [r.fingerprint for r in results] == [
                f"local:{'+'.join(key)}" for key in KEYS
            ]
            assert mapper.fallback_evaluations == len(KEYS)
            assert mapper.workers == 1  # the in-process lane

    def test_worker_death_mid_batch_redispatches(self):
        """One worker dies on its first batch: its keys are re-dispatched to
        the survivor and the results are indistinguishable from a healthy
        run — the determinism story under partial failure."""
        with Coordinator() as coordinator:
            with thread_workers(coordinator, 1, max_batches=0):
                with thread_workers(coordinator, 1):
                    assert coordinator.worker_count() == 2
                    mapper = DistributedMapper(coordinator, FakeEvaluator("tag"))
                    assert mapper.map(KEYS) == [FakeEvaluator("tag")(k) for k in KEYS]
                    assert coordinator.worker_count() == 1  # the dead one was discarded

    def test_all_workers_dead_falls_back(self):
        with Coordinator() as coordinator:
            with thread_workers(coordinator, 2, max_batches=0):
                mapper = DistributedMapper(coordinator, FakeEvaluator("tag"))
                assert mapper.map(KEYS) == [FakeEvaluator("tag")(k) for k in KEYS]
                assert mapper.fallback_evaluations == len(KEYS)
                assert coordinator.worker_count() == 0

    def test_remote_programming_errors_propagate(self):
        with Coordinator() as coordinator:
            with thread_workers(coordinator, 2):
                mapper = DistributedMapper(coordinator, ExplodingEvaluator())
                with pytest.raises(TypeError, match="injected bug"):
                    mapper.map(KEYS)
                # The error was deterministic, not transport: nobody died.
                assert coordinator.worker_count() == 2

    def test_bounded_evaluator_cache_self_heals(self):
        """With a 1-entry worker cache, alternating evaluators forces the
        EvaluatorMissing -> re-send-blob path on every switch; results must
        still come from the right evaluator."""
        with Coordinator() as coordinator:
            with thread_workers(coordinator, 1, cache_limit=1):
                mapper_a = DistributedMapper(coordinator, FakeEvaluator("a"))
                mapper_b = DistributedMapper(coordinator, FakeEvaluator("b"))
                for _round in range(2):
                    assert [r.fingerprint for r in mapper_a.map(KEYS[:2])] == [
                        f"a:{'+'.join(key)}" for key in KEYS[:2]
                    ]
                    assert [r.fingerprint for r in mapper_b.map(KEYS[:2])] == [
                        f"b:{'+'.join(key)}" for key in KEYS[:2]
                    ]

    def test_slot_weighting_reaches_every_worker(self):
        with Coordinator() as coordinator:
            with thread_workers(coordinator, 2, slots=2):
                mapper = DistributedMapper(coordinator, FakeEvaluator("tag"))
                mapper.map(KEYS)
                assert all(
                    handle.batches_completed > 0 for handle in coordinator.workers()
                )

    def test_multi_slot_worker_preserves_order(self):
        """``--slots N`` evaluates a batch on N threads; the index pairing
        (and therefore result order) must survive the concurrency."""
        with Coordinator() as coordinator:
            with thread_workers(coordinator, 1, slots=4):
                mapper = DistributedMapper(coordinator, FakeEvaluator("tag"))
                assert mapper.map(KEYS) == [FakeEvaluator("tag")(key) for key in KEYS]
                assert mapper.fallback_evaluations == 0

    def test_mismatched_reply_is_protocol_error_not_worker_loss(self):
        """A version-skewed worker (reply indices that don't match the
        batch) must surface as ProtocolError, not silently wipe the fleet
        one re-dispatch at a time."""
        def skewed_worker(address):
            sock = socket.create_connection(parse_address(address))
            try:
                protocol.send_message(sock, protocol.Hello(1))
                protocol.recv_message(sock)  # Welcome
                batch = protocol.recv_message(sock)
                protocol.send_message(
                    sock, protocol.BatchResult(batch.evaluator_id, ((999, None),))
                )
                with contextlib.suppress(Exception):
                    protocol.recv_message(sock)  # await Shutdown
            finally:
                sock.close()

        with Coordinator() as coordinator:
            thread = threading.Thread(
                target=skewed_worker, args=(coordinator.address_string(),), daemon=True
            )
            thread.start()
            coordinator.wait_for_workers(1, timeout=10)
            mapper = DistributedMapper(coordinator, FakeEvaluator("tag"))
            with pytest.raises(ProtocolError, match="mismatched"):
                mapper.map(KEYS[:2])
            assert coordinator.worker_count() == 1  # not discarded as lost

    def test_worker_process_cli_round_trip(self, llvm):
        """A real ``python -m repro.distrib.worker`` subprocess serves
        batches (the evaluator blob must unpickle in a fresh interpreter, so
        this uses the production evaluator) and exits 0 on shutdown."""
        from repro.tuner import TunerCandidateEvaluator

        baseline = llvm.compile_level(TINY_A, "O0", name="tiny").image
        evaluator = TunerCandidateEvaluator(
            compiler=llvm, source=TINY_A, name="tiny", baseline=baseline
        )
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2", "O3")]
        with Coordinator() as coordinator:
            process = spawn_worker_process(coordinator.address_string(), "--slots", "2")
            try:
                coordinator.wait_for_workers(1, timeout=30)
                mapper = DistributedMapper(coordinator, evaluator)
                results = mapper.map(keys)
                assert mapper.fallback_evaluations == 0
                assert [r.fingerprint for r in results] == [
                    evaluator(key).fingerprint for key in keys
                ]
                coordinator.close()
                assert process.wait(timeout=10) == 0
            finally:
                if process.poll() is None:
                    process.kill()

    def test_worker_cli_refuses_dead_address(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here now
        from repro.distrib.worker import main as worker_main

        assert worker_main(["--connect", f"127.0.0.1:{port}", "--quiet"]) == 2


# ---------------------------------------------------------------------------
# engine integration: transport errors, thread mapper
# ---------------------------------------------------------------------------

class _EOFMapper:
    workers = 1
    evaluator_id = 77

    def map(self, keys):
        raise EOFError("remote worker pipe broke")

    def close(self):
        pass


class TestEngineIntegration:
    def test_transport_failures_are_actionable(self):
        registry = build_gcc_registry()
        engine = EvaluationEngine(FakeEvaluator(), mapper=_EOFMapper())
        vector = FlagVector(registry, frozenset(registry.flag_names()[:2]))
        with pytest.raises(MapperTransportError) as error:
            engine.evaluate_batch([vector])
        assert error.value.evaluator_id == 77
        assert error.value.keys == (tuple(vector.sorted_names()),)
        assert "evaluator id 77" in str(error.value)
        assert vector.sorted_names()[0] in str(error.value)
        assert isinstance(error.value.__cause__, EOFError)

    def test_thread_mapper_matches_serial(self, llvm):
        spec = BuildSpec(name="tiny", source=TINY_A)
        def tune(executor, workers):
            config = BinTunerConfig(
                max_iterations=12, ga=GAParameters(population_size=6, seed=9),
                stall_window=10, executor=executor, workers=workers,
            )
            tuner = BinTuner(llvm, spec, config)
            try:
                return tuner.run()
            finally:
                tuner.close()

        serial = tune("serial", 1)
        threaded = tune("thread", 4)
        assert threaded.best_flags.sorted_names() == serial.best_flags.sorted_names()
        assert threaded.ncd_history() == serial.ncd_history()
        assert [r.flags for r in threaded.database.records] == [
            r.flags for r in serial.database.records
        ]

    def test_make_mapper_thread_and_validation(self):
        mapper = make_mapper(FakeEvaluator(), executor="thread", workers=3)
        assert isinstance(mapper, ThreadPoolMapper)
        try:
            assert mapper.map(KEYS) == [FakeEvaluator()(key) for key in KEYS]
        finally:
            mapper.close()
        with pytest.raises(ValueError):
            make_mapper(FakeEvaluator(), executor="carrier-pigeon")

    def test_tuner_distributed_matches_serial(self, llvm):
        spec = BuildSpec(name="tiny", source=TINY_A)
        config = BinTunerConfig(
            max_iterations=12, ga=GAParameters(population_size=6, seed=9),
            stall_window=10,
        )
        serial_tuner = BinTuner(llvm, spec, config)
        serial = serial_tuner.run()

        from dataclasses import replace

        distributed_tuner = BinTuner(llvm, spec, replace(config, executor="distributed"))
        engine = distributed_tuner.evaluation_engine()
        coordinator = engine.mapper.coordinator
        try:
            with thread_workers(coordinator, 2):
                distributed = distributed_tuner.run()
        finally:
            distributed_tuner.close()  # tears down the tuner-owned coordinator
        assert distributed.best_flags.sorted_names() == serial.best_flags.sorted_names()
        assert distributed.ncd_history() == serial.ncd_history()
        assert [r.flags for r in distributed.database.records] == [
            r.flags for r in serial.database.records
        ]


# ---------------------------------------------------------------------------
# campaign integration
# ---------------------------------------------------------------------------

class TestDistributedCampaign:
    def test_pool_dispatch_modes(self):
        pool = SharedWorkerPool(dispatch="thread", workers=2)
        try:
            assert isinstance(pool.mapper(FakeEvaluator()), PooledThreadMapper)
        finally:
            pool.close()
        pool = SharedWorkerPool(dispatch="distributed")
        try:
            assert isinstance(pool.mapper(FakeEvaluator()), DistributedMapper)
            host, port = parse_address(pool.address_string())
            assert host == "127.0.0.1" and port > 0
        finally:
            pool.close()
        with pytest.raises(ValueError):
            SharedWorkerPool(dispatch="carrier-pigeon")

    def test_min_workers_timeout_raises(self):
        campaign = Campaign(
            JOBS,
            tiny_campaign_config(
                dispatch="distributed", min_workers=1, worker_wait_timeout=0.05
            ),
            spec_provider=tiny_spec,
        )
        with pytest.raises(DistribError):
            campaign.run()

    def test_campaign_distributed_matches_serial(self):
        """Two loopback workers; the resulting CampaignDatabase is identical
        in records, order and fingerprint to the serial run, and the remote
        workers actually evaluated batches."""
        serial = Campaign(JOBS, tiny_campaign_config(), spec_provider=tiny_spec).run()
        pool = SharedWorkerPool(dispatch="distributed")
        try:
            with thread_workers(pool.coordinator, 2):
                distributed = Campaign(
                    JOBS, tiny_campaign_config(dispatch="distributed"),
                    spec_provider=tiny_spec,
                ).run(pool=pool)
                assert all(
                    handle.batches_completed > 0 for handle in pool.coordinator.workers()
                )
        finally:
            pool.close()
        assert distributed.fingerprint() == serial.fingerprint()
        assert (distributed.database.record_signatures()
                == serial.database.record_signatures())

    @pytest.mark.slow
    def test_worker_loss_and_resume_match_serial(self, tmp_path):
        """The acceptance scenario end to end, with real worker processes:
        a checkpointed distributed campaign loses one of its two workers
        mid-run (``--max-batches`` crash), is interrupted after the first
        program, and resumes on fresh workers — records, order and
        fingerprint equal the uninterrupted serial run's."""
        serial = Campaign(JOBS, tiny_campaign_config(), spec_provider=tiny_spec).run()

        checkpoint = tmp_path / "ckpt"
        pool = SharedWorkerPool(dispatch="distributed")
        workers = []
        try:
            address = pool.address_string()
            workers.append(spawn_worker_process(address))
            # The second worker crashes without replying after two batches —
            # mid-generation, from the campaign's point of view.
            workers.append(spawn_worker_process(address, "--max-batches", "2"))
            pool.wait_for_workers(2, timeout=60)
            first = Campaign(
                JOBS,
                tiny_campaign_config(
                    dispatch="distributed", checkpoint_dir=checkpoint
                ),
                spec_provider=tiny_spec,
            ).run(limit=1, pool=pool)
            assert first.interrupted and len(first.programs) == 1
        finally:
            pool.close()
            for process in workers:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()
        # The injected crash really happened: one worker exited abnormally.
        assert sorted(process.returncode for process in workers) != [0, 0]

        resumed_pool = SharedWorkerPool(dispatch="distributed")
        workers = []
        try:
            address = resumed_pool.address_string()
            workers = [spawn_worker_process(address) for _ in range(2)]
            resumed_pool.wait_for_workers(2, timeout=60)
            resumed = Campaign(
                JOBS,
                tiny_campaign_config(
                    dispatch="distributed", checkpoint_dir=checkpoint
                ),
                spec_provider=tiny_spec,
            ).run(pool=resumed_pool)
        finally:
            resumed_pool.close()
            for process in workers:
                try:
                    process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    process.kill()
        assert resumed.programs[0].resumed and not resumed.programs[1].resumed
        assert resumed.fingerprint() == serial.fingerprint()
        assert (resumed.database.record_signatures()
                == serial.database.record_signatures())


class TestCampaignWorkerSubcommand:
    def test_worker_subcommand_delegates(self):
        """``python -m repro.campaign worker`` is the same worker CLI."""
        from repro.campaign.cli import main

        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert main(["worker", "--connect", f"127.0.0.1:{port}", "--quiet"]) == 2


# ---------------------------------------------------------------------------
# worker resilience: reconnect/backoff and mid-batch heartbeats
# ---------------------------------------------------------------------------

class _SleepyEvaluator:
    """Picklable evaluator slower than a tiny coordinator timeout."""

    def __init__(self, delay: float = 1.0) -> None:
        self.delay = delay

    def __call__(self, key):
        import time

        time.sleep(self.delay)
        return CandidateResult(
            fitness=float(len(key)), code_size=1, fingerprint="slow:" + "+".join(key),
            valid=True, elapsed_seconds=self.delay,
        )


class TestWorkerResilience:
    def _free_port(self) -> int:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_reconnect_joins_late_coordinator_and_rejoins_after_drop(self):
        """--reconnect semantics end to end: the worker starts before any
        coordinator exists (refused connections back off and retry), joins
        once one binds, re-registers after its connection is dropped without
        a Shutdown (the restarted-machine scenario), and still exits cleanly
        on a real Shutdown."""
        from repro.distrib.worker import run_worker

        port = self._free_port()
        address = f"127.0.0.1:{port}"
        outcome = {}

        def target():
            outcome["status"] = run_worker(
                address, reconnect=True, backoff_base=0.05, backoff_cap=0.2,
                hard_exit=False, heartbeat_interval=0.0,
            )

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        with Coordinator(host="127.0.0.1", port=port) as coordinator:
            coordinator.wait_for_workers(1, timeout=10)
            first = coordinator.workers()[0]
            # Sanity: the late-joining worker actually evaluates.
            mapper = DistributedMapper(coordinator, FakeEvaluator("reconnect"))
            assert [r.fingerprint for r in mapper.map(KEYS[:2])] == [
                FakeEvaluator("reconnect")(key).fingerprint for key in KEYS[:2]
            ]
            # Network drop without Shutdown: the worker must come back.
            coordinator.discard(first)
            coordinator.wait_for_workers(1, timeout=10)
            assert coordinator.workers()[0].worker_id != first.worker_id
        # Coordinator.close() sent Shutdown: the reconnect loop must stop.
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert outcome["status"] == 0

    def test_reconnect_gives_up_after_max_retries(self):
        from repro.distrib.worker import CONNECTION_LOST_STATUS, run_worker

        port = self._free_port()  # nothing ever listens here
        status = run_worker(
            f"127.0.0.1:{port}", reconnect=True, max_retries=2,
            backoff_base=0.01, hard_exit=False,
        )
        assert status == CONNECTION_LOST_STATUS

    def test_without_reconnect_refused_connection_raises(self):
        from repro.distrib.worker import run_worker

        with pytest.raises(OSError):
            run_worker(f"127.0.0.1:{self._free_port()}", hard_exit=False)

    def test_heartbeats_keep_slow_batches_alive(self):
        """A batch slower than the per-task budget survives as long as the
        worker keeps beating — the coordinator only discards silence."""
        with Coordinator(task_timeout=0.2, handshake_timeout=0.2) as coordinator:
            with thread_workers(coordinator, 1, heartbeat_interval=0.05):
                mapper = DistributedMapper(coordinator, _SleepyEvaluator(delay=1.0))
                results = mapper.map(KEYS[:1])
                assert mapper.fallback_evaluations == 0
                assert coordinator.worker_count() == 1
                assert results[0].fingerprint.startswith("slow:")

    def test_without_heartbeats_slow_batch_reads_as_worker_loss(self):
        """The control case (and the pre-PR failure mode): no heartbeats, so
        the same slow batch times out, the worker is discarded, and the
        mapper falls back in-process."""
        with Coordinator(task_timeout=0.2, handshake_timeout=0.2) as coordinator:
            with thread_workers(coordinator, 1, heartbeat_interval=0.0):
                mapper = DistributedMapper(coordinator, _SleepyEvaluator(delay=1.0))
                results = mapper.map(KEYS[:1])
                assert mapper.fallback_evaluations == 1
                assert coordinator.worker_count() == 0
                assert results[0].fingerprint.startswith("slow:")

    def test_heartbeat_frames_round_trip(self):
        left, right = socket.socketpair()
        try:
            protocol.send_message(left, protocol.Heartbeat(worker_id=9))
            message = protocol.recv_message(right)
            assert isinstance(message, protocol.Heartbeat) and message.worker_id == 9
        finally:
            left.close()
            right.close()


# ---------------------------------------------------------------------------
# the worker-local persistent artifact tier (--store-dir)
# ---------------------------------------------------------------------------

class TestWorkerStore:
    """A distributed slot's disk-backed tier must survive everything the
    in-memory caches cannot: worker restarts, reconnects, and evaluator-
    cache evictions."""

    def _staged_evaluator(self, llvm, store_dir=None):
        from repro.tuner import StagedCandidateEvaluator

        baseline = llvm.compile_level(TINY_A, "O0", name="tiny").image
        return StagedCandidateEvaluator(
            compiler=llvm, source=TINY_A, name="tiny", baseline=baseline,
            store_dir=str(store_dir) if store_dir is not None else None,
        )

    def test_restarted_worker_thread_is_warm_from_its_store(self, llvm, tmp_path):
        """serve(store_dir=...) attaches a worker-local tier: a 'restarted'
        worker (new serve loop, process-global caches wiped) serves the same
        keys from disk instead of recompiling."""
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2", "O3")]
        store_dir = tmp_path / "worker-store"

        def one_session():
            with Coordinator() as coordinator:
                with thread_workers(coordinator, 1, store_dir=str(store_dir)):
                    mapper = DistributedMapper(coordinator, self._staged_evaluator(llvm))
                    results = mapper.map(keys)
                    assert mapper.fallback_evaluations == 0
                    return results

        fresh_process_state()
        cold = one_session()
        assert sum(result.artifact_store_hits for result in cold) == 0
        fresh_process_state()  # the restarted worker's memory is gone
        warm = one_session()
        assert [(r.fitness, r.fingerprint) for r in warm] == [
            (r.fitness, r.fingerprint) for r in cold
        ]
        assert all(result.artifact_store_hits >= 1 for result in warm)
        assert sum(result.artifact_misses for result in warm) == 0

    @pytest.mark.slow
    def test_worker_process_cli_store_dir_survives_a_real_restart(self, llvm, tmp_path):
        """End to end with real processes: a worker started with --store-dir
        compiles a batch, dies, and a *new* worker process over the same
        store serves the identical batch without recompiling."""
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2")]
        store_dir = tmp_path / "worker-store"

        def one_worker_session():
            with Coordinator() as coordinator:
                process = spawn_worker_process(
                    coordinator.address_string(), "--store-dir", str(store_dir)
                )
                try:
                    coordinator.wait_for_workers(1, timeout=30)
                    mapper = DistributedMapper(coordinator, self._staged_evaluator(llvm))
                    results = mapper.map(keys)
                    assert mapper.fallback_evaluations == 0
                    coordinator.close()
                    assert process.wait(timeout=10) == 0
                    return results
                finally:
                    if process.poll() is None:
                        process.kill()

        cold = one_worker_session()
        warm = one_worker_session()  # a brand-new interpreter, same store
        assert [(r.fitness, r.fingerprint) for r in warm] == [
            (r.fitness, r.fingerprint) for r in cold
        ]
        assert all(result.artifact_store_hits >= 1 for result in warm)
        assert sum(result.artifact_misses for result in warm) == 0

    def test_no_store_worker_never_touches_the_orchestrator_path(self, llvm, tmp_path):
        """--no-store: an evaluator blob carrying the orchestrator's store
        path evaluates normally, but the foreign path is never created."""
        foreign = tmp_path / "orchestrator-store"
        keys = [tuple(llvm.preset(level).sorted_names()) for level in ("O1", "O2")]
        fresh_process_state()
        reference = [self._staged_evaluator(llvm)(key) for key in keys]
        fresh_process_state()
        with Coordinator() as coordinator:
            with thread_workers(coordinator, 1, no_store=True):
                mapper = DistributedMapper(
                    coordinator, self._staged_evaluator(llvm, store_dir=foreign)
                )
                results = mapper.map(keys)
                assert mapper.fallback_evaluations == 0
        assert [(r.fitness, r.fingerprint) for r in results] == [
            (r.fitness, r.fingerprint) for r in reference
        ]
        assert not foreign.exists()
