"""Tests for the optimization passes, flag registry, pass manager and the
compiler drivers — including the central functional-correctness property:
every optimization level and every (repaired) random flag vector must preserve
the program's observable behaviour."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import run_program
from repro.backend.codegen import CodegenOptions
from repro.backend.linker import link_module
from repro.compilers import ObfuscatorLLVM, SimGCC, SimLLVM
from repro.ir import build_module, verify_module
from repro.minic import parse_program
from repro.opt import (
    build_gcc_registry,
    build_llvm_registry,
    constant_fold_function,
    eliminate_dead_code,
    if_convert,
    inline_functions,
    peel_loops,
    simplify_cfg,
    strength_reduce,
    tail_call_optimization,
    unroll_loops,
    vectorize_loops,
    expand_builtins,
    merge_constants,
)
from repro.opt.flags import FlagVector
from repro.opt.pass_manager import PassManager
from repro.tuner.constraints import ConstraintEngine


def _behaviour(module, options=None):
    image = link_module(module.clone(), options=options or CodegenOptions(), name="t")
    return run_program(image).observable_state()


class TestScalarPasses:
    def test_constant_folding_folds(self):
        module = build_module(parse_program("int main() { return 2 * 3 + 4; }"))
        before = _behaviour(module)
        rewrites = constant_fold_function(module.function("main"))
        assert rewrites > 0
        assert _behaviour(module) == before

    def test_dce_removes_dead_locals(self):
        module = build_module(parse_program("int main() { int dead = 41; int live = 1; return live; }"))
        before = _behaviour(module)
        removed = eliminate_dead_code(module.function("main"))
        assert removed > 0
        assert _behaviour(module) == before

    def test_simplify_cfg_merges_blocks(self, sample_module):
        module = sample_module.clone()
        before = _behaviour(module)
        total = sum(simplify_cfg(fn) for fn in module.functions.values())
        verify_module(module)
        assert total > 0
        assert _behaviour(module) == before

    def test_strength_reduction_removes_multiplications(self):
        module = build_module(parse_program("int main() { int x = read_int(); return x * 10 + x * 16; }"))
        before_image = link_module(module.clone(), name="t")
        rewrites = strength_reduce(module.function("main"))
        verify_module(module)
        assert rewrites == 2
        after_image = link_module(module.clone(), name="t")
        assert run_program(before_image, inputs=[7]).return_value == run_program(after_image, inputs=[7]).return_value == 182


class TestStructuralPasses:
    def test_inlining_preserves_behaviour_and_removes_calls(self, sample_module):
        module = sample_module.clone()
        before = _behaviour(module)
        count = inline_functions(module, small_only=True, small_threshold=40)
        verify_module(module)
        assert count > 0
        assert _behaviour(module) == before

    def test_tail_call_marking(self):
        source = "int helper(int x) { return x + 1; } int wrap(int x) { return helper(x); } int main() { return wrap(4); }"
        module = build_module(parse_program(source))
        before = _behaviour(module)
        assert tail_call_optimization(module) >= 1
        assert _behaviour(module, CodegenOptions(enable_tail_calls=True)) == before

    def test_unrolling_small_constant_loop(self):
        source = "int main() { int s = 0; int i; for (i = 0; i < 5; i++) s += i; return s; }"
        module = build_module(parse_program(source))
        before = _behaviour(module)
        changed = unroll_loops(module.function("main"), full_threshold=8)
        verify_module(module)
        assert changed == 1
        from repro.ir import natural_loops

        assert natural_loops(module.function("main")) == []
        assert _behaviour(module) == before

    def test_partial_unrolling_unknown_bound(self):
        source = "int main() { int n = read_int(); int s = 0; int i; for (i = 0; i < n; i++) s += i * 2; return s; }"
        module = build_module(parse_program(source))
        reference = link_module(module.clone(), name="t")
        changed = unroll_loops(module.function("main"), full_threshold=2, partial_factor=3)
        verify_module(module)
        assert changed == 1
        unrolled = link_module(module.clone(), name="t")
        for n in (0, 1, 5, 12):
            assert (
                run_program(reference, inputs=[n]).return_value
                == run_program(unrolled, inputs=[n]).return_value
            )

    def test_peeling_preserves_behaviour(self, sample_module):
        module = sample_module.clone()
        before = _behaviour(module)
        assert sum(peel_loops(fn) for fn in module.functions.values()) > 0
        verify_module(module)
        assert _behaviour(module) == before

    def test_vectorization_of_elementwise_loop(self):
        source = """
        int a[64]; int b[64]; int c[64];
        int main() {
          int i;
          for (i = 0; i < 64; i++) { a[i] = i; b[i] = 64 - i; }
          for (i = 0; i < 63; i++) { c[i] = a[i] * b[i]; }
          int s = 0;
          for (i = 0; i < 63; i++) s += c[i];
          return s % 251;
        }
        """
        module = build_module(parse_program(source))
        before = _behaviour(module)
        vectorized = sum(vectorize_loops(fn) for fn in module.functions.values())
        verify_module(module)
        assert vectorized >= 1
        from repro.ir.instructions import VecBinOp

        assert any(isinstance(i, VecBinOp) for i in module.function("main").instructions())
        assert _behaviour(module) == before

    def test_if_conversion_creates_select(self):
        source = "int main() { int x = read_int(); int y; if (x > 3) y = 10; else y = 20; return y; }"
        module = build_module(parse_program(source))
        reference = link_module(module.clone(), name="t")
        converted = if_convert(module.function("main"))
        verify_module(module)
        assert converted == 1
        from repro.ir.instructions import Select

        assert any(isinstance(i, Select) for i in module.function("main").instructions())
        converted_image = link_module(module.clone(), name="t")
        for x in (0, 3, 4, 100):
            assert run_program(reference, inputs=[x]).return_value == run_program(converted_image, inputs=[x]).return_value

    def test_builtin_expansion_of_strcpy(self):
        source = 'int b[16]; int main() { strcpy(b, "hey"); print_str(b); return strlen("hey"); }'
        module = build_module(parse_program(source))
        before = _behaviour(module)
        assert expand_builtins(module) >= 1
        from repro.ir.instructions import Call

        remaining = [i.callee for i in module.function("main").instructions() if isinstance(i, Call)]
        assert "strcpy" not in remaining
        assert _behaviour(module) == before

    def test_merge_constants_dedupes_strings(self):
        source = 'int a[8]; int b[8]; int main() { strcpy(a, "zz"); strcpy(b, "zz"); return strcmp(a, b); }'
        module = build_module(parse_program(source))
        # Force two identical const globals to exercise merging.
        from repro.ir.function import GlobalData

        module.add_global(GlobalData("dup1", 2, [7, 0], is_const=True))
        module.add_global(GlobalData("dup2", 2, [7, 0], is_const=True))
        before = _behaviour(module)
        assert merge_constants(module) >= 1
        assert _behaviour(module) == before


class TestFlagsAndPassManager:
    def test_registries_have_large_flag_spaces(self):
        assert len(build_gcc_registry()) >= 50
        assert len(build_llvm_registry()) >= 45

    def test_o3_is_less_than_half_of_flag_space(self):
        for registry in (build_gcc_registry(), build_llvm_registry()):
            assert len(registry.preset("O3")) / len(registry) < 0.75
            assert len(registry.preset("O3")) > len(registry.preset("O1"))

    def test_presets_satisfy_constraints(self):
        for registry in (build_gcc_registry(), build_llvm_registry()):
            engine = ConstraintEngine(registry)
            for level in registry.presets:
                assert engine.is_valid(registry.preset(level)), level

    def test_flag_vector_bits_roundtrip(self):
        registry = build_gcc_registry()
        vector = registry.preset("O2")
        assert FlagVector.from_bits(registry, vector.to_bits()).enabled == vector.enabled

    def test_unknown_flag_rejected(self):
        registry = build_llvm_registry()
        with pytest.raises(ValueError):
            FlagVector(registry, frozenset({"-not-a-flag"}))

    def test_jaccard_index(self):
        registry = build_gcc_registry()
        o2, o3 = registry.preset("O2"), registry.preset("O3")
        assert 0.0 < o2.jaccard(o3) < 1.0
        assert o3.jaccard(o3) == 1.0

    def test_pass_manager_plan_reflects_flags(self, llvm):
        manager = llvm.pass_manager
        plan = manager.plan(llvm.preset("O3"))
        assert "vectorize" in plan.ir_passes
        assert plan.codegen.regalloc
        plan0 = manager.plan(llvm.empty_flags())
        assert plan0.ir_passes == []
        assert not plan0.codegen.regalloc

    def test_pass_manager_records_statistics(self, llvm, sample_module):
        manager = PassManager(llvm.registry)
        optimized = manager.run(sample_module, llvm.preset("O2"))
        from repro.opt import optimization_report

        assert optimization_report(optimized)


class TestCompilerCorrectness:
    LEVELS = ("O0", "O1", "O2", "O3", "Os")

    def test_all_levels_preserve_behaviour_llvm(self, sample_images_llvm):
        reference = run_program(sample_images_llvm["O0"]).observable_state()
        for level in self.LEVELS:
            assert run_program(sample_images_llvm[level]).observable_state() == reference, level

    def test_all_levels_preserve_behaviour_gcc(self, sample_images_gcc):
        reference = run_program(sample_images_gcc["O0"]).observable_state()
        for level in self.LEVELS:
            assert run_program(sample_images_gcc[level]).observable_state() == reference, level

    def test_levels_produce_different_binaries(self, sample_images_llvm):
        hashes = {image.sha256() for image in sample_images_llvm.values()}
        assert len(hashes) >= 4

    def test_compilers_differ_from_each_other(self, sample_images_llvm, sample_images_gcc):
        assert sample_images_llvm["O2"].sha256() != sample_images_gcc["O2"].sha256()

    def test_obfuscator_preserves_behaviour(self, sample_source, sample_images_llvm):
        obfuscator = ObfuscatorLLVM()
        image = obfuscator.compile(sample_source, obfuscator.preset("O2"), name="sample").image
        assert run_program(image).observable_state() == run_program(sample_images_llvm["O0"]).observable_state()
        assert image.code_size() > sample_images_llvm["O2"].code_size()

    def test_compile_rejects_foreign_flag_vector(self, llvm, gcc, sample_source):
        from repro.compilers.base import CompilationError

        with pytest.raises(CompilationError):
            llvm.compile(sample_source, gcc.preset("O2"))

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_repaired_flag_vectors_preserve_behaviour(self, llvm, sample_source, seed):
        """The central soundness property behind BinTuner: any constraint-
        repaired point of the search space compiles to an equivalent binary."""
        rng = random.Random(seed)
        engine = ConstraintEngine(llvm.registry)
        bits = [1 if rng.random() < rng.uniform(0.2, 0.8) else 0 for _ in llvm.registry.flag_names()]
        flags = engine.sanitize_bits(bits)
        image = llvm.compile(sample_source, flags, name="sample").image
        reference = llvm.compile_level(sample_source, "O0", name="sample").image
        assert run_program(image).observable_state() == run_program(reference).observable_state()
