"""Tests for the campaign orchestration subsystem.

The load-bearing guarantees:

* a campaign interrupted (at program or generation granularity) and resumed
  from its checkpoint converges to a database identical — records, ordering,
  fingerprints — to an uninterrupted run, for serial and process-pool
  engines;
* sharded dedup never leaks one program's records into another's shard;
* the tuning-database JSON round-trip preserves ``started_at`` and tolerates
  unknown keys (checkpoints must survive schema growth);
* cross-program warm starts actually inject earlier bests into later
  programs' initial populations, deterministically;
* a campaign restarted in a fresh process with the same ``--store-dir``
  performs zero redundant compiles for previously seen configurations and
  converges to a database fingerprint identical to an uninterrupted run,
  on the serial, process, and distributed executors.
"""

from __future__ import annotations

import json
import threading

import pytest
from _helpers import fresh_process_state, loopback_available

from repro.campaign import (
    Campaign,
    CampaignConfig,
    CampaignDatabase,
    ProgramJob,
    SharedWorkerPool,
)
from repro.campaign.campaign import STORE_DIR
from repro.tuner import (
    BinTuner,
    BinTunerConfig,
    BuildSpec,
    GAParameters,
    IterationRecord,
    SerialMapper,
    TuningDatabase,
)

#: Two small but distinct programs; different sources guarantee different
#: fingerprints for identical flag keys, which the leak test relies on.
TINY_A = """
int acc[16];
int work(int n) { int i; int s = 0; for (i = 0; i < n; i++) { acc[i % 16] = i * 3; s += acc[i % 16]; } return s; }
int main() { int s = work(40); print_int(s); return s % 101; }
"""

TINY_B = """
int grid[24];
int mix(int n) { int i; int s = 1; for (i = 1; i < n; i++) { grid[i % 24] = s ^ (i * 5); s += grid[i % 24] % 7; } return s; }
int pick(int x) { switch (x) { case 0: return 3; case 1: return 11; default: return 2; } }
int main() { int s = mix(30); int i; for (i = 0; i < 5; i++) s += pick(i % 3); print_int(s); return s % 97; }
"""

SOURCES = {"tiny-a": TINY_A, "tiny-b": TINY_B}

JOBS = [ProgramJob("llvm", "tiny-a"), ProgramJob("llvm", "tiny-b")]


def tiny_spec(job: ProgramJob) -> BuildSpec:
    return BuildSpec(name=job.program, source=SOURCES[job.program])


def tiny_config(checkpoint_dir=None, workers=1, warm_start=True, **config_kwargs) -> CampaignConfig:
    return CampaignConfig(
        tuner=BinTunerConfig(
            max_iterations=16, ga=GAParameters(population_size=6, seed=9), stall_window=12
        ),
        executor="process" if workers > 1 else "serial",
        workers=workers,
        warm_start=warm_start,
        checkpoint_dir=checkpoint_dir,
        **config_kwargs,
    )


def run_campaign(checkpoint_dir=None, workers=1, warm_start=True,
                 compiler_provider=None, config_kwargs=None, **run_kwargs):
    campaign = Campaign(
        JOBS,
        tiny_config(checkpoint_dir, workers, warm_start, **(config_kwargs or {})),
        spec_provider=tiny_spec,
        **({"compiler_provider": compiler_provider} if compiler_provider else {}),
    )
    return campaign.run(**run_kwargs)


class TestDatabaseRoundTrip:
    def _database(self) -> TuningDatabase:
        db = TuningDatabase(program="p", compiler="llvm")
        db.record(IterationRecord(iteration=1, flags=("-dce",), fitness=0.4,
                                  code_size=10, fingerprint="fp1", elapsed_seconds=0.5))
        return db

    def test_started_at_survives(self, tmp_path):
        db = self._database()
        db.started_at = 123456.75
        db.save(tmp_path / "db.json")
        restored = TuningDatabase.load(tmp_path / "db.json")
        assert restored.started_at == 123456.75

    def test_unknown_keys_are_tolerated(self, tmp_path):
        """A checkpoint written by a future schema must still load."""
        db = self._database()
        path = tmp_path / "db.json"
        db.save(path)
        payload = json.loads(path.read_text())
        payload["future_top_level_field"] = {"nested": True}
        payload["records"][0]["future_record_field"] = 42
        path.write_text(json.dumps(payload))
        restored = TuningDatabase.load(path)
        assert len(restored) == 1
        assert restored.records[0].fitness == 0.4
        assert restored.lookup(("-dce",)) is not None

    def test_round_trip_preserves_lookup_and_order(self, tmp_path):
        db = self._database()
        db.record(IterationRecord(iteration=2, flags=("-adce", "-dce"), fitness=0.9,
                                  code_size=12, fingerprint="fp2", elapsed_seconds=0.1,
                                  generation=1, valid=True))
        db.save(tmp_path / "db.json")
        restored = TuningDatabase.load(tmp_path / "db.json")
        assert [r.flags for r in restored.records] == [r.flags for r in db.records]
        assert restored.lookup(("-dce", "-adce")).fitness == 0.9


class TestCampaignDatabase:
    def test_shards_are_isolated(self):
        db = CampaignDatabase()
        db.shard("llvm", "a").record(
            IterationRecord(iteration=1, flags=("-dce",), fitness=0.5,
                            code_size=1, fingerprint="fa", elapsed_seconds=0.0))
        assert db.shard("llvm", "b").lookup(("-dce",)) is None
        assert db.shard("gcc", "a").lookup(("-dce",)) is None
        assert len(db.shard("llvm", "a")) == 1

    def test_save_load_fingerprint_stable(self, tmp_path):
        result = run_campaign()
        result.database.save(tmp_path / "db")
        restored = CampaignDatabase.load(tmp_path / "db")
        assert restored.fingerprint() == result.database.fingerprint()
        assert restored.record_signatures() == result.database.record_signatures()

    def test_aggregates(self):
        result = run_campaign()
        frequency = result.database.flag_frequency("llvm")
        assert frequency, "expected non-empty flag frequency"
        assert all(0.0 < share <= 1.0 for share in frequency.values())
        overlap = result.database.best_overlap("llvm")
        value = overlap[("llvm", "tiny-a")][("llvm", "tiny-b")]
        assert 0.0 <= value <= 1.0
        rows = result.database.summary_rows()
        assert {row["benchmark"] for row in rows} == {"tiny-a", "tiny-b"}


class TestCampaignRun:
    def test_every_job_produces_a_result(self):
        result = run_campaign()
        assert [p.job for p in result.programs] == JOBS
        assert all(p.best_fitness > 0.0 for p in result.programs)
        assert all(p.best_image is not None for p in result.programs)
        assert not result.interrupted

    def test_no_leak_between_shards(self):
        """Per-shard records equal what a solo run of that program produces:
        dedup shares nothing across programs (same flags, same search seed,
        but each program's fingerprints are its own)."""
        result = run_campaign(warm_start=False)
        for job in JOBS:
            solo = BinTuner(
                Campaign([job], spec_provider=tiny_spec).compiler_provider(job.family),
                tiny_spec(job),
                tiny_config().tuner,
            ).run()
            shard = result.database.shard(job.family, job.program)
            assert [(r.flags, r.fitness, r.fingerprint) for r in shard.records] == [
                (r.flags, r.fitness, r.fingerprint) for r in solo.database.records
            ]

    def test_duplicate_jobs_rejected(self):
        with pytest.raises(ValueError):
            Campaign([JOBS[0], JOBS[0]])

    def test_warm_start_seeds_later_programs(self):
        result = run_campaign()
        first, second = result.programs
        assert first.warm_start == ()
        assert second.warm_start == (first.best_flags,)
        # The seeded individual was actually evaluated in generation 0
        # (repair is a no-op on an already-valid best vector).
        generation0 = [r.flags for r in
                       result.database.shard("llvm", "tiny-b").records if r.generation == 0]
        assert first.best_flags in generation0

    def test_warm_start_campaigns_are_reproducible(self):
        assert run_campaign().fingerprint() == run_campaign().fingerprint()

    def test_warm_seeds_survive_small_populations(self):
        """Seeds outrank trailing presets when presets + seeds overflow the
        population, instead of being silently truncated away."""
        from repro.opt.flags import FlagVector, build_gcc_registry
        from repro.tuner import ConstraintEngine, GAParameters, GeneticAlgorithm

        registry = build_gcc_registry()
        constraints = ConstraintEngine(registry)
        seed = constraints.repair(registry.preset("O2"))
        algorithm = GeneticAlgorithm(
            registry, constraints,
            GAParameters(population_size=len(registry.presets)),  # no free slots
            seeds=[seed],
        )
        population = algorithm._seed_population()
        assert len(population) == len(registry.presets)
        assert seed.sorted_names() in [vector.sorted_names() for vector in population]


class TestCheckpointResume:
    def _assert_identical(self, left, right):
        assert left.database.record_signatures() == right.database.record_signatures()
        assert left.fingerprint() == right.fingerprint()

    def test_program_level_resume_matches_uninterrupted(self, tmp_path):
        uninterrupted = run_campaign()
        first = run_campaign(checkpoint_dir=tmp_path / "ckpt", limit=1)
        assert first.interrupted and len(first.programs) == 1
        resumed = run_campaign(checkpoint_dir=tmp_path / "ckpt")
        assert resumed.programs[0].resumed and not resumed.programs[1].resumed
        self._assert_identical(resumed, uninterrupted)

    def test_generation_level_resume_matches_uninterrupted(self, tmp_path):
        """Kill mid-program: only generation 0 of the first shard survives on
        disk.  The resumed campaign replays the seeded search — everything
        checkpointed is a database hit — and converges bit-for-bit."""
        uninterrupted = run_campaign(checkpoint_dir=tmp_path / "full")
        ckpt = tmp_path / "cut"
        database_dir = ckpt / "database"
        db = CampaignDatabase.load(tmp_path / "full" / "database")
        shard = db.shard("llvm", "tiny-a")
        shard.records = [r for r in shard.records if r.generation == 0]
        shard._by_flags = {r.flag_key(): r for r in shard.records}
        cut = CampaignDatabase(name=db.name, shards={("llvm", "tiny-a"): shard})
        cut.save(database_dir)
        manifest = json.loads((tmp_path / "full" / "manifest.json").read_text())
        manifest["completed"] = []
        ckpt.mkdir(exist_ok=True)
        (ckpt / "manifest.json").write_text(json.dumps(manifest))
        resumed = run_campaign(checkpoint_dir=ckpt)
        self._assert_identical(resumed, uninterrupted)

    def test_resume_without_manifest_still_replays_generations(self, tmp_path):
        """A kill inside the *first* program can predate any manifest write;
        the checkpointed generations must still be loaded and replayed."""
        uninterrupted = run_campaign(checkpoint_dir=tmp_path / "full")
        ckpt = tmp_path / "cut"
        db = CampaignDatabase.load(tmp_path / "full" / "database")
        shard = db.shard("llvm", "tiny-a")
        shard.records = [r for r in shard.records if r.generation == 0]
        shard._by_flags = {r.flag_key(): r for r in shard.records}
        cut = CampaignDatabase(name=db.name, shards={("llvm", "tiny-a"): shard})
        cut.save(ckpt / "database")
        assert not (ckpt / "manifest.json").exists()
        resumed = run_campaign(checkpoint_dir=ckpt)
        self._assert_identical(resumed, uninterrupted)

    def test_resume_false_ignores_checkpoint(self, tmp_path):
        run_campaign(checkpoint_dir=tmp_path / "ckpt", limit=1)
        fresh = run_campaign(checkpoint_dir=tmp_path / "ckpt", resume=False)
        assert not any(p.resumed for p in fresh.programs)
        assert fresh.fingerprint() == run_campaign().fingerprint()

    def test_resume_false_discards_stale_checkpoint_upfront(self, tmp_path):
        """A fresh run must delete the old manifest *before* running: a fresh
        run killed early would otherwise leave a stale manifest pointing at
        overwritten shards, poisoning the next resume."""
        ckpt = tmp_path / "ckpt"
        run_campaign(checkpoint_dir=ckpt, limit=1)
        stale = json.loads((ckpt / "manifest.json").read_text())
        assert stale["completed"], "first run should have checkpointed a completion"
        interrupted_fresh = run_campaign(checkpoint_dir=ckpt, resume=False, limit=0)
        assert interrupted_fresh.interrupted and not interrupted_fresh.programs
        # The stale manifest and shards are gone; the fresh run rewrites an
        # empty manifest up front so the job-list guard applies immediately.
        fresh_manifest = json.loads((ckpt / "manifest.json").read_text())
        assert fresh_manifest["completed"] == []
        assert not (ckpt / "database").exists()

    def test_mismatched_job_list_rejected(self, tmp_path):
        run_campaign(checkpoint_dir=tmp_path / "ckpt", limit=1)
        other = Campaign(
            [ProgramJob("llvm", "tiny-b")],
            tiny_config(tmp_path / "ckpt"),
            spec_provider=tiny_spec,
        )
        with pytest.raises(ValueError):
            other.run()

    @pytest.mark.slow
    def test_four_worker_resume_matches_serial_uninterrupted(self, tmp_path):
        """The acceptance scenario: interrupted after the first program,
        resumed on a 4-worker shared pool, equal to the uninterrupted serial
        run — campaign checkpointing preserves PR 1's determinism guarantee
        across worker counts."""
        uninterrupted = run_campaign()
        first = run_campaign(checkpoint_dir=tmp_path / "ckpt", workers=4, limit=1)
        assert first.interrupted
        resumed = run_campaign(checkpoint_dir=tmp_path / "ckpt", workers=4)
        self._assert_identical(resumed, uninterrupted)


def counting_compiler_provider(log):
    """A compiler provider whose ``compile`` records every build it performs
    (the compile-count probe behind the zero-redundant-compiles assertions).
    Serial-executor only: the instance-level closure does not pickle."""
    from repro.compilers import SimLLVM

    def provider(family):
        assert family == "llvm"
        compiler = SimLLVM()
        original = compiler.compile

        def counting_compile(source, flags=None, name="program"):
            log.append((name, tuple(flags.sorted_names()) if flags is not None else ()))
            return original(source, flags, name=name)

        compiler.compile = counting_compile
        return compiler

    return provider


class TestStoreRestartWarmth:
    def test_store_defaults_under_checkpoint_dir(self, tmp_path):
        """``--checkpoint-dir`` implies ``checkpoint_dir/store``: checkpoint
        resume is warm by construction."""
        ckpt = tmp_path / "ckpt"
        campaign = Campaign(JOBS, tiny_config(ckpt), spec_provider=tiny_spec)
        assert campaign.store_dir == ckpt / STORE_DIR
        campaign.run()
        assert any((ckpt / STORE_DIR / "objects").iterdir())
        # No checkpointing, no store dir; monolithic never has one.
        assert Campaign(JOBS, tiny_config(), spec_provider=tiny_spec).store_dir is None
        assert Campaign(
            JOBS, tiny_config(ckpt, pipeline="monolithic"), spec_provider=tiny_spec
        ).store_dir is None

    def test_fresh_process_restart_compiles_nothing(self, tmp_path):
        """The headline: restart the whole campaign in a 'fresh process'
        with the same store — zero compiles (baselines included), identical
        fingerprint."""
        fresh_process_state()
        cold = run_campaign(checkpoint_dir=tmp_path / "cold-ckpt")
        fresh_process_state()
        compiles = []
        restarted = run_campaign(
            checkpoint_dir=tmp_path / "restart-ckpt",
            config_kwargs={"store_dir": tmp_path / "cold-ckpt" / STORE_DIR},
            compiler_provider=counting_compiler_provider(compiles),
        )
        assert restarted.fingerprint() == cold.fingerprint()
        assert compiles == []
        stats = restarted.evaluation_stats()
        assert stats.evaluated == cold.evaluation_stats().evaluated
        assert stats.artifact_misses == 0
        assert stats.artifact_store_hits > 0

    def test_generation_level_restart_replays_from_disk(self, tmp_path):
        """Kill mid-program: the lost generations are re-*evaluated* on
        resume (they are not in the checkpointed shard), but with the store
        they are never re-*compiled* — and the database still converges
        bit-for-bit to the uninterrupted run's."""
        fresh_process_state()
        uninterrupted = run_campaign(checkpoint_dir=tmp_path / "full")
        ckpt = tmp_path / "cut"
        db = CampaignDatabase.load(tmp_path / "full" / "database")
        shard = db.shard("llvm", "tiny-a")
        shard.records = [r for r in shard.records if r.generation == 0]
        shard._by_flags = {r.flag_key(): r for r in shard.records}
        cut = CampaignDatabase(name=db.name, shards={("llvm", "tiny-a"): shard})
        cut.save(ckpt / "database")
        manifest = json.loads((tmp_path / "full" / "manifest.json").read_text())
        manifest["completed"] = []
        ckpt.mkdir(exist_ok=True)
        (ckpt / "manifest.json").write_text(json.dumps(manifest))
        fresh_process_state()
        compiles = []
        resumed = run_campaign(
            checkpoint_dir=ckpt,
            config_kwargs={"store_dir": tmp_path / "full" / STORE_DIR},
            compiler_provider=counting_compiler_provider(compiles),
        )
        assert resumed.fingerprint() == uninterrupted.fingerprint()
        assert resumed.database.record_signatures() == (
            uninterrupted.database.record_signatures()
        )
        assert compiles == []  # every replayed candidate came from the store

    def test_fresh_run_keeps_the_store(self, tmp_path):
        """``resume=False`` discards the checkpoint but not the store:
        content addressing makes stale entries harmless, so a fresh run
        merely starts warm."""
        fresh_process_state()
        ckpt = tmp_path / "ckpt"
        run_campaign(checkpoint_dir=ckpt)
        fresh_process_state()
        compiles = []
        fresh = run_campaign(
            checkpoint_dir=ckpt,
            resume=False,
            compiler_provider=counting_compiler_provider(compiles),
        )
        assert not any(program.resumed for program in fresh.programs)
        assert compiles == []  # the store made the fresh run free anyway

    @pytest.mark.slow
    @pytest.mark.parametrize("dispatch", ["serial", "process", "distributed"])
    def test_restarted_campaign_is_warm_on_every_executor(self, tmp_path, dispatch):
        """The acceptance criterion, per executor: a campaign restarted in a
        fresh process with the same store performs zero redundant compiles
        and lands on the identical database fingerprint."""
        if dispatch == "distributed" and not loopback_available():
            pytest.skip("no AF_INET loopback in this sandbox")
        store = tmp_path / "store"

        def run(checkpoint_dir):
            workers = 4 if dispatch == "process" else 1
            config_kwargs = {"store_dir": store}
            pool = None
            threads = []
            if dispatch == "distributed":
                from repro.distrib.worker import serve

                config_kwargs["dispatch"] = "distributed"
                pool = SharedWorkerPool(dispatch="distributed")
                threads = [
                    threading.Thread(
                        target=serve,
                        kwargs=dict(connect=pool.address_string(), hard_exit=False,
                                    slots=2, heartbeat_interval=0.5),
                        daemon=True,
                    )
                    for _ in range(2)
                ]
                for thread in threads:
                    thread.start()
                pool.wait_for_workers(2, timeout=10)
            try:
                return run_campaign(
                    checkpoint_dir=checkpoint_dir, workers=workers,
                    config_kwargs=config_kwargs, pool=pool,
                )
            finally:
                if pool is not None:
                    pool.close()

        fresh_process_state()
        cold = run(tmp_path / "cold-ckpt")
        fresh_process_state()
        restarted = run(tmp_path / "restart-ckpt")
        assert restarted.fingerprint() == cold.fingerprint()
        stats = restarted.evaluation_stats()
        assert stats.evaluated == cold.evaluation_stats().evaluated
        assert stats.artifact_misses == 0  # zero redundant compiles/emulations
        assert stats.artifact_store_hits > 0


class TestSharedWorkerPool:
    def test_serial_pool_hands_out_serial_mappers(self):
        pool = SharedWorkerPool("serial", 1)
        mapper = pool.mapper(lambda key: key)
        assert isinstance(mapper, SerialMapper)
        pool.close()

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            SharedWorkerPool("threads", 2)
        with pytest.raises(ValueError):
            SharedWorkerPool("serial", 0)

    @pytest.mark.slow
    def test_one_pool_serves_multiple_evaluators(self):
        """Two programs' evaluators share one process pool; results come back
        in submission order for each."""
        from repro.compilers import SimLLVM
        from repro.tuner import TunerCandidateEvaluator

        compiler = SimLLVM()
        with SharedWorkerPool("process", 2) as pool:
            mappers = {}
            for name, source in SOURCES.items():
                baseline = compiler.compile_level(source, "O0", name=name).image
                evaluator = TunerCandidateEvaluator(
                    compiler=compiler, source=source, name=name, baseline=baseline
                )
                mappers[name] = (pool.mapper(evaluator), evaluator)
            keys = [tuple(compiler.preset(level).sorted_names()) for level in ("O1", "O2")]
            for name, (mapper, evaluator) in mappers.items():
                pooled = mapper.map(keys)
                local = [evaluator(key) for key in keys]
                assert [r.fitness for r in pooled] == [r.fitness for r in local]
                assert [r.fingerprint for r in pooled] == [r.fingerprint for r in local]


class TestCampaignCLI:
    def test_cli_runs_and_resumes(self, tmp_path, capsys):
        from repro.campaign.cli import main

        args = [
            "--benchmarks", "462.libquantum,429.mcf",
            "--families", "llvm",
            "--max-iterations", "10",
            "--population", "6",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--json", str(tmp_path / "summary.json"),
        ]
        assert main(args + ["--limit", "1"]) == 0
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "resumed" in out and "database fingerprint" in out
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert len(summary["summary"]) == 2
        assert not summary["interrupted"]

    def test_cli_rejects_empty_selection(self, capsys):
        from repro.campaign.cli import main

        assert main(["--families", ""]) == 2

    def test_cli_fresh_restart_is_served_by_the_store(self, tmp_path, capsys):
        """``--fresh`` re-runs everything, but the artifact store under the
        checkpoint dir makes the restart warm: the CLI reports tier-2 hits
        and both runs agree on the fingerprint."""
        from repro.campaign.cli import main

        args = [
            "--benchmarks", "462.libquantum",
            "--families", "llvm",
            "--max-iterations", "10",
            "--population", "6",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
        ]
        fresh_process_state()
        assert main(args + ["--json", str(tmp_path / "cold.json")]) == 0
        assert any((tmp_path / "ckpt" / STORE_DIR / "objects").iterdir())
        capsys.readouterr()
        fresh_process_state()
        assert main(args + ["--fresh", "--json", str(tmp_path / "warm.json")]) == 0
        out = capsys.readouterr().out
        assert "tier-2 (disk) hits" in out and "artifact store" in out
        cold = json.loads((tmp_path / "cold.json").read_text())
        warm = json.loads((tmp_path / "warm.json").read_text())
        assert warm["fingerprint"] == cold["fingerprint"]
        assert warm["evaluation"]["artifact_store_hits"] > 0
        assert warm["evaluation"]["artifact_misses"] == 0

    def test_report_subcommand_regenerates_tables(self, tmp_path, capsys):
        """``report`` rebuilds summary/potency/overlap from checkpoints
        alone — same fingerprint as the run that wrote them, no re-tuning."""
        from repro.campaign.cli import main

        assert main([
            "--benchmarks", "462.libquantum,429.mcf",
            "--families", "llvm",
            "--max-iterations", "10",
            "--population", "6",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "--json", str(tmp_path / "run.json"),
        ]) == 0
        capsys.readouterr()
        assert main([
            "report", str(tmp_path / "ckpt"), "--json", str(tmp_path / "report.json"),
        ]) == 0
        out = capsys.readouterr().out
        assert "per-flag potency" in out and "best-config overlap" in out
        run_payload = json.loads((tmp_path / "run.json").read_text())
        report_payload = json.loads((tmp_path / "report.json").read_text())
        assert report_payload["fingerprint"] == run_payload["fingerprint"]
        assert len(report_payload["summary"]) == 2
        assert report_payload["flag_frequency"]["llvm"]
        assert len(report_payload["best_overlap"]) == 1  # one unordered pair

    def test_report_subcommand_rejects_missing_checkpoint(self, tmp_path, capsys):
        from repro.campaign.cli import main

        assert main(["report", str(tmp_path / "nowhere")]) == 2
