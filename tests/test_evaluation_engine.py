"""Tests for the generation-batched evaluation engine and the cached NCD
fitness: batch dedup, submission-order recording, serial/process-pool
equivalence, and exact agreement between cached and uncached NCD."""

from __future__ import annotations

import pickle

import pytest

from repro.backend.binary import BinaryImage, Section
from repro.difftools import CachedNCDFitness, NCDFitness
from repro.opt.flags import FlagVector, build_gcc_registry
from repro.tuner import (
    BinTuner,
    BinTunerConfig,
    BuildSpec,
    CandidateResult,
    EvaluationEngine,
    GAParameters,
    TunerCandidateEvaluator,
    TuningDatabase,
)

TINY_SOURCE = """
int acc[16];
int work(int n) { int i; int s = 0; for (i = 0; i < n; i++) { acc[i % 16] = i * 3; s += acc[i % 16]; } return s; }
int pick(int x) { switch (x) { case 0: return 5; case 1: return 9; case 2: return 13; default: return 1; } }
int main() { int s = work(40); int i; for (i = 0; i < 6; i++) s += pick(i % 4); print_int(s); return s % 101; }
"""


class _ExplodingEvaluator:
    """Simulates a programming error inside a worker (must be picklable)."""

    def __call__(self, key):
        raise TypeError("injected bug")


class _CountingEvaluator:
    """Fake candidate evaluator: deterministic score, call counting."""

    def __init__(self):
        self.calls = []

    def __call__(self, key):
        self.calls.append(key)
        return CandidateResult(
            fitness=float(len(key)),
            code_size=10 * len(key),
            fingerprint=f"fp-{len(key)}",
            valid=True,
            elapsed_seconds=0.001,
        )


@pytest.fixture
def registry():
    return build_gcc_registry()


@pytest.fixture
def vectors(registry):
    names = registry.flag_names()
    return [FlagVector(registry, frozenset(names[:i])) for i in range(1, 6)]


class TestEvaluationEngine:
    def test_scores_align_with_batch_order(self, vectors):
        evaluator = _CountingEvaluator()
        engine = EvaluationEngine(evaluator)
        scores = engine.evaluate_batch(vectors)
        assert scores == [float(len(v)) for v in vectors]

    def test_intra_batch_duplicates_evaluated_once(self, vectors):
        evaluator = _CountingEvaluator()
        engine = EvaluationEngine(evaluator)
        batch = [vectors[0], vectors[1], vectors[0], vectors[1], vectors[0]]
        scores = engine.evaluate_batch(batch)
        assert len(evaluator.calls) == 2
        assert scores[0] == scores[2] == scores[4]
        assert scores[1] == scores[3]
        assert engine.stats.intra_batch_hits == 3
        assert engine.stats.evaluated == 2

    def test_database_fingerprints_never_reevaluated(self, vectors):
        """A flag key already in the TuningDatabase is never recompiled."""
        evaluator = _CountingEvaluator()
        engine = EvaluationEngine(evaluator)
        engine.evaluate_batch(vectors[:3])
        calls_before = len(evaluator.calls)
        scores = engine.evaluate_batch(vectors)  # first three are warm
        assert len(evaluator.calls) == calls_before + 2
        assert engine.stats.database_hits == 3
        assert scores[:3] == [float(len(v)) for v in vectors[:3]]

    def test_prewarmed_database_is_respected(self, vectors):
        """Dedup extends to records made before the engine existed."""
        evaluator = _CountingEvaluator()
        database = TuningDatabase()
        EvaluationEngine(_CountingEvaluator(), database=database).evaluate_batch(vectors)
        engine = EvaluationEngine(evaluator, database=database)
        engine.evaluate_batch(vectors)
        assert evaluator.calls == []
        assert engine.stats.database_hits == len(vectors)

    def test_records_in_submission_order_with_generations(self, vectors):
        engine = EvaluationEngine(_CountingEvaluator())
        engine.evaluate_batch([vectors[2], vectors[0]])
        engine.evaluate_batch([vectors[1]])
        records = engine.database.records
        assert [r.iteration for r in records] == [1, 2, 3]
        assert [r.flags for r in records] == [
            tuple(vectors[2].sorted_names()),
            tuple(vectors[0].sorted_names()),
            tuple(vectors[1].sorted_names()),
        ]
        assert [r.generation for r in records] == [0, 0, 1]

    def test_duplicate_of_database_hit_counts_as_intra_batch(self, vectors):
        evaluator = _CountingEvaluator()
        engine = EvaluationEngine(evaluator)
        engine.evaluate_batch([vectors[0]])
        engine.evaluate_batch([vectors[0], vectors[0], vectors[0]])
        assert engine.stats.database_hits == 1  # one lookup per batch, not three
        assert engine.stats.intra_batch_hits == 2
        assert len(evaluator.calls) == 1

    def test_single_evaluate_is_a_batch_of_one(self, vectors):
        engine = EvaluationEngine(_CountingEvaluator())
        score = engine.evaluate(vectors[3])
        assert score == float(len(vectors[3]))
        assert len(engine.database) == 1


class TestTunerCandidateEvaluator:
    @pytest.fixture(scope="class")
    def evaluator(self, llvm):
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        return TunerCandidateEvaluator(
            compiler=llvm,
            source=TINY_SOURCE,
            name="tiny",
            baseline=baseline,
        )

    def test_valid_candidate_scores_positive(self, llvm, evaluator):
        result = evaluator(tuple(llvm.preset("O2").sorted_names()))
        assert result.valid and result.fitness > 0.0
        assert result.fingerprint != "invalid"

    def test_conflicting_flags_score_penalty(self, evaluator):
        result = evaluator(("-fpartial-inlining",))  # missing prerequisite
        assert not result.valid
        assert result.fitness == evaluator.invalid_fitness
        assert result.fingerprint == "invalid"

    def test_survives_pickling(self, llvm, evaluator):
        clone = pickle.loads(pickle.dumps(evaluator))
        key = tuple(llvm.preset("O1").sorted_names())
        assert clone(key).fitness == evaluator(key).fitness

    def test_programming_errors_propagate(self, llvm, monkeypatch):
        baseline = llvm.compile_level(TINY_SOURCE, "O0", name="tiny").image
        evaluator = TunerCandidateEvaluator(
            compiler=llvm, source=TINY_SOURCE, name="tiny", baseline=baseline
        )

        def broken_compile(*args, **kwargs):
            raise TypeError("injected bug")

        monkeypatch.setattr(evaluator.compiler, "compile", broken_compile)
        with pytest.raises(TypeError):
            evaluator(tuple(llvm.preset("O1").sorted_names()))


class TestCachedNCDFitness:
    @pytest.mark.parametrize("compressor", ["lzma", "zlib", "bz2"])
    def test_matches_uncached_ncd_exactly(self, sample_images_llvm, compressor):
        baseline = sample_images_llvm["O0"]
        plain = NCDFitness(baseline, compressor=compressor)
        cached = CachedNCDFitness(baseline, compressor=compressor)
        for level in ("O0", "O1", "O2", "O3", "Os"):
            candidate = sample_images_llvm[level]
            assert cached(candidate) == plain(candidate)
            assert cached(candidate) == plain(candidate)  # warm path too

    @pytest.mark.parametrize("compressor", ["lzma", "zlib", "bz2"])
    def test_empty_text_sections(self, compressor):
        empty = BinaryImage(name="empty", sections={".text": Section(".text", b"")})
        nonempty = BinaryImage(name="x", sections={".text": Section(".text", b"\x90" * 64)})
        for baseline, candidate in [
            (empty, empty),
            (empty, nonempty),
            (nonempty, empty),
        ]:
            plain = NCDFitness(baseline, compressor=compressor)
            cached = CachedNCDFitness(baseline, compressor=compressor)
            assert cached(candidate) == plain(candidate)

    def test_cache_hits_are_counted_and_bounded(self, sample_images_llvm):
        cached = CachedNCDFitness(sample_images_llvm["O0"], max_entries=2)
        # O3 evicts O1 (LRU), so the fourth call re-misses; the fifth hits.
        for level in ("O1", "O2", "O3", "O1", "O1"):
            cached(sample_images_llvm[level])
        assert cached.hits == 1 and cached.misses == 4
        assert 0.0 < cached.cache_hit_ratio < 1.0
        assert len(cached._cache) <= 2

    def test_eviction_preserves_values(self, sample_images_llvm):
        baseline = sample_images_llvm["O0"]
        plain = NCDFitness(baseline)
        cached = CachedNCDFitness(baseline, max_entries=1)
        for level in ("O1", "O2", "O1", "O2"):  # every call evicts the other
            assert cached(sample_images_llvm[level]) == plain(sample_images_llvm[level])

    def test_unknown_compressor_rejected(self, sample_images_llvm):
        with pytest.raises(ValueError):
            CachedNCDFitness(sample_images_llvm["O0"], compressor="zstd")

    def test_survives_pickling(self, sample_images_llvm):
        cached = CachedNCDFitness(sample_images_llvm["O0"])
        value = cached(sample_images_llvm["O3"])
        clone = pickle.loads(pickle.dumps(cached))
        assert clone(sample_images_llvm["O3"]) == value
        assert clone.hits == 0 and clone.misses == 1  # cache state is per-process


def _tune(llvm, strategy, executor, workers, max_iterations=16):
    spec = BuildSpec(name="tiny", source=TINY_SOURCE)
    config = BinTunerConfig(
        max_iterations=max_iterations,
        ga=GAParameters(population_size=6, seed=9),
        stall_window=12,
        search_strategy=strategy,
        executor=executor,
        workers=workers,
    )
    tuner = BinTuner(llvm, spec, config)
    try:
        return tuner.run()
    finally:
        tuner.close()


class TestSerialParallelEquivalence:
    """Same seed => identical results regardless of worker count."""

    def test_result_stats_are_per_run(self, llvm):
        spec = BuildSpec(name="tiny", source=TINY_SOURCE)
        config = BinTunerConfig(
            max_iterations=12, ga=GAParameters(population_size=6, seed=9), stall_window=8
        )
        tuner = BinTuner(llvm, spec, config)
        first = tuner.run()
        second = tuner.run()  # warm database: everything is a cache hit
        assert first.evaluation_stats.evaluated > 0
        # The identical seeded search replays against a warm database ...
        assert second.evaluation_stats.requested == first.evaluation_stats.requested
        assert second.evaluation_stats.evaluated == 0
        # ... and the counters describe this run only, not the engine lifetime.
        assert second.evaluation_stats.cache_hits == second.evaluation_stats.requested

    @pytest.mark.parametrize("strategy", ["genetic", "hillclimb", "random"])
    def test_serial_runs_are_reproducible(self, llvm, strategy):
        first = _tune(llvm, strategy, "serial", 1)
        second = _tune(llvm, strategy, "serial", 1)
        assert first.best_flags.sorted_names() == second.best_flags.sorted_names()
        assert first.ncd_history() == second.ncd_history()

    @pytest.mark.slow
    @pytest.mark.parametrize("strategy", ["genetic", "hillclimb", "random"])
    def test_four_workers_match_serial(self, llvm, strategy):
        serial = _tune(llvm, strategy, "serial", 1)
        parallel = _tune(llvm, strategy, "process", 4)
        assert serial.best_flags.sorted_names() == parallel.best_flags.sorted_names()
        assert serial.best_fitness == parallel.best_fitness
        assert serial.ncd_history() == parallel.ncd_history()
        assert [r.flags for r in serial.database.records] == [
            r.flags for r in parallel.database.records
        ]

    @pytest.mark.slow
    def test_worker_pool_propagates_programming_errors(self, registry):
        engine = EvaluationEngine(_ExplodingEvaluator(), executor="process", workers=2)
        try:
            with pytest.raises(TypeError):
                engine.evaluate(FlagVector(registry, frozenset()))
        finally:
            engine.close()
