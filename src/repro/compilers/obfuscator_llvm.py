"""Obfuscator-LLVM: the compiler-level obfuscator compared against in Fig. 8(b).

The three published O-LLVM schemes are implemented as post-pipeline IR passes:

* **instruction substitution** (``-mllvm -sub``): rewrites arithmetic into
  equivalent but longer sequences (``a + b`` -> ``a - (-b)``,
  ``a ^ b`` -> ``(a | b) - (a & b)``, ...);
* **bogus control flow** (``-mllvm -bcf``): wraps blocks in opaque predicates
  that always evaluate true but add fake branches and dead blocks;
* **control-flow flattening** (``-mllvm -fla``): approximated by forcing every
  straight-line region into a dispatch-like layout via aggressive block
  splitting and reordering.

All transformations are function-local, which is exactly why the paper finds
BinTuner (whose inter-procedural flags hide call structure) more potent.
"""

from __future__ import annotations

import random
from typing import List

from repro.compilers.llvm import SimLLVM
from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import BinOp, Branch, Jump, Move, UnOp
from repro.ir.values import ConstInt, Temp
from repro.opt.flags import FlagVector


class ObfuscatorLLVM(SimLLVM):
    """SimLLVM plus the three O-LLVM obfuscation schemes."""

    family = "llvm"
    version = "11.0-ollvm"

    def __init__(
        self,
        enable_substitution: bool = True,
        enable_bogus_cf: bool = True,
        enable_flattening: bool = True,
        seed: int = 7,
        verify_each_stage: bool = False,
    ) -> None:
        super().__init__(verify_each_stage=verify_each_stage)
        self.enable_substitution = enable_substitution
        self.enable_bogus_cf = enable_bogus_cf
        self.enable_flattening = enable_flattening
        self.seed = seed

    def _post_ir_passes(self, module: IRModule, flags: FlagVector) -> IRModule:
        rng = random.Random(self.seed)
        for function in module.functions.values():
            if self.enable_substitution:
                substitute_instructions(function, rng)
            if self.enable_bogus_cf:
                insert_bogus_control_flow(function, rng)
            if self.enable_flattening:
                flatten_layout(function, rng)
        return module


def substitute_instructions(function: IRFunction, rng: random.Random) -> int:
    """Instruction substitution: replace arithmetic with equivalent sequences."""
    rewritten = 0
    for block in function.blocks.values():
        new_instructions = []
        for instr in block.instructions:
            if isinstance(instr, BinOp) and instr.op in ("add", "sub", "xor") and rng.random() < 0.6:
                rewritten += 1
                if instr.op == "add":
                    # a + b  ==>  a - (-b)
                    negated = function.new_temp("ob")
                    new_instructions.append(UnOp(negated, "neg", instr.rhs))
                    new_instructions.append(BinOp(instr.dest, "sub", instr.lhs, negated))
                elif instr.op == "sub":
                    # a - b  ==>  a + (-b)
                    negated = function.new_temp("ob")
                    new_instructions.append(UnOp(negated, "neg", instr.rhs))
                    new_instructions.append(BinOp(instr.dest, "add", instr.lhs, negated))
                else:
                    # a ^ b  ==>  (a | b) - (a & b)
                    either = function.new_temp("ob")
                    both = function.new_temp("ob")
                    new_instructions.append(BinOp(either, "or", instr.lhs, instr.rhs))
                    new_instructions.append(BinOp(both, "and", instr.lhs, instr.rhs))
                    new_instructions.append(BinOp(instr.dest, "sub", either, both))
                continue
            new_instructions.append(instr)
        block.instructions = new_instructions
    return rewritten


def insert_bogus_control_flow(function: IRFunction, rng: random.Random, probability: float = 0.4) -> int:
    """Wrap blocks in always-true opaque predicates with fake alternative blocks."""
    inserted = 0
    for label in list(function.blocks.keys()):
        if label == function.entry or rng.random() > probability:
            continue
        block = function.blocks[label]
        if len(block.instructions) < 2:
            continue
        # Split the block: the guard jumps to the real body through an opaque
        # predicate (x*(x+1) is always even => (x*(x+1)) % 2 == 0 is true).
        real_label = function.new_label(f"{label}.real")
        fake_label = function.new_label(f"{label}.fake")
        real_block = function.add_block(real_label)
        fake_block = function.add_block(fake_label)
        real_block.instructions = block.instructions
        # The fake block jumps back to the real one so it stays connected.
        fake_block.instructions = [Jump(real_label)]
        seed_temp = function.new_temp("op")
        plus_one = function.new_temp("op")
        product = function.new_temp("op")
        parity = function.new_temp("op")
        guard = function.new_temp("op")
        value = rng.randrange(3, 97)
        block.instructions = [
            Move(seed_temp, ConstInt(value)),
            BinOp(plus_one, "add", seed_temp, ConstInt(1)),
            BinOp(product, "mul", seed_temp, plus_one),
            BinOp(parity, "and", product, ConstInt(1)),
            BinOp(guard, "eq", parity, ConstInt(0)),
            Branch(guard, real_label, fake_label),
        ]
        inserted += 1
    return inserted


def flatten_layout(function: IRFunction, rng: random.Random) -> int:
    """Approximate control-flow flattening by shuffling the block layout."""
    labels = function.block_order()
    if len(labels) <= 2:
        return 0
    body = labels[1:]
    rng.shuffle(body)
    function.reorder_blocks([labels[0]] + body)
    return 1
