"""SimGCC: the GCC 10.2 personality."""

from __future__ import annotations

from repro.backend.codegen import CodegenOptions
from repro.compilers.base import Compiler
from repro.opt.flags import FlagRegistry, FlagVector, build_gcc_registry
from repro.opt.pass_manager import PassManager


class SimGCC(Compiler):
    """Simulated GCC 10.2.

    Personality traits relative to SimLLVM (so that the two compilers produce
    visibly different code from the same source, as real compilers do):

    * more eager full-loop unrolling and a larger small-function inline budget,
    * switches prefer binary search over jump tables unless ``-fjump-tables``
      (GCC's documented behaviour for sparse switches),
    * slightly denser jump-table heuristics.
    """

    family = "gcc"
    version = "10.2"

    def _build_registry(self) -> FlagRegistry:
        return build_gcc_registry()

    def _build_pass_manager(self, verify_each_stage: bool) -> PassManager:
        return PassManager(
            self.registry,
            inline_threshold=140,
            small_inline_threshold=40,
            unroll_full_threshold=10,
            unroll_factor=2,
            verify_each_stage=verify_each_stage,
        )

    def _personalize_codegen(self, options: CodegenOptions, flags: FlagVector) -> CodegenOptions:
        options.jump_table_min_cases = 5
        options.jump_table_max_holes = 2
        options.switch_binary_search = True
        return options
