"""Common compiler-driver machinery."""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.backend.binary import BinaryImage
from repro.backend.codegen import CodegenOptions
from repro.backend.linker import link_module
from repro.ir.builder import build_module
from repro.ir.function import IRModule
from repro.minic import ast_nodes as ast
from repro.minic.parser import ParseError, parse_program
from repro.minic.semantic import SemanticError, analyze
from repro.opt.flags import FlagRegistry, FlagVector
from repro.opt.pass_manager import PassManager


class CompilationError(Exception):
    """Raised when a program cannot be compiled (front-end or back-end)."""


@dataclass
class CompileResult:
    """The outcome of one compilation."""

    image: BinaryImage
    flags: FlagVector
    pass_statistics: Dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def code_size(self) -> int:
        return self.image.code_size()


class Compiler:
    """Base class: frontend + pass manager + backend, parameterized by flags."""

    #: Human-readable compiler family ("gcc" / "llvm").
    family: str = "generic"
    #: Version string used in provenance metadata.
    version: str = "1.0"

    def __init__(self, verify_each_stage: bool = False) -> None:
        self.registry: FlagRegistry = self._build_registry()
        self.pass_manager = self._build_pass_manager(verify_each_stage)
        self._frontend_cache: Dict[str, IRModule] = {}

    # -- hooks ----------------------------------------------------------------

    def _build_registry(self) -> FlagRegistry:
        raise NotImplementedError

    def _build_pass_manager(self, verify_each_stage: bool) -> PassManager:
        return PassManager(self.registry, verify_each_stage=verify_each_stage)

    def _personalize_codegen(self, options: CodegenOptions, flags: FlagVector) -> CodegenOptions:
        """Compiler-specific codegen tweaks (overridden by subclasses)."""
        return options

    def _post_ir_passes(self, module: IRModule, flags: FlagVector) -> IRModule:
        """Extra IR work after the standard pipeline (e.g. obfuscation)."""
        return module

    # -- flag helpers -----------------------------------------------------------

    def preset(self, level: str) -> FlagVector:
        """The flag vector of a default optimization level (``O0``..``Os``)."""
        return self.registry.preset(level)

    def empty_flags(self) -> FlagVector:
        return FlagVector(self.registry, frozenset())

    def flags_from_names(self, names) -> FlagVector:
        return FlagVector(self.registry, frozenset(names))

    # -- compilation -------------------------------------------------------------

    def frontend(self, source: Union[str, ast.Program], name: str = "program") -> IRModule:
        """Parse, analyze and lower a program to IR (cached per source text)."""
        if isinstance(source, ast.Program):
            program = source
        else:
            cache_key = hashlib.sha256(source.encode()).hexdigest()
            cached = self._frontend_cache.get(cache_key)
            if cached is not None:
                return cached.clone()
            try:
                program = parse_program(source, name=name)
            except ParseError as exc:
                raise CompilationError(f"parse error: {exc}") from exc
        try:
            info = analyze(program)
            module = build_module(program, info)
        except SemanticError as exc:
            raise CompilationError(f"semantic error: {exc}") from exc
        if isinstance(source, str):
            self._frontend_cache[hashlib.sha256(source.encode()).hexdigest()] = module.clone()
        return module

    def compile(
        self,
        source: Union[str, ast.Program, IRModule],
        flags: Optional[FlagVector] = None,
        name: str = "program",
    ) -> CompileResult:
        """Compile ``source`` with ``flags`` and return the linked image."""
        started = time.perf_counter()
        flags = flags if flags is not None else self.empty_flags()
        if flags.registry is not self.registry and flags.registry.compiler != self.registry.compiler:
            raise CompilationError(
                f"flag vector belongs to {flags.registry.compiler}, not {self.registry.compiler}"
            )
        if isinstance(source, IRModule):
            module = source.clone()
        else:
            module = self.frontend(source, name=name)
        optimized = self.pass_manager.run(module, flags, clone=False)
        optimized = self._post_ir_passes(optimized, flags)
        options = self._personalize_codegen(self.pass_manager.codegen_options(flags), flags)
        from repro.opt.pass_manager import optimization_report

        metadata = {
            "compiler_family": self.family,
            "compiler_version": self.version,
            "flag_count": str(len(flags)),
            "flag_hash": hashlib.sha256(" ".join(flags.sorted_names()).encode()).hexdigest()[:12],
        }
        try:
            image = link_module(optimized, options=options, name=name, metadata=metadata)
        except Exception as exc:
            raise CompilationError(f"backend error: {exc}") from exc
        return CompileResult(
            image=image,
            flags=flags,
            pass_statistics=optimization_report(optimized),
            elapsed_seconds=time.perf_counter() - started,
        )

    def compile_level(self, source, level: str, name: str = "program") -> CompileResult:
        """Compile at a default optimization level (``O0``, ``O1``, ..., ``Os``)."""
        return self.compile(source, self.preset(level), name=name)
