"""Compiler drivers.

A :class:`Compiler` bundles a flag registry, a pass manager configuration and
a codegen personality, and exposes a single ``compile(source | program,
flags)`` entry point that produces a linked :class:`BinaryImage`.  Two
personalities are provided — :class:`SimGCC` and :class:`SimLLVM` — mirroring
the two compilers the paper tunes, plus :class:`ObfuscatorLLVM`, the
compiler-level obfuscator used as a comparison point in Figure 8(b).
"""

from repro.compilers.base import Compiler, CompilationError, CompileResult
from repro.compilers.gcc import SimGCC
from repro.compilers.llvm import SimLLVM
from repro.compilers.obfuscator_llvm import ObfuscatorLLVM

__all__ = [
    "Compiler",
    "CompilationError",
    "CompileResult",
    "SimGCC",
    "SimLLVM",
    "ObfuscatorLLVM",
]
