"""SimLLVM: the LLVM/Clang 11.0 personality."""

from __future__ import annotations

from repro.backend.codegen import CodegenOptions
from repro.compilers.base import Compiler
from repro.opt.flags import FlagRegistry, FlagVector, build_llvm_registry
from repro.opt.pass_manager import PassManager


class SimLLVM(Compiler):
    """Simulated LLVM 11.0.

    Personality traits relative to SimGCC:

    * jump tables kick in for smaller/denser switches (LLVM's
      ``-switch-to-lookup`` behaviour),
    * a smaller small-function inline budget but more partial unrolling,
    * loop-header alignment is on whenever ``-falign-loops`` is enabled.
    """

    family = "llvm"
    version = "11.0"

    def _build_registry(self) -> FlagRegistry:
        return build_llvm_registry()

    def _build_pass_manager(self, verify_each_stage: bool) -> PassManager:
        return PassManager(
            self.registry,
            inline_threshold=110,
            small_inline_threshold=25,
            unroll_full_threshold=8,
            unroll_factor=4,
            verify_each_stage=verify_each_stage,
        )

    def _personalize_codegen(self, options: CodegenOptions, flags: FlagVector) -> CodegenOptions:
        options.jump_table_min_cases = 4
        options.jump_table_max_holes = 4
        options.switch_binary_search = True
        return options
