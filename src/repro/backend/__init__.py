"""Synthetic machine backend.

Lowers the IR to a compact, byte-encodable RISC-style instruction set (the
"SIM64" ISA), performs register allocation, lays out and links functions and
global data into a :class:`repro.backend.binary.BinaryImage`, and exposes the
encoding/decoding primitives used by the disassembler and the emulator.

The ISA deliberately mirrors the x86 idioms the paper cares about: short and
long immediate encodings (so ``-Os``-style choices change bytes), a
``SELECT`` conditional move (branch-free code, §3.1.2), vector load/store and
arithmetic (loop vectorization, §3.2), indirect jumps through in-image jump
tables (switch lowering, §3.1.3), and tail-call transfers (§3.1.1).
"""

from repro.backend.isa import (
    MachInstr,
    OPCODES,
    OPCODES_BY_NAME,
    encode_instruction,
    decode_instruction,
    decode_stream,
    BUILTIN_IDS,
    BUILTIN_NAMES,
    REG_NAMES,
    SP,
)
from repro.backend.binary import Section, Symbol, BinaryImage
from repro.backend.codegen import CodegenOptions, FunctionCode, generate_function
from repro.backend.regalloc import allocate_registers, RegisterAssignment
from repro.backend.linker import link_module, LinkError

__all__ = [
    "MachInstr",
    "OPCODES",
    "OPCODES_BY_NAME",
    "encode_instruction",
    "decode_instruction",
    "decode_stream",
    "BUILTIN_IDS",
    "BUILTIN_NAMES",
    "REG_NAMES",
    "SP",
    "Section",
    "Symbol",
    "BinaryImage",
    "CodegenOptions",
    "FunctionCode",
    "generate_function",
    "allocate_registers",
    "RegisterAssignment",
    "link_module",
    "LinkError",
]
