"""Binary image container: sections, symbols, serialization.

A :class:`BinaryImage` is the linker's output and the input to every binary
analysis tool in the repository (disassembler, diffing tools, scanners,
emulator).  It mimics a stripped-down ELF: a ``.text`` section of encoded
instructions, a ``.data`` section of initialized global words, a ``.rodata``
section holding jump tables, and a symbol table.

The symbol table carries *ground-truth* function boundaries.  Diffing tools do
not use symbol names to match functions (that would be cheating); names are
only used by the evaluation harness to compute Precision@1 against the ground
truth, exactly as the paper does with its compiled-from-source datasets.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Word address where global data starts in the emulator's memory.
GLOBAL_BASE = 0x1000
#: Word address of the top of the stack (stack grows down).
STACK_TOP = 0x100000
#: Word address where the bump allocator (malloc) starts.
HEAP_BASE = 0x80000


@dataclass
class Symbol:
    """A named object inside the image."""

    name: str
    section: str
    offset: int          # byte offset in .text, or word address for data
    size: int            # bytes for .text symbols, words for data symbols
    kind: str = "func"   # "func" | "object" | "table"
    is_static: bool = False


@dataclass
class Section:
    """A named byte blob."""

    name: str
    data: bytes = b""

    @property
    def size(self) -> int:
        return len(self.data)


@dataclass
class BinaryImage:
    """A linked program image."""

    name: str
    sections: Dict[str, Section] = field(default_factory=dict)
    symbols: List[Symbol] = field(default_factory=list)
    entry_point: int = 0
    #: Compiler provenance metadata (family, version, flag vector hash).  Real
    #: binaries carry comparable traces in .comment/.note sections; provenance
    #: *recovery* (repro.provenance) never reads this field — it is kept only
    #: as ground truth for evaluating the classifier.
    metadata: Dict[str, str] = field(default_factory=dict)

    # -- section helpers -----------------------------------------------------

    @property
    def text(self) -> bytes:
        return self.sections.get(".text", Section(".text")).data

    @property
    def data(self) -> bytes:
        return self.sections.get(".data", Section(".data")).data

    @property
    def rodata(self) -> bytes:
        return self.sections.get(".rodata", Section(".rodata")).data

    def set_section(self, name: str, data: bytes) -> None:
        self.sections[name] = Section(name, data)

    def code_size(self) -> int:
        return len(self.text)

    def total_size(self) -> int:
        return sum(section.size for section in self.sections.values())

    # -- symbol helpers ------------------------------------------------------

    def function_symbols(self) -> List[Symbol]:
        return [sym for sym in self.symbols if sym.kind == "func"]

    def data_symbols(self) -> List[Symbol]:
        return [sym for sym in self.symbols if sym.kind == "object"]

    def symbol(self, name: str) -> Symbol:
        for sym in self.symbols:
            if sym.name == name:
                return sym
        raise KeyError(name)

    def function_at(self, offset: int) -> Optional[Symbol]:
        """The function symbol containing the given .text byte offset."""
        for sym in self.function_symbols():
            if sym.offset <= offset < sym.offset + sym.size:
                return sym
        return None

    def function_bytes(self, name: str) -> bytes:
        sym = self.symbol(name)
        if sym.kind != "func":
            raise ValueError(f"{name!r} is not a function symbol")
        return self.text[sym.offset : sym.offset + sym.size]

    # -- data access for the emulator ---------------------------------------

    def initial_memory(self) -> Dict[int, int]:
        """Initial data memory image: word address -> word value."""
        memory: Dict[int, int] = {}
        words = len(self.data) // 8
        for index in range(words):
            value = struct.unpack_from("<q", self.data, index * 8)[0]
            memory[GLOBAL_BASE + index] = value
        return memory

    def jump_table(self, word_address: int, length: int) -> List[int]:
        """Read ``length`` code addresses from .rodata at a table address."""
        table_base = self._rodata_base_word()
        index = word_address - table_base
        out = []
        for position in range(index, index + length):
            out.append(struct.unpack_from("<q", self.rodata, position * 8)[0])
        return out

    def rodata_word(self, word_address: int) -> int:
        table_base = self._rodata_base_word()
        index = word_address - table_base
        return struct.unpack_from("<q", self.rodata, index * 8)[0]

    def _rodata_base_word(self) -> int:
        return int(self.metadata.get("rodata_base", GLOBAL_BASE + len(self.data) // 8))

    # -- identity ------------------------------------------------------------

    def sha256(self) -> str:
        digest = hashlib.sha256()
        for name in sorted(self.sections):
            digest.update(name.encode())
            digest.update(self.sections[name].data)
        return digest.hexdigest()

    def fingerprint(self) -> str:
        """Short content hash used by the tuner database."""
        return self.sha256()[:16]

    # -- (de)serialization ----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to a simple container format (header JSON + raw blobs)."""
        header = {
            "name": self.name,
            "entry_point": self.entry_point,
            "metadata": self.metadata,
            "sections": [
                {"name": s.name, "size": s.size} for s in self.sections.values()
            ],
            "symbols": [
                {
                    "name": sym.name,
                    "section": sym.section,
                    "offset": sym.offset,
                    "size": sym.size,
                    "kind": sym.kind,
                    "is_static": sym.is_static,
                }
                for sym in self.symbols
            ],
        }
        header_bytes = json.dumps(header, sort_keys=True).encode()
        blob = bytearray()
        blob += struct.pack("<I", len(header_bytes))
        blob += header_bytes
        for section in self.sections.values():
            blob += section.data
        return bytes(blob)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "BinaryImage":
        (header_len,) = struct.unpack_from("<I", raw, 0)
        header = json.loads(raw[4 : 4 + header_len].decode())
        image = cls(name=header["name"], entry_point=header["entry_point"])
        image.metadata = dict(header.get("metadata", {}))
        cursor = 4 + header_len
        for section_info in header["sections"]:
            size = section_info["size"]
            image.set_section(section_info["name"], raw[cursor : cursor + size])
            cursor += size
        for sym in header["symbols"]:
            image.symbols.append(
                Symbol(
                    name=sym["name"],
                    section=sym["section"],
                    offset=sym["offset"],
                    size=sym["size"],
                    kind=sym["kind"],
                    is_static=sym.get("is_static", False),
                )
            )
        return image
