"""Static linker: lays out function code and global data into a BinaryImage.

The linker performs the final address assignment:

* functions are placed sequentially in ``.text`` (honouring per-function
  alignment), and alignment padding requested for loop headers is inserted as
  ``nop`` bytes;
* global variables (and interned strings) are placed word-by-word in
  ``.data``; switch jump tables are placed in ``.rodata`` as arrays of
  absolute code addresses;
* every symbolic operand (branch label, callee, data symbol, jump table) is
  resolved and patched before instructions are encoded.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence

from repro.backend.binary import GLOBAL_BASE, BinaryImage, Symbol
from repro.backend.codegen import CodegenOptions, FunctionCode, generate_function
from repro.backend.isa import MachInstr, encode_instruction
from repro.ir.function import IRModule


class LinkError(Exception):
    """Raised when a symbol cannot be resolved during linking."""


def _align_up(value: int, alignment: int) -> int:
    if alignment <= 1:
        return value
    remainder = value % alignment
    return value if remainder == 0 else value + (alignment - remainder)


class _Layout:
    """Mutable state while laying out one link unit."""

    def __init__(self) -> None:
        self.function_offsets: Dict[str, int] = {}
        self.function_sizes: Dict[str, int] = {}
        # (function name, label) -> absolute byte offset
        self.label_offsets: Dict[tuple, int] = {}
        # per-function: instruction index -> absolute byte offset
        self.instruction_offsets: Dict[str, List[int]] = {}
        # per-function: instruction index -> padding nops inserted before it
        self.padding_before: Dict[str, Dict[int, int]] = {}
        self.data_addresses: Dict[str, int] = {}
        self.table_addresses: Dict[str, int] = {}


def link_module(
    module: IRModule,
    codes: Optional[Sequence[FunctionCode]] = None,
    options: Optional[CodegenOptions] = None,
    name: Optional[str] = None,
    metadata: Optional[Dict[str, str]] = None,
) -> BinaryImage:
    """Generate (if needed) and link a module into a :class:`BinaryImage`."""
    options = options or CodegenOptions()
    if codes is None:
        codes = [generate_function(fn, options) for fn in module.functions.values()]
    layout = _Layout()

    # ---- pass 1: assign .text offsets ------------------------------------
    offset = 0
    for code in codes:
        offset = _align_up(offset, code.align)
        layout.function_offsets[code.name] = offset
        offsets: List[int] = []
        padding: Dict[int, int] = {}
        labels_by_index: Dict[int, List[str]] = {}
        for label, index in code.label_positions.items():
            labels_by_index.setdefault(index, []).append(label)
        for index, instr in enumerate(code.instructions):
            alignment = 1
            for label in labels_by_index.get(index, []):
                alignment = max(alignment, code.block_aligns.get(label, 1))
            if alignment > 1:
                aligned = _align_up(offset, alignment)
                if aligned != offset:
                    padding[index] = aligned - offset
                    offset = aligned
            offsets.append(offset)
            offset += instr.size
        layout.instruction_offsets[code.name] = offsets
        layout.padding_before[code.name] = padding
        layout.function_sizes[code.name] = offset - layout.function_offsets[code.name]
        end_offset = offset
        for label, index in code.label_positions.items():
            if index < len(offsets):
                layout.label_offsets[(code.name, label)] = offsets[index]
            else:
                layout.label_offsets[(code.name, label)] = end_offset

    # ---- pass 2: assign data addresses ------------------------------------
    data_words: List[int] = []
    for data in module.globals.values():
        layout.data_addresses[data.name] = GLOBAL_BASE + len(data_words)
        values = list(data.init) + [0] * (data.size - len(data.init))
        data_words.extend(values[: max(data.size, len(data.init))])
    rodata_base = GLOBAL_BASE + len(data_words)
    rodata_words: List[int] = []
    for code in codes:
        for table_name, targets in code.jump_tables.items():
            layout.table_addresses[table_name] = rodata_base + len(rodata_words)
            for label in targets:
                key = (code.name, label)
                if key not in layout.label_offsets:
                    raise LinkError(f"jump table target {label!r} missing in {code.name}")
                rodata_words.append(layout.label_offsets[key])

    # ---- pass 3: patch and encode ------------------------------------------
    text = bytearray()
    for code in codes:
        start = layout.function_offsets[code.name]
        while len(text) < start:
            text.append(0x00)  # nop padding between functions
        offsets = layout.instruction_offsets[code.name]
        padding = layout.padding_before[code.name]
        for index, instr in enumerate(code.instructions):
            for _ in range(padding.get(index, 0)):
                text.append(0x00)
            _patch_instruction(instr, code, offsets[index], layout, module)
            text += encode_instruction(instr)

    data_bytes = bytearray()
    for word in data_words:
        wrapped = word & ((1 << 64) - 1)
        if wrapped >= 1 << 63:
            wrapped -= 1 << 64
        data_bytes += struct.pack("<q", wrapped)
    rodata_bytes = bytearray()
    for word in rodata_words:
        rodata_bytes += struct.pack("<q", word)

    image = BinaryImage(name=name or module.name)
    image.set_section(".text", bytes(text))
    image.set_section(".data", bytes(data_bytes))
    image.set_section(".rodata", bytes(rodata_bytes))
    image.metadata = dict(metadata or {})
    image.metadata["rodata_base"] = str(rodata_base)

    for code in codes:
        image.symbols.append(
            Symbol(
                name=code.name,
                section=".text",
                offset=layout.function_offsets[code.name],
                size=layout.function_sizes[code.name],
                kind="func",
                is_static=code.is_static,
            )
        )
    for data in module.globals.values():
        image.symbols.append(
            Symbol(
                name=data.name,
                section=".data",
                offset=layout.data_addresses[data.name],
                size=data.size,
                kind="object",
            )
        )
    for table_name, address in layout.table_addresses.items():
        image.symbols.append(
            Symbol(name=table_name, section=".rodata", offset=address, size=0, kind="table")
        )
    if "main" in layout.function_offsets:
        image.entry_point = layout.function_offsets["main"]
    return image


def _patch_instruction(
    instr: MachInstr,
    code: FunctionCode,
    instr_offset: int,
    layout: _Layout,
    module: IRModule,
) -> None:
    if instr.target is not None:
        if instr.name in ("jmp",):
            target = _resolve_label(code, instr.target, layout)
            instr.operands[0] = target - (instr_offset + instr.size)
        elif instr.name in ("beqz", "bnez"):
            target = _resolve_label(code, instr.target, layout)
            instr.operands[1] = target - (instr_offset + instr.size)
        elif instr.name in ("call", "tcall"):
            if instr.target not in layout.function_offsets:
                raise LinkError(f"unresolved call target {instr.target!r}")
            instr.operands[0] = layout.function_offsets[instr.target]
        else:  # pragma: no cover - defensive
            raise LinkError(f"unexpected symbolic target on {instr.name}")
    if instr.symbol is not None:
        address = _resolve_data_symbol(instr.symbol, layout)
        if instr.name in ("leag", "ldg"):
            instr.operands[1] = address
        elif instr.name == "stg":
            instr.operands[0] = address
        else:  # pragma: no cover - defensive
            raise LinkError(f"unexpected data symbol on {instr.name}")


def _resolve_label(code: FunctionCode, label: str, layout: _Layout) -> int:
    key = (code.name, label)
    if key not in layout.label_offsets:
        raise LinkError(f"unresolved branch target {label!r} in {code.name}")
    return layout.label_offsets[key]


def _resolve_data_symbol(symbol: str, layout: _Layout) -> int:
    if symbol in layout.data_addresses:
        return layout.data_addresses[symbol]
    if symbol in layout.table_addresses:
        return layout.table_addresses[symbol]
    if symbol in layout.function_offsets:
        return layout.function_offsets[symbol]
    raise LinkError(f"unresolved data symbol {symbol!r}")
