"""Linear-scan register allocation for IR temporaries.

Temporaries are single-assignment, so each one has a simple live interval:
from the first position where it is defined or used to the last, measured over
the function's linearized instruction order (layout order of blocks).  The
allocator hands out the callee-window registers ``r7``..``r14``; temporaries
that do not fit are spilled to stack slots, which the code generator folds
into the frame.

When allocation is disabled (``-O0``-style code generation) every temporary is
spilled, which reproduces the boilerplate load/compute/store rhythm that makes
unoptimized binaries so compressible (the paper's observation in §4.2 about O0
code regularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.function import IRFunction
from repro.ir.instructions import VecBinOp, VecLoad, VecStore
from repro.ir.values import Temp

#: General registers available to hold temporaries.
TEMP_REGISTERS: Tuple[int, ...] = (7, 8, 9, 10, 11, 12, 13, 14)


@dataclass
class RegisterAssignment:
    """Result of register allocation for one function."""

    #: temp name -> register index
    registers: Dict[str, int] = field(default_factory=dict)
    #: temp name -> spill slot ordinal (frame offsets assigned by codegen)
    spills: Dict[str, int] = field(default_factory=dict)
    #: vector temp name -> vector register index
    vector_registers: Dict[str, int] = field(default_factory=dict)

    def location(self, temp_name: str) -> Tuple[str, int]:
        """Return ("reg", r) or ("spill", slot) for a temporary."""
        if temp_name in self.registers:
            return "reg", self.registers[temp_name]
        if temp_name in self.spills:
            return "spill", self.spills[temp_name]
        raise KeyError(temp_name)

    def spill_count(self) -> int:
        return len(self.spills)


def _linearize(function: IRFunction) -> List:
    instructions = []
    for block in function.iter_blocks():
        instructions.extend(block.instructions)
    return instructions


def _live_intervals(function: IRFunction) -> Dict[str, Tuple[int, int]]:
    """Map temp name -> (first position, last position) over the linear order.

    Temporaries whose uses span basic blocks get the whole-function interval:
    with arbitrary block layouts (inlining, reordering, unrolling) a purely
    positional interval can miss layout positions the value is live across,
    which would let the allocator clobber it.  Block-local temps — the vast
    majority — keep their tight intervals.
    """
    intervals: Dict[str, Tuple[int, int]] = {}
    defining_block: Dict[str, str] = {}
    crosses_blocks: Dict[str, bool] = {}
    # First sweep: record every temp's defining block (layout-independent).
    for block in function.iter_blocks():
        for instr in block.instructions:
            for temp in instr.defs():
                defining_block.setdefault(temp.name, block.label)
    position = 0
    total = 0
    for block in function.iter_blocks():
        for instr in block.instructions:
            for value in instr.uses():
                if isinstance(value, Temp):
                    if defining_block.get(value.name, block.label) != block.label:
                        crosses_blocks[value.name] = True
            names = [t.name for t in instr.defs()]
            names.extend(v.name for v in instr.uses() if isinstance(v, Temp))
            for name in names:
                if name in intervals:
                    start, _ = intervals[name]
                    intervals[name] = (start, position)
                else:
                    intervals[name] = (position, position)
            position += 1
    total = position
    for name, crossing in crosses_blocks.items():
        if crossing and name in intervals:
            intervals[name] = (0, total)
    return intervals


def _vector_temps(function: IRFunction) -> List[str]:
    names: List[str] = []
    for instr in function.instructions():
        if isinstance(instr, (VecLoad, VecBinOp)):
            names.append(instr.dest.name)
    return names


def allocate_registers(function: IRFunction, enable: bool = True) -> RegisterAssignment:
    """Allocate registers for ``function``'s temporaries.

    With ``enable=False`` all scalar temporaries are spilled (O0-style).
    Vector temporaries always receive vector registers (round-robin; the
    vectorizer keeps at most a handful live at once).
    """
    assignment = RegisterAssignment()
    vector_names = set(_vector_temps(function))
    for index, name in enumerate(sorted(vector_names)):
        assignment.vector_registers[name] = index % 8

    intervals = {
        name: interval
        for name, interval in _live_intervals(function).items()
        if name not in vector_names
    }
    if not enable:
        for slot, name in enumerate(sorted(intervals)):
            assignment.spills[name] = slot
        return assignment

    # Standard linear scan (Poletto & Sarkar): sweep intervals by start point,
    # expire finished intervals, spill the interval with the furthest end when
    # no register is free.
    ordered = sorted(intervals.items(), key=lambda item: (item[1][0], item[1][1]))
    free = list(TEMP_REGISTERS)
    active: List[Tuple[int, str]] = []  # (end position, temp name)
    spill_slots = 0

    for name, (start, end) in ordered:
        active = [entry for entry in active if not _expire(entry, start, assignment, free)]
        if free:
            register = free.pop(0)
            assignment.registers[name] = register
            active.append((end, name))
            active.sort()
        else:
            furthest_end, furthest_name = active[-1]
            if furthest_end > end:
                # Steal the register from the interval that ends last.
                register = assignment.registers.pop(furthest_name)
                assignment.spills[furthest_name] = spill_slots
                spill_slots += 1
                assignment.registers[name] = register
                active.pop()
                active.append((end, name))
                active.sort()
            else:
                assignment.spills[name] = spill_slots
                spill_slots += 1
    return assignment


def _expire(
    entry: Tuple[int, str],
    position: int,
    assignment: RegisterAssignment,
    free: List[int],
) -> bool:
    end, name = entry
    if end < position:
        register = assignment.registers.get(name)
        if register is not None and register not in free:
            free.append(register)
            free.sort()
        return True
    return False
