"""Instruction selection: IR functions -> SIM64 machine code.

The code generator walks each basic block in layout order and emits
:class:`repro.backend.isa.MachInstr` sequences.  Its behaviour is controlled by
:class:`CodegenOptions`, which the compiler drivers derive from the user's
optimization flags — this is where several of the paper's "syntax changing"
decisions live:

* register allocation on/off (O0 keeps every temporary in a stack slot),
* short-immediate instruction forms,
* constant-offset addressing for array accesses,
* switch lowering strategy (linear chain, jump table, or binary search),
* machine-level peephole cleanup,
* function and loop-header alignment padding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.backend.isa import BUILTIN_IDS, MachInstr
from repro.backend.regalloc import RegisterAssignment, allocate_registers
from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Branch,
    Call,
    Jump,
    LoadIndex,
    LoadVar,
    Move,
    Nop,
    Ret,
    Select,
    StoreIndex,
    StoreVar,
    Switch,
    UnOp,
    VecBinOp,
    VecLoad,
    VecStore,
)
from repro.ir.values import ConstInt, SymbolRef, Temp, Value

#: Scratch registers used to materialize operands (never hold live temps).
SCRATCH_DEST = 0
SCRATCH_A = 5
SCRATCH_B = 6

_ALU_OPS = {
    "add": "add",
    "sub": "sub",
    "mul": "mul",
    "div": "div",
    "mod": "mod",
    "and": "and",
    "or": "or",
    "xor": "xor",
    "shl": "shl",
    "shr": "shr",
}
_ALU_IMM_OPS = {
    "add": "addi",
    "sub": "subi",
    "mul": "muli",
    "shl": "shli",
    "shr": "shri",
    "and": "andi",
    "or": "ori",
    "xor": "xori",
}
_CMP_OPS = {
    "eq": "cmpeq",
    "ne": "cmpne",
    "lt": "cmplt",
    "le": "cmple",
    "gt": "cmpgt",
    "ge": "cmpge",
}
_VEC_OPS = {"add": "vadd", "sub": "vsub", "mul": "vmul"}


class CodegenError(Exception):
    """Raised when the IR cannot be lowered to machine code."""


@dataclass
class CodegenOptions:
    """Flag-derived knobs that change instruction selection and layout."""

    regalloc: bool = True
    short_immediates: bool = True
    offset_addressing: bool = True
    use_jump_tables: bool = True
    switch_binary_search: bool = True
    jump_table_min_cases: int = 4
    jump_table_max_holes: int = 3
    machine_peephole: bool = True
    align_functions: int = 1
    align_loop_headers: bool = False
    enable_tail_calls: bool = True


@dataclass
class FunctionCode:
    """Machine code for one function, prior to linking."""

    name: str
    instructions: List[MachInstr] = field(default_factory=list)
    #: block / synthetic label -> index into ``instructions``
    label_positions: Dict[str, int] = field(default_factory=dict)
    #: jump tables required by this function: table symbol -> target labels
    jump_tables: Dict[str, List[str]] = field(default_factory=dict)
    align: int = 1
    is_static: bool = False
    #: label -> requested byte alignment of the block start
    block_aligns: Dict[str, int] = field(default_factory=dict)
    frame_size: int = 0
    spill_count: int = 0

    def label_for_index(self, index: int) -> List[str]:
        return [label for label, position in self.label_positions.items() if position == index]


class _FunctionEmitter:
    """Stateful emitter for a single function."""

    def __init__(self, function: IRFunction, options: CodegenOptions) -> None:
        self.function = function
        self.options = options
        self.assignment: RegisterAssignment = allocate_registers(
            function, enable=options.regalloc
        )
        self.code = FunctionCode(
            name=function.name,
            align=max(1, options.align_functions),
            is_static=function.is_static,
        )
        self._synthetic_label_counter = 0
        self._slot_offsets: Dict[str, int] = {}
        self._frame_size = 0
        self._layout = function.block_order()
        self._compute_frame()

    # -- frame layout --------------------------------------------------------

    def _compute_frame(self) -> None:
        offset = 0
        for name in self.function.params:
            self._slot_offsets[name] = offset
            offset += 1
        for name, local in self.function.locals.items():
            if name in self._slot_offsets:
                continue
            self._slot_offsets[name] = offset
            offset += max(1, local.size)
        self._spill_base = offset
        offset += self.assignment.spill_count()
        self._frame_size = offset
        self.code.frame_size = offset
        self.code.spill_count = self.assignment.spill_count()

    def _spill_offset(self, temp_name: str) -> int:
        return self._spill_base + self.assignment.spills[temp_name]

    # -- emit helpers ---------------------------------------------------------

    def _emit(self, name: str, operands: List[int], target: Optional[str] = None,
              symbol: Optional[str] = None, comment: str = "") -> MachInstr:
        instr = MachInstr(name, operands, target=target, symbol=symbol, comment=comment)
        self.code.instructions.append(instr)
        return instr

    def _mark_label(self, label: str) -> None:
        self.code.label_positions[label] = len(self.code.instructions)

    def _new_synthetic_label(self, hint: str) -> str:
        self._synthetic_label_counter += 1
        return f"{self.function.name}.{hint}.{self._synthetic_label_counter}"

    def _emit_load_immediate(self, register: int, value: int) -> None:
        if -(1 << 15) <= value < (1 << 15) and self.options.short_immediates:
            self._emit("movis", [register, value])
        else:
            self._emit("movi", [register, value])

    def _is_global(self, var: str) -> bool:
        return var not in self._slot_offsets

    def _value_to_register(self, value: Value, scratch: int) -> int:
        """Ensure ``value`` is in a register; return the register index."""
        if isinstance(value, ConstInt):
            self._emit_load_immediate(scratch, value.value)
            return scratch
        if isinstance(value, SymbolRef):
            self._emit("leag", [scratch, 0], symbol=value.name)
            return scratch
        if isinstance(value, Temp):
            if value.name in self.assignment.vector_registers:
                raise CodegenError(f"vector temp {value.name} used as scalar")
            kind, location = self.assignment.location(value.name)
            if kind == "reg":
                return location
            self._emit("ld", [scratch, 15, self._spill_offset(value.name)])
            return scratch
        raise CodegenError(f"cannot materialize value {value!r}")

    def _dest_register(self, temp: Temp) -> Tuple[int, bool]:
        """Register to compute into and whether a spill store is needed after."""
        kind, location = self.assignment.location(temp.name)
        if kind == "reg":
            return location, False
        return SCRATCH_DEST, True

    def _finish_dest(self, temp: Temp, register: int, needs_store: bool) -> None:
        if needs_store:
            self._emit("st", [15, self._spill_offset(temp.name), register])

    def _vector_register(self, temp: Temp) -> int:
        try:
            return self.assignment.vector_registers[temp.name]
        except KeyError as exc:
            raise CodegenError(f"temp {temp.name} is not a vector register") from exc

    # -- function body ---------------------------------------------------------

    def emit_function(self) -> FunctionCode:
        self._emit_prologue()
        for position, label in enumerate(self._layout):
            block = self.function.blocks[label]
            self._mark_label(label)
            if block.align > 1 or (
                self.options.align_loop_headers and self._is_loop_header(label)
            ):
                self.code.block_aligns[label] = max(block.align, 8)
            next_label = self._layout[position + 1] if position + 1 < len(self._layout) else None
            self._emit_block(block, next_label)
        return self.code

    def _is_loop_header(self, label: str) -> bool:
        # A cheap syntactic test: loop headers created by the builder/unroller
        # carry "cond" or "header" in their label.
        return ".cond" in label or "header" in label or label.startswith("while") or label.startswith("for")

    def _emit_prologue(self) -> None:
        self._mark_label(f"{self.function.name}.__prologue")
        if self._frame_size:
            self._emit("spadd", [-self._frame_size])
        if len(self.function.params) > 6:
            raise CodegenError(
                f"{self.function.name}: more than 6 parameters are not supported"
            )
        for index, name in enumerate(self.function.params):
            self._emit("st", [15, self._slot_offsets[name], index + 1])

    def _emit_epilogue_and_ret(self) -> None:
        if self._frame_size:
            self._emit("spadd", [self._frame_size])
        self._emit("ret", [])

    def _emit_block(self, block, next_label: Optional[str]) -> None:
        skip_next_ret = False
        for instr in block.instructions:
            if skip_next_ret and isinstance(instr, Ret):
                skip_next_ret = False
                continue
            skip_next_ret = False
            if isinstance(instr, Call) and instr.is_tail and self.options.enable_tail_calls \
                    and instr.callee not in BUILTIN_IDS:
                self._emit_tail_call(instr)
                skip_next_ret = True
                continue
            self._emit_instruction(instr, next_label)

    # -- per-instruction lowering ----------------------------------------------

    def _emit_instruction(self, instr, next_label: Optional[str]) -> None:
        if isinstance(instr, BinOp):
            self._emit_binop(instr)
        elif isinstance(instr, UnOp):
            self._emit_unop(instr)
        elif isinstance(instr, Move):
            self._emit_move(instr)
        elif isinstance(instr, LoadVar):
            self._emit_load_var(instr)
        elif isinstance(instr, StoreVar):
            self._emit_store_var(instr)
        elif isinstance(instr, LoadIndex):
            self._emit_load_index(instr)
        elif isinstance(instr, StoreIndex):
            self._emit_store_index(instr)
        elif isinstance(instr, AddrOf):
            self._emit_addr_of(instr)
        elif isinstance(instr, Call):
            self._emit_call(instr)
        elif isinstance(instr, Ret):
            self._emit_ret(instr)
        elif isinstance(instr, Branch):
            self._emit_branch(instr, next_label)
        elif isinstance(instr, Jump):
            if instr.label != next_label:
                self._emit("jmp", [0], target=instr.label)
        elif isinstance(instr, Switch):
            self._emit_switch(instr)
        elif isinstance(instr, Select):
            self._emit_select(instr)
        elif isinstance(instr, VecLoad):
            base = self._value_to_register(instr.base, SCRATCH_A)
            index = self._value_to_register(instr.index, SCRATCH_B)
            self._emit("vld", [self._vector_register(instr.dest), base, index])
        elif isinstance(instr, VecStore):
            base = self._value_to_register(instr.base, SCRATCH_A)
            index = self._value_to_register(instr.index, SCRATCH_B)
            value = instr.value
            if not isinstance(value, Temp):
                raise CodegenError("vector store source must be a vector temp")
            self._emit("vst", [self._vector_register(value), base, index])
        elif isinstance(instr, VecBinOp):
            if instr.op not in _VEC_OPS:
                raise CodegenError(f"unsupported vector op {instr.op}")
            lhs = instr.lhs
            rhs = instr.rhs
            if not isinstance(lhs, Temp) or not isinstance(rhs, Temp):
                raise CodegenError("vector operands must be vector temps")
            self._emit(
                _VEC_OPS[instr.op],
                [
                    self._vector_register(instr.dest),
                    self._vector_register(lhs),
                    self._vector_register(rhs),
                ],
            )
        elif isinstance(instr, Nop):
            self._emit("nop", [])
        else:  # pragma: no cover - defensive
            raise CodegenError(f"cannot lower {type(instr).__name__}")

    def _emit_binop(self, instr: BinOp) -> None:
        dest, needs_store = self._dest_register(instr.dest)
        if instr.op in _CMP_OPS:
            lhs = self._value_to_register(instr.lhs, SCRATCH_A)
            rhs = self._value_to_register(instr.rhs, SCRATCH_B)
            self._emit(_CMP_OPS[instr.op], [dest, lhs, rhs])
            self._finish_dest(instr.dest, dest, needs_store)
            return
        if instr.op not in _ALU_OPS:
            raise CodegenError(f"unknown binary op {instr.op}")
        use_immediate = (
            self.options.short_immediates
            and isinstance(instr.rhs, ConstInt)
            and -(1 << 15) <= instr.rhs.value < (1 << 15)
            and instr.op in _ALU_IMM_OPS
        )
        lhs = self._value_to_register(instr.lhs, SCRATCH_A)
        if use_immediate:
            self._emit(_ALU_IMM_OPS[instr.op], [dest, lhs, instr.rhs.value])
        else:
            rhs = self._value_to_register(instr.rhs, SCRATCH_B)
            self._emit(_ALU_OPS[instr.op], [dest, lhs, rhs])
        self._finish_dest(instr.dest, dest, needs_store)

    def _emit_unop(self, instr: UnOp) -> None:
        dest, needs_store = self._dest_register(instr.dest)
        operand = self._value_to_register(instr.operand, SCRATCH_A)
        if instr.op == "neg":
            self._emit("neg", [dest, operand])
        elif instr.op == "bnot":
            self._emit("bnot", [dest, operand])
        elif instr.op == "not":
            self._emit("not", [dest, operand])
        else:
            raise CodegenError(f"unknown unary op {instr.op}")
        self._finish_dest(instr.dest, dest, needs_store)

    def _emit_move(self, instr: Move) -> None:
        dest, needs_store = self._dest_register(instr.dest)
        if isinstance(instr.src, ConstInt):
            self._emit_load_immediate(dest, instr.src.value)
        elif isinstance(instr.src, SymbolRef):
            self._emit("leag", [dest, 0], symbol=instr.src.name)
        else:
            source = self._value_to_register(instr.src, SCRATCH_A)
            if source != dest:
                self._emit("mov", [dest, source])
        self._finish_dest(instr.dest, dest, needs_store)

    def _emit_load_var(self, instr: LoadVar) -> None:
        dest, needs_store = self._dest_register(instr.dest)
        if self._is_global(instr.var):
            self._emit("ldg", [dest, 0], symbol=instr.var)
        else:
            self._emit("ld", [dest, 15, self._slot_offsets[instr.var]])
        self._finish_dest(instr.dest, dest, needs_store)

    def _emit_store_var(self, instr: StoreVar) -> None:
        value = self._value_to_register(instr.value, SCRATCH_A)
        if self._is_global(instr.var):
            self._emit("stg", [0, value], symbol=instr.var)
        else:
            self._emit("st", [15, self._slot_offsets[instr.var], value])

    def _emit_load_index(self, instr: LoadIndex) -> None:
        dest, needs_store = self._dest_register(instr.dest)
        base = self._value_to_register(instr.base, SCRATCH_A)
        if (
            self.options.offset_addressing
            and isinstance(instr.index, ConstInt)
            and -(1 << 15) <= instr.index.value < (1 << 15)
        ):
            self._emit("ld", [dest, base, instr.index.value])
        else:
            index = self._value_to_register(instr.index, SCRATCH_B)
            self._emit("ldx", [dest, base, index])
        self._finish_dest(instr.dest, dest, needs_store)

    def _emit_store_index(self, instr: StoreIndex) -> None:
        base = self._value_to_register(instr.base, SCRATCH_A)
        if (
            self.options.offset_addressing
            and isinstance(instr.index, ConstInt)
            and -(1 << 15) <= instr.index.value < (1 << 15)
        ):
            value = self._value_to_register(instr.value, SCRATCH_B)
            self._emit("st", [base, instr.index.value, value])
        else:
            index = self._value_to_register(instr.index, SCRATCH_B)
            value = self._value_to_register(instr.value, SCRATCH_DEST)
            self._emit("stx", [base, index, value])

    def _emit_addr_of(self, instr: AddrOf) -> None:
        dest, needs_store = self._dest_register(instr.dest)
        if self._is_global(instr.var):
            self._emit("leag", [dest, 0], symbol=instr.var)
        else:
            self._emit("leas", [dest, self._slot_offsets[instr.var]])
        self._finish_dest(instr.dest, dest, needs_store)

    def _emit_call_arguments(self, args: List[Value]) -> None:
        if len(args) > 6:
            raise CodegenError("more than 6 call arguments are not supported")
        for index, arg in enumerate(args):
            register = index + 1
            if isinstance(arg, ConstInt):
                self._emit_load_immediate(register, arg.value)
            elif isinstance(arg, SymbolRef):
                self._emit("leag", [register, 0], symbol=arg.name)
            elif isinstance(arg, Temp):
                kind, location = self.assignment.location(arg.name)
                if kind == "reg":
                    self._emit("mov", [register, location])
                else:
                    self._emit("ld", [register, 15, self._spill_offset(arg.name)])
            else:
                raise CodegenError(f"unsupported call argument {arg!r}")

    def _emit_call(self, instr: Call) -> None:
        self._emit_call_arguments(instr.args)
        if instr.callee in BUILTIN_IDS:
            self._emit("syscall", [BUILTIN_IDS[instr.callee]])
        else:
            self._emit("call", [0], target=instr.callee)
        if instr.dest is not None:
            kind, location = self.assignment.location(instr.dest.name)
            if kind == "reg":
                self._emit("mov", [location, 0])
            else:
                self._emit("st", [15, self._spill_offset(instr.dest.name), 0])

    def _emit_tail_call(self, instr: Call) -> None:
        self._emit_call_arguments(instr.args)
        if self._frame_size:
            self._emit("spadd", [self._frame_size])
        self._emit("tcall", [0], target=instr.callee)

    def _emit_ret(self, instr: Ret) -> None:
        if instr.value is not None:
            if isinstance(instr.value, ConstInt):
                self._emit_load_immediate(0, instr.value.value)
            elif isinstance(instr.value, SymbolRef):
                self._emit("leag", [0, 0], symbol=instr.value.name)
            else:
                register = self._value_to_register(instr.value, SCRATCH_A)
                if register != 0:
                    self._emit("mov", [0, register])
        self._emit_epilogue_and_ret()

    def _emit_branch(self, instr: Branch, next_label: Optional[str]) -> None:
        cond = self._value_to_register(instr.cond, SCRATCH_A)
        if instr.false_label == next_label:
            self._emit("bnez", [cond, 0], target=instr.true_label)
        elif instr.true_label == next_label:
            self._emit("beqz", [cond, 0], target=instr.false_label)
        else:
            self._emit("bnez", [cond, 0], target=instr.true_label)
            self._emit("jmp", [0], target=instr.false_label)

    def _emit_select(self, instr: Select) -> None:
        dest, needs_store = self._dest_register(instr.dest)
        cond = self._value_to_register(instr.cond, SCRATCH_A)
        if_true = self._value_to_register(instr.if_true, SCRATCH_B)
        if_false = self._value_to_register(instr.if_false, SCRATCH_DEST if dest != SCRATCH_DEST else 4)
        self._emit("select", [dest, cond, if_true, if_false])
        self._finish_dest(instr.dest, dest, needs_store)

    # -- switch lowering --------------------------------------------------------

    def _emit_switch(self, instr: Switch) -> None:
        if not instr.cases:
            self._emit("jmp", [0], target=instr.default_label)
            return
        cases = sorted(instr.cases, key=lambda item: item[0])
        value = self._value_to_register(instr.value, SCRATCH_A)
        if value != SCRATCH_A:
            self._emit("mov", [SCRATCH_A, value])
            value = SCRATCH_A
        min_case = cases[0][0]
        max_case = cases[-1][0]
        span = max_case - min_case + 1
        holes = span - len(cases)
        dense_enough = (
            self.options.use_jump_tables
            and len(cases) >= self.options.jump_table_min_cases
            and holes <= self.options.jump_table_max_holes
            and span <= 512
        )
        if dense_enough:
            self._emit_jump_table(instr, cases, value, min_case, span)
        elif self.options.switch_binary_search and len(cases) > 4:
            self._emit_binary_search(cases, value, instr.default_label)
        else:
            self._emit_linear_switch(cases, value, instr.default_label)

    def _emit_linear_switch(self, cases, value: int, default_label: str) -> None:
        for case_value, label in cases:
            self._emit_load_immediate(SCRATCH_B, case_value)
            self._emit("cmpeq", [SCRATCH_DEST, value, SCRATCH_B])
            self._emit("bnez", [SCRATCH_DEST, 0], target=label)
        self._emit("jmp", [0], target=default_label)

    def _emit_binary_search(self, cases, value: int, default_label: str) -> None:
        def recurse(subset) -> None:
            if len(subset) <= 2:
                for case_value, label in subset:
                    self._emit_load_immediate(SCRATCH_B, case_value)
                    self._emit("cmpeq", [SCRATCH_DEST, value, SCRATCH_B])
                    self._emit("bnez", [SCRATCH_DEST, 0], target=label)
                self._emit("jmp", [0], target=default_label)
                return
            mid = len(subset) // 2
            mid_value, mid_label = subset[mid]
            low_label = self._new_synthetic_label("bslow")
            self._emit_load_immediate(SCRATCH_B, mid_value)
            self._emit("cmplt", [SCRATCH_DEST, value, SCRATCH_B])
            self._emit("bnez", [SCRATCH_DEST, 0], target=low_label)
            self._emit("cmpeq", [SCRATCH_DEST, value, SCRATCH_B])
            self._emit("bnez", [SCRATCH_DEST, 0], target=mid_label)
            recurse(subset[mid + 1 :])
            self._mark_label(low_label)
            recurse(subset[:mid])

        recurse(cases)

    def _emit_jump_table(self, instr: Switch, cases, value: int, min_case: int, span: int) -> None:
        table_symbol = self._new_synthetic_label("jt")
        targets = []
        case_map = dict(cases)
        for offset in range(span):
            targets.append(case_map.get(min_case + offset, instr.default_label))
        self.code.jump_tables[table_symbol] = targets
        if min_case:
            self._emit("subi", [SCRATCH_A, value, min_case])
            value = SCRATCH_A
        # Out-of-range values fall back to the default label.
        self._emit_load_immediate(SCRATCH_B, 0)
        self._emit("cmplt", [SCRATCH_DEST, value, SCRATCH_B])
        self._emit("bnez", [SCRATCH_DEST, 0], target=instr.default_label)
        self._emit_load_immediate(SCRATCH_B, span - 1)
        self._emit("cmpgt", [SCRATCH_DEST, value, SCRATCH_B])
        self._emit("bnez", [SCRATCH_DEST, 0], target=instr.default_label)
        self._emit("leag", [SCRATCH_B, 0], symbol=table_symbol)
        self._emit("add", [SCRATCH_B, SCRATCH_B, value])
        self._emit("ld", [SCRATCH_DEST, SCRATCH_B, 0])
        self._emit("ijmp", [SCRATCH_DEST])


def machine_peephole(code: FunctionCode) -> int:
    """Local machine-level cleanup (the ``-fpeephole2`` analog).

    Returns the number of rewrites applied.  Deletions keep label positions
    consistent by remapping them onto the following instruction.
    """
    rewrites = 0
    instructions = code.instructions
    keep: List[MachInstr] = []
    index_map: Dict[int, int] = {}
    previous: Optional[MachInstr] = None
    for index, instr in enumerate(instructions):
        index_map[index] = len(keep)
        replacement: Optional[MachInstr] = instr
        if instr.name == "mov" and instr.operands[0] == instr.operands[1]:
            replacement = None
        elif instr.name in ("addi", "subi") and instr.operands[2] == 0:
            if instr.operands[0] == instr.operands[1]:
                replacement = None
            else:
                replacement = MachInstr("mov", [instr.operands[0], instr.operands[1]])
            rewrites += 1
        elif instr.name == "muli" and instr.operands[2] == 1:
            if instr.operands[0] == instr.operands[1]:
                replacement = None
            else:
                replacement = MachInstr("mov", [instr.operands[0], instr.operands[1]])
            rewrites += 1
        elif instr.name == "muli" and instr.operands[2] > 1 and (instr.operands[2] & (instr.operands[2] - 1)) == 0:
            shift = instr.operands[2].bit_length() - 1
            replacement = MachInstr("shli", [instr.operands[0], instr.operands[1], shift])
            rewrites += 1
        elif instr.name == "movis" and instr.operands[1] == 0:
            replacement = MachInstr("xor", [instr.operands[0], instr.operands[0], instr.operands[0]])
            rewrites += 1
        elif (
            instr.name == "spadd"
            and previous is not None
            and previous.name == "spadd"
            and keep
            and keep[-1] is previous
            and not _is_label_target(code, index)
        ):
            previous.operands[0] += instr.operands[0]
            if previous.operands[0] == 0:
                keep.pop()
            replacement = None
            rewrites += 1
        if replacement is None:
            if instr.name == "mov" and instr.operands[0] == instr.operands[1]:
                rewrites += 1
            previous = keep[-1] if keep else None
            continue
        keep.append(replacement)
        previous = replacement
    index_map[len(instructions)] = len(keep)
    code.instructions = keep
    code.label_positions = {
        label: index_map[position] for label, position in code.label_positions.items()
    }
    return rewrites


def _is_label_target(code: FunctionCode, index: int) -> bool:
    return any(position == index for position in code.label_positions.values())


def generate_function(function: IRFunction, options: Optional[CodegenOptions] = None) -> FunctionCode:
    """Generate machine code for one IR function."""
    options = options or CodegenOptions()
    emitter = _FunctionEmitter(function, options)
    code = emitter.emit_function()
    if options.machine_peephole:
        machine_peephole(code)
    return code


def generate_module(module: IRModule, options: Optional[CodegenOptions] = None) -> List[FunctionCode]:
    """Generate machine code for every function in a module (layout order)."""
    options = options or CodegenOptions()
    return [generate_function(fn, options) for fn in module.functions.values()]
