"""The SIM64 instruction set: opcodes, operand formats, encode/decode.

SIM64 is a 64-bit, word-addressed-data / byte-addressed-code machine with
sixteen general registers (``r0``..``r15``; ``r15`` is the stack pointer) and
eight 4-lane vector registers (``v0``..``v7``).

ABI (the "register window" convention used by all generated code):

* arguments in ``r1``..``r6``, return value in ``r0``;
* ``CALL`` saves registers ``r7``..``r14`` and the return address on an
  emulator-internal control stack; ``RET`` restores them, so temporaries held
  in ``r7``..``r14`` survive calls without explicit spills;
* ``TCALL`` transfers to another function without pushing a frame (proper
  tail call): the callee's ``RET`` returns to the original caller;
* builtin library routines are invoked with ``SYSCALL``.

Every instruction encodes to ``opcode byte + operand bytes``; several
operations exist in both register/long-immediate and short-immediate forms so
that instruction selection choices show up as byte-level differences (which is
what NCD, the paper's fitness function, measures).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Stack pointer register index.
SP = 15

#: Human-readable register names.
REG_NAMES = {i: f"r{i}" for i in range(15)}
REG_NAMES[SP] = "sp"

#: Operand format characters:
#:   r  - general register (1 byte)
#:   v  - vector register (1 byte)
#:   i16 - signed 16-bit immediate
#:   i32 - signed 32-bit immediate
#:   i64 - signed 64-bit immediate
#:   u8  - unsigned 8-bit immediate
_OPERAND_SIZES = {"r": 1, "v": 1, "i16": 2, "i32": 4, "i64": 8, "u8": 1}


@dataclass(frozen=True)
class OpcodeSpec:
    """Static description of one opcode."""

    code: int
    name: str
    operands: Tuple[str, ...]
    #: Abstract latency in cycles, used by the cost model (Table 3).
    cycles: int = 1

    @property
    def size(self) -> int:
        return 1 + sum(_OPERAND_SIZES[fmt] for fmt in self.operands)


_SPECS: List[OpcodeSpec] = [
    OpcodeSpec(0x00, "nop", ()),
    OpcodeSpec(0x01, "movi", ("r", "i64"), 1),
    OpcodeSpec(0x02, "movis", ("r", "i16"), 1),
    OpcodeSpec(0x03, "mov", ("r", "r"), 1),
    # Register-register ALU.
    OpcodeSpec(0x10, "add", ("r", "r", "r"), 1),
    OpcodeSpec(0x11, "sub", ("r", "r", "r"), 1),
    OpcodeSpec(0x12, "mul", ("r", "r", "r"), 3),
    OpcodeSpec(0x13, "div", ("r", "r", "r"), 20),
    OpcodeSpec(0x14, "mod", ("r", "r", "r"), 20),
    OpcodeSpec(0x15, "and", ("r", "r", "r"), 1),
    OpcodeSpec(0x16, "or", ("r", "r", "r"), 1),
    OpcodeSpec(0x17, "xor", ("r", "r", "r"), 1),
    OpcodeSpec(0x18, "shl", ("r", "r", "r"), 1),
    OpcodeSpec(0x19, "shr", ("r", "r", "r"), 1),
    # Short-immediate ALU forms (instruction selection / peephole targets).
    OpcodeSpec(0x20, "addi", ("r", "r", "i16"), 1),
    OpcodeSpec(0x21, "subi", ("r", "r", "i16"), 1),
    OpcodeSpec(0x22, "muli", ("r", "r", "i16"), 3),
    OpcodeSpec(0x23, "shli", ("r", "r", "i16"), 1),
    OpcodeSpec(0x24, "shri", ("r", "r", "i16"), 1),
    OpcodeSpec(0x25, "andi", ("r", "r", "i16"), 1),
    OpcodeSpec(0x26, "ori", ("r", "r", "i16"), 1),
    OpcodeSpec(0x27, "xori", ("r", "r", "i16"), 1),
    # Comparisons producing 0/1.
    OpcodeSpec(0x30, "cmpeq", ("r", "r", "r"), 1),
    OpcodeSpec(0x31, "cmpne", ("r", "r", "r"), 1),
    OpcodeSpec(0x32, "cmplt", ("r", "r", "r"), 1),
    OpcodeSpec(0x33, "cmple", ("r", "r", "r"), 1),
    OpcodeSpec(0x34, "cmpgt", ("r", "r", "r"), 1),
    OpcodeSpec(0x35, "cmpge", ("r", "r", "r"), 1),
    OpcodeSpec(0x38, "not", ("r", "r"), 1),
    OpcodeSpec(0x39, "neg", ("r", "r"), 1),
    OpcodeSpec(0x3A, "bnot", ("r", "r"), 1),
    # Memory.  Data memory is addressed in 8-byte words.
    OpcodeSpec(0x40, "ld", ("r", "r", "i16"), 3),
    OpcodeSpec(0x41, "st", ("r", "i16", "r"), 3),
    OpcodeSpec(0x42, "ldx", ("r", "r", "r"), 3),
    OpcodeSpec(0x43, "stx", ("r", "r", "r"), 3),
    OpcodeSpec(0x44, "leag", ("r", "i32"), 1),
    OpcodeSpec(0x45, "leas", ("r", "i16"), 1),
    OpcodeSpec(0x46, "ldg", ("r", "i32"), 3),
    OpcodeSpec(0x47, "stg", ("i32", "r"), 3),
    # Control flow.  Branch offsets are byte-relative to the *end* of the
    # instruction; CALL/TCALL take absolute byte addresses in .text.
    OpcodeSpec(0x50, "jmp", ("i32",), 1),
    OpcodeSpec(0x51, "beqz", ("r", "i32"), 1),
    OpcodeSpec(0x52, "bnez", ("r", "i32"), 1),
    OpcodeSpec(0x53, "call", ("i32",), 2),
    OpcodeSpec(0x54, "ret", (), 2),
    OpcodeSpec(0x55, "ijmp", ("r",), 2),
    OpcodeSpec(0x56, "syscall", ("u8",), 10),
    OpcodeSpec(0x57, "tcall", ("i32",), 2),
    # Conditional move and stack management.
    OpcodeSpec(0x60, "select", ("r", "r", "r", "r"), 1),
    OpcodeSpec(0x61, "spadd", ("i16",), 1),
    # Vector operations (4 lanes of 64-bit).
    OpcodeSpec(0x70, "vld", ("v", "r", "r"), 4),
    OpcodeSpec(0x71, "vst", ("v", "r", "r"), 4),
    OpcodeSpec(0x72, "vadd", ("v", "v", "v"), 1),
    OpcodeSpec(0x73, "vsub", ("v", "v", "v"), 1),
    OpcodeSpec(0x74, "vmul", ("v", "v", "v"), 3),
    OpcodeSpec(0xFF, "hlt", (), 1),
]

OPCODES: Dict[int, OpcodeSpec] = {spec.code: spec for spec in _SPECS}
OPCODES_BY_NAME: Dict[str, OpcodeSpec] = {spec.name: spec for spec in _SPECS}

#: Builtin library routines reachable via SYSCALL.
BUILTIN_IDS: Dict[str, int] = {
    "print_int": 1,
    "print_char": 2,
    "print_str": 3,
    "read_int": 4,
    "abs": 5,
    "min": 6,
    "max": 7,
    "strcpy": 8,
    "strcmp": 9,
    "strlen": 10,
    "memset": 11,
    "memcpy": 12,
    "malloc": 13,
    "free": 14,
    "rand": 15,
    "srand": 16,
    "exit": 17,
    "assert": 18,
}
BUILTIN_NAMES: Dict[int, str] = {num: name for name, num in BUILTIN_IDS.items()}


class EncodingError(Exception):
    """Raised when an instruction cannot be encoded or decoded."""


@dataclass
class MachInstr:
    """One machine instruction.

    Before linking, control-flow operands may still be symbolic: ``target``
    holds a block label (for ``jmp``/``beqz``/``bnez``) or a function name
    (for ``call``/``tcall``), and ``symbol`` holds a data-symbol name for
    ``leag``/``ldg``/``stg``.  The linker resolves them and fills in the
    numeric operands prior to encoding.
    """

    name: str
    operands: List[int] = field(default_factory=list)
    target: Optional[str] = None
    symbol: Optional[str] = None
    comment: str = ""

    @property
    def spec(self) -> OpcodeSpec:
        try:
            return OPCODES_BY_NAME[self.name]
        except KeyError as exc:  # pragma: no cover - programming error
            raise EncodingError(f"unknown mnemonic {self.name!r}") from exc

    @property
    def size(self) -> int:
        return self.spec.size

    @property
    def is_branch(self) -> bool:
        return self.name in ("jmp", "beqz", "bnez")

    @property
    def is_call(self) -> bool:
        return self.name in ("call", "tcall")

    def __str__(self) -> str:
        spec = self.spec
        parts = []
        for fmt, operand in zip(spec.operands, self.operands):
            if fmt == "r":
                parts.append(REG_NAMES.get(operand, f"r{operand}"))
            elif fmt == "v":
                parts.append(f"v{operand}")
            else:
                parts.append(str(operand))
        text = f"{self.name} " + ", ".join(parts) if parts else self.name
        if self.target is not None:
            text += f"  <{self.target}>"
        return text.strip()


def _pack_operand(fmt: str, value: int) -> bytes:
    if fmt == "r" or fmt == "v":
        if not 0 <= value <= 15 and fmt == "r":
            raise EncodingError(f"register index out of range: {value}")
        return struct.pack("<B", value & 0xFF)
    if fmt == "u8":
        return struct.pack("<B", value & 0xFF)
    if fmt == "i16":
        if not -(1 << 15) <= value < (1 << 15):
            raise EncodingError(f"immediate does not fit in 16 bits: {value}")
        return struct.pack("<h", value)
    if fmt == "i32":
        if not -(1 << 31) <= value < (1 << 31):
            raise EncodingError(f"immediate does not fit in 32 bits: {value}")
        return struct.pack("<i", value)
    if fmt == "i64":
        return struct.pack("<q", value)
    raise EncodingError(f"unknown operand format {fmt!r}")  # pragma: no cover


def encode_instruction(instr: MachInstr) -> bytes:
    """Encode one instruction to bytes.  Symbolic operands must be resolved."""
    spec = instr.spec
    if len(instr.operands) != len(spec.operands):
        raise EncodingError(
            f"{instr.name}: expected {len(spec.operands)} operands, got {len(instr.operands)}"
        )
    out = bytearray([spec.code])
    for fmt, operand in zip(spec.operands, instr.operands):
        out += _pack_operand(fmt, int(operand))
    return bytes(out)


def _unpack_operand(fmt: str, data: bytes, offset: int) -> Tuple[int, int]:
    if fmt in ("r", "v", "u8"):
        return data[offset], offset + 1
    if fmt == "i16":
        return struct.unpack_from("<h", data, offset)[0], offset + 2
    if fmt == "i32":
        return struct.unpack_from("<i", data, offset)[0], offset + 4
    if fmt == "i64":
        return struct.unpack_from("<q", data, offset)[0], offset + 8
    raise EncodingError(f"unknown operand format {fmt!r}")  # pragma: no cover


def decode_instruction(data: bytes, offset: int = 0) -> Tuple[MachInstr, int]:
    """Decode one instruction at ``offset``; return (instruction, next offset)."""
    if offset >= len(data):
        raise EncodingError("decode past end of code")
    code = data[offset]
    spec = OPCODES.get(code)
    if spec is None:
        raise EncodingError(f"unknown opcode 0x{code:02x} at offset {offset}")
    operands: List[int] = []
    cursor = offset + 1
    for fmt in spec.operands:
        if cursor + _OPERAND_SIZES[fmt] > len(data):
            raise EncodingError(f"truncated instruction at offset {offset}")
        value, cursor = _unpack_operand(fmt, data, cursor)
        operands.append(value)
    return MachInstr(spec.name, operands), cursor


def decode_stream(data: bytes, start: int = 0, end: Optional[int] = None) -> List[Tuple[int, MachInstr]]:
    """Decode a contiguous byte range into (offset, instruction) pairs."""
    end = len(data) if end is None else end
    out: List[Tuple[int, MachInstr]] = []
    offset = start
    while offset < end:
        instr, next_offset = decode_instruction(data, offset)
        out.append((offset, instr))
        offset = next_offset
    return out


def instruction_cycles(instr: MachInstr) -> int:
    """Abstract cycle cost of an instruction (used by the cost model)."""
    return instr.spec.cycles
