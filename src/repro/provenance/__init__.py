"""Compiler provenance recovery (BinComp stand-in)."""

from repro.provenance.bincomp import BinComp, ProvenanceLabel

__all__ = ["BinComp", "ProvenanceLabel"]
