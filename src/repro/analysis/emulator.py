"""SIM64 emulator.

Interprets the machine code inside a :class:`repro.backend.binary.BinaryImage`.
It is used in three roles:

1. *functional correctness*: every BinTuner output must behave identically to
   the ``-O0`` build on the program's test inputs (the paper runs the test
   suites shipped with its benchmarks; we diff emulator outputs);
2. *dynamic diffing tools*: IMF-SIM-style random-sampling function comparison
   executes recovered functions with concrete arguments;
3. *cost model*: dynamic cycle counts drive the Table 3 speedup comparison.

The machine is word-addressed for data (8-byte words) and byte-addressed for
code.  ``CALL`` uses a register-window convention: the return address and
registers ``r7``..``r14`` (plus vector registers) are saved on an internal
control stack and restored by ``RET``; ``TCALL`` transfers without pushing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.backend.binary import BinaryImage, GLOBAL_BASE, HEAP_BASE, STACK_TOP
from repro.backend.isa import BUILTIN_NAMES, MachInstr, decode_instruction
from repro.ir.values import wrap64


class EmulationError(Exception):
    """Raised on machine faults (bad opcode, division by zero, bad jump...)."""


class EmulationLimitExceeded(EmulationError):
    """Raised when the step budget is exhausted (possible non-termination)."""


@dataclass
class ExecutionResult:
    """Outcome of one emulation run."""

    return_value: int = 0
    output: List[str] = field(default_factory=list)
    steps: int = 0
    cycles: int = 0
    exited: bool = False
    exit_code: int = 0
    assertion_failed: bool = False

    @property
    def output_text(self) -> str:
        return "".join(self.output)

    def observable_state(self) -> Tuple[int, str]:
        """The externally visible behaviour used for equivalence checks."""
        return (self.return_value, self.output_text)


class Emulator:
    """A single-program SIM64 interpreter."""

    def __init__(self, image: BinaryImage, inputs: Optional[Sequence[int]] = None) -> None:
        self.image = image
        self.text = image.text
        self.registers: List[int] = [0] * 16
        self.vector_registers: List[List[int]] = [[0, 0, 0, 0] for _ in range(8)]
        self.memory: Dict[int, int] = {}
        self.inputs: List[int] = list(inputs or [])
        self._input_cursor = 0
        self.output: List[str] = []
        self.heap_pointer = HEAP_BASE
        self.rand_state = 0x2545F4914F6CDD1D
        self.control_stack: List[Tuple[int, List[int], List[List[int]]]] = []
        self.cycles = 0
        self._decode_cache: Dict[int, Tuple[MachInstr, int]] = {}
        self._load_initial_memory()
        self.registers[15] = STACK_TOP

    # -- memory -------------------------------------------------------------

    def _load_initial_memory(self) -> None:
        self.memory.update(self.image.initial_memory())
        rodata = self.image.rodata
        rodata_base = int(self.image.metadata.get("rodata_base", GLOBAL_BASE))
        for index in range(len(rodata) // 8):
            value = struct.unpack_from("<q", rodata, index * 8)[0]
            self.memory[rodata_base + index] = value

    def read_word(self, address: int) -> int:
        return self.memory.get(address, 0)

    def write_word(self, address: int, value: int) -> None:
        self.memory[address] = wrap64(value)

    def read_string(self, address: int, limit: int = 4096) -> str:
        chars: List[str] = []
        for offset in range(limit):
            word = self.read_word(address + offset)
            if word == 0:
                break
            chars.append(chr(word & 0x10FFFF))
        return "".join(chars)

    # -- execution ------------------------------------------------------------

    def _decode(self, offset: int) -> Tuple[MachInstr, int]:
        cached = self._decode_cache.get(offset)
        if cached is None:
            if not 0 <= offset < len(self.text):
                raise EmulationError(f"program counter out of range: {offset}")
            cached = decode_instruction(self.text, offset)
            self._decode_cache[offset] = cached
        return cached

    def run(
        self,
        entry: Optional[int] = None,
        args: Optional[Sequence[int]] = None,
        max_steps: int = 2_000_000,
    ) -> ExecutionResult:
        """Run from ``entry`` (default: the image entry point) until return."""
        result = ExecutionResult()
        pc = self.image.entry_point if entry is None else entry
        for index, value in enumerate(args or []):
            self.registers[index + 1] = wrap64(value)
        steps = 0
        while True:
            if steps >= max_steps:
                raise EmulationLimitExceeded(
                    f"exceeded {max_steps} steps at pc={pc} in {self.image.name}"
                )
            instr, next_pc = self._decode(pc)
            steps += 1
            self.cycles += instr.spec.cycles
            new_pc = self._execute(instr, pc, next_pc, result)
            if new_pc is None:
                break
            pc = new_pc
        result.steps = steps
        result.cycles = self.cycles
        result.return_value = wrap64(self.registers[0])
        result.output = self.output
        return result

    # -- instruction semantics ---------------------------------------------------

    def _execute(
        self, instr: MachInstr, pc: int, next_pc: int, result: ExecutionResult
    ) -> Optional[int]:
        name = instr.name
        ops = instr.operands
        regs = self.registers

        if name == "nop":
            return next_pc
        if name == "hlt":
            return None
        if name == "movi" or name == "movis":
            regs[ops[0]] = wrap64(ops[1])
            return next_pc
        if name == "mov":
            regs[ops[0]] = regs[ops[1]]
            return next_pc
        if name in _ALU_REG:
            regs[ops[0]] = _ALU_REG[name](regs[ops[1]], regs[ops[2]])
            return next_pc
        if name in _ALU_IMM:
            regs[ops[0]] = _ALU_IMM[name](regs[ops[1]], ops[2])
            return next_pc
        if name in _CMP:
            regs[ops[0]] = int(_CMP[name](regs[ops[1]], regs[ops[2]]))
            return next_pc
        if name == "not":
            regs[ops[0]] = int(regs[ops[1]] == 0)
            return next_pc
        if name == "neg":
            regs[ops[0]] = wrap64(-regs[ops[1]])
            return next_pc
        if name == "bnot":
            regs[ops[0]] = wrap64(~regs[ops[1]])
            return next_pc
        if name == "ld":
            regs[ops[0]] = self.read_word(regs[ops[1]] + ops[2])
            return next_pc
        if name == "st":
            self.write_word(regs[ops[0]] + ops[1], regs[ops[2]])
            return next_pc
        if name == "ldx":
            regs[ops[0]] = self.read_word(regs[ops[1]] + regs[ops[2]])
            return next_pc
        if name == "stx":
            self.write_word(regs[ops[0]] + regs[ops[1]], regs[ops[2]])
            return next_pc
        if name == "leag":
            regs[ops[0]] = ops[1]
            return next_pc
        if name == "leas":
            regs[ops[0]] = regs[15] + ops[1]
            return next_pc
        if name == "ldg":
            regs[ops[0]] = self.read_word(ops[1])
            return next_pc
        if name == "stg":
            self.write_word(ops[0], regs[ops[1]])
            return next_pc
        if name == "jmp":
            return next_pc + ops[0]
        if name == "beqz":
            return next_pc + ops[1] if regs[ops[0]] == 0 else next_pc
        if name == "bnez":
            return next_pc + ops[1] if regs[ops[0]] != 0 else next_pc
        if name == "call":
            self._push_frame(next_pc)
            return ops[0]
        if name == "tcall":
            return ops[0]
        if name == "ret":
            if not self.control_stack:
                return None
            return self._pop_frame()
        if name == "ijmp":
            target = regs[ops[0]]
            if not 0 <= target < len(self.text):
                raise EmulationError(f"indirect jump out of range: {target}")
            return target
        if name == "syscall":
            return None if self._syscall(ops[0], result) else next_pc
        if name == "select":
            regs[ops[0]] = regs[ops[2]] if regs[ops[1]] != 0 else regs[ops[3]]
            return next_pc
        if name == "spadd":
            regs[15] = regs[15] + ops[0]
            return next_pc
        if name == "vld":
            base = regs[ops[1]] + regs[ops[2]]
            self.vector_registers[ops[0]] = [self.read_word(base + lane) for lane in range(4)]
            return next_pc
        if name == "vst":
            base = regs[ops[1]] + regs[ops[2]]
            for lane in range(4):
                self.write_word(base + lane, self.vector_registers[ops[0]][lane])
            return next_pc
        if name in ("vadd", "vsub", "vmul"):
            op = {"vadd": lambda a, b: a + b, "vsub": lambda a, b: a - b, "vmul": lambda a, b: a * b}[name]
            left = self.vector_registers[ops[1]]
            right = self.vector_registers[ops[2]]
            self.vector_registers[ops[0]] = [wrap64(op(a, b)) for a, b in zip(left, right)]
            return next_pc
        raise EmulationError(f"unimplemented instruction {name}")  # pragma: no cover

    def _push_frame(self, return_address: int) -> None:
        if len(self.control_stack) > 4096:
            raise EmulationError("call stack overflow (likely runaway recursion)")
        saved_regs = self.registers[7:15].copy()
        saved_vectors = [lane.copy() for lane in self.vector_registers]
        self.control_stack.append((return_address, saved_regs, saved_vectors))

    def _pop_frame(self) -> int:
        return_address, saved_regs, saved_vectors = self.control_stack.pop()
        self.registers[7:15] = saved_regs
        self.vector_registers = saved_vectors
        return return_address

    # -- builtins ------------------------------------------------------------------

    def _syscall(self, number: int, result: ExecutionResult) -> bool:
        """Execute a builtin.  Returns True when the program should halt."""
        name = BUILTIN_NAMES.get(number)
        regs = self.registers
        if name is None:
            raise EmulationError(f"unknown syscall number {number}")
        if name == "print_int":
            self.output.append(str(wrap64(regs[1])))
            self.output.append("\n")
        elif name == "print_char":
            self.output.append(chr(regs[1] & 0x10FFFF))
        elif name == "print_str":
            self.output.append(self.read_string(regs[1]))
        elif name == "read_int":
            if self._input_cursor < len(self.inputs):
                regs[0] = wrap64(self.inputs[self._input_cursor])
                self._input_cursor += 1
            else:
                regs[0] = 0
        elif name == "abs":
            regs[0] = wrap64(abs(regs[1]))
        elif name == "min":
            regs[0] = min(regs[1], regs[2])
        elif name == "max":
            regs[0] = max(regs[1], regs[2])
        elif name == "strcpy":
            destination, source = regs[1], regs[2]
            offset = 0
            while True:
                word = self.read_word(source + offset)
                self.write_word(destination + offset, word)
                offset += 1
                if word == 0 or offset > 65536:
                    break
            regs[0] = destination
        elif name == "strcmp":
            left, right = regs[1], regs[2]
            offset = 0
            value = 0
            while offset <= 65536:
                a = self.read_word(left + offset)
                b = self.read_word(right + offset)
                if a != b:
                    value = -1 if a < b else 1
                    break
                if a == 0:
                    break
                offset += 1
            regs[0] = value
        elif name == "strlen":
            address = regs[1]
            length = 0
            while self.read_word(address + length) != 0 and length <= 65536:
                length += 1
            regs[0] = length
        elif name == "memset":
            destination, value, count = regs[1], regs[2], regs[3]
            for offset in range(max(count, 0)):
                self.write_word(destination + offset, value)
            regs[0] = destination
        elif name == "memcpy":
            destination, source, count = regs[1], regs[2], regs[3]
            for offset in range(max(count, 0)):
                self.write_word(destination + offset, self.read_word(source + offset))
            regs[0] = destination
        elif name == "malloc":
            size = max(regs[1], 1)
            regs[0] = self.heap_pointer
            self.heap_pointer += size
        elif name == "free":
            regs[0] = 0
        elif name == "rand":
            self.rand_state = wrap64(self.rand_state * 6364136223846793005 + 1442695040888963407)
            regs[0] = (self.rand_state >> 17) & 0x7FFFFFFF
        elif name == "srand":
            self.rand_state = wrap64(regs[1] or 1)
        elif name == "exit":
            result.exited = True
            result.exit_code = wrap64(regs[1])
            regs[0] = regs[1]
            return True
        elif name == "assert":
            if regs[1] == 0:
                result.assertion_failed = True
                regs[0] = 0
                return True
            regs[0] = 1
        else:  # pragma: no cover - defensive
            raise EmulationError(f"unimplemented builtin {name}")
        return False


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise EmulationError("integer division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return wrap64(quotient)


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise EmulationError("integer modulo by zero")
    return wrap64(a - _c_div(a, b) * b)


_ALU_REG = {
    "add": lambda a, b: wrap64(a + b),
    "sub": lambda a, b: wrap64(a - b),
    "mul": lambda a, b: wrap64(a * b),
    "div": _c_div,
    "mod": _c_mod,
    "and": lambda a, b: wrap64(a & b),
    "or": lambda a, b: wrap64(a | b),
    "xor": lambda a, b: wrap64(a ^ b),
    "shl": lambda a, b: wrap64(a << (b & 63)),
    "shr": lambda a, b: wrap64(a >> (b & 63)),
}
_ALU_IMM = {
    "addi": lambda a, imm: wrap64(a + imm),
    "subi": lambda a, imm: wrap64(a - imm),
    "muli": lambda a, imm: wrap64(a * imm),
    "shli": lambda a, imm: wrap64(a << (imm & 63)),
    "shri": lambda a, imm: wrap64(a >> (imm & 63)),
    "andi": lambda a, imm: wrap64(a & imm),
    "ori": lambda a, imm: wrap64(a | imm),
    "xori": lambda a, imm: wrap64(a ^ imm),
}
_CMP = {
    "cmpeq": lambda a, b: a == b,
    "cmpne": lambda a, b: a != b,
    "cmplt": lambda a, b: a < b,
    "cmple": lambda a, b: a <= b,
    "cmpgt": lambda a, b: a > b,
    "cmpge": lambda a, b: a >= b,
}


def run_program(
    image: BinaryImage,
    args: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[int]] = None,
    max_steps: int = 2_000_000,
) -> ExecutionResult:
    """Run ``main`` of a linked image and return its observable behaviour."""
    return Emulator(image, inputs=inputs).run(args=args, max_steps=max_steps)


def run_function(
    image: BinaryImage,
    name: str,
    args: Sequence[int],
    inputs: Optional[Sequence[int]] = None,
    max_steps: int = 200_000,
) -> ExecutionResult:
    """Run a single function by symbol name with concrete arguments."""
    symbol = image.symbol(name)
    emulator = Emulator(image, inputs=inputs)
    return emulator.run(entry=symbol.offset, args=args, max_steps=max_steps)
