"""SIM64 emulator.

Interprets the machine code inside a :class:`repro.backend.binary.BinaryImage`.
It is used in three roles:

1. *functional correctness*: every BinTuner output must behave identically to
   the ``-O0`` build on the program's test inputs (the paper runs the test
   suites shipped with its benchmarks; we diff emulator outputs);
2. *dynamic diffing tools*: IMF-SIM-style random-sampling function comparison
   executes recovered functions with concrete arguments;
3. *cost model*: dynamic cycle counts drive the Table 3 speedup comparison.

The machine is word-addressed for data (8-byte words) and byte-addressed for
code.  ``CALL`` uses a register-window convention: the return address and
registers ``r7``..``r14`` (plus vector registers) are saved on an internal
control stack and restored by ``RET``; ``TCALL`` transfers without pushing.

Dispatch
--------

Emulation is the dominant per-candidate cost of a tuning campaign (the
``MeasureStage`` seam), so the interpreter ships two dispatch engines:

* the **reference** engine — decode one instruction at a time through a
  per-emulator cache and execute it through an if/elif chain over mnemonic
  names (:meth:`Emulator._execute`).  Slow, but a direct transcription of the
  ISA semantics; it is the oracle the table engine is differentially tested
  against, and ``REPRO_EMULATOR_DISPATCH=reference`` forces it.
* the **table** engine (the default) — programs are pre-decoded *once per
  process* into a :class:`DecodedProgram` (keyed by the sha256 of ``.text``,
  so the thousands of near-identical candidates of a campaign never re-decode
  a byte they share with a previous binary) whose basic blocks are fused into
  superinstructions: every straight-line run executes as a list of pre-bound
  per-instruction closures (operands, immediates and branch targets resolved
  at decode time, pypy-style) with the block's cycle cost pre-summed and a
  single control-flow decision at the block tail.

Both engines produce bit-for-bit identical :class:`ExecutionResult` values
(output, return value, steps, cycles) and raise the same exceptions at the
same program points; the step budget is enforced exactly by falling back to
single-instruction stepping when a block straddles the limit.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.backend.binary import BinaryImage, GLOBAL_BASE, HEAP_BASE, STACK_TOP
from repro.backend.isa import (
    BUILTIN_NAMES,
    EncodingError,
    MachInstr,
    OPCODES_BY_NAME,
    decode_instruction,
)
from repro.ir.values import wrap64

#: Environment knob selecting the dispatch engine: ``"table"`` (default) or
#: ``"reference"``.  Read per :meth:`Emulator.run`, so a test or CI job can
#: flip engines without rebuilding anything.
DISPATCH_ENV = "REPRO_EMULATOR_DISPATCH"
TABLE_DISPATCH = "table"
REFERENCE_DISPATCH = "reference"

#: Bound on fused superinstruction length.  Long straight-line runs are split
#: so the budget fast path (``steps + block_len <= max_steps``) stays tight.
MAX_BLOCK_OPS = 64

#: Bound on the process-level decoded-program cache (entries, LRU).  Each
#: entry holds one ``.text`` plus its decoded blocks; campaigns revisit a
#: small working set of distinct binaries per program.
PROGRAM_CACHE_SIZE = 256


def dispatch_mode() -> str:
    """The configured dispatch engine (``"table"`` unless overridden)."""
    mode = os.environ.get(DISPATCH_ENV, TABLE_DISPATCH).strip().lower()
    return REFERENCE_DISPATCH if mode == REFERENCE_DISPATCH else TABLE_DISPATCH


class EmulationError(Exception):
    """Raised on machine faults (bad opcode, division by zero, bad jump...)."""


class EmulationLimitExceeded(EmulationError):
    """Raised when the step budget is exhausted (possible non-termination)."""


@dataclass
class ExecutionResult:
    """Outcome of one emulation run."""

    return_value: int = 0
    output: List[str] = field(default_factory=list)
    steps: int = 0
    cycles: int = 0
    exited: bool = False
    exit_code: int = 0
    assertion_failed: bool = False
    #: Superinstruction blocks executed (table dispatch only; the reference
    #: engine leaves it 0).  Telemetry — never part of observable behaviour.
    blocks: int = 0

    @property
    def output_text(self) -> str:
        return "".join(self.output)

    def observable_state(self) -> Tuple[int, str]:
        """The externally visible behaviour used for equivalence checks."""
        return (self.return_value, self.output_text)


# ---------------------------------------------------------------------------
# Table dispatch: pre-bound per-instruction closures
# ---------------------------------------------------------------------------
#
# A *straight-line handler factory* takes an instruction's operand list and
# returns a closure ``op(emu)`` executing it against an emulator's mutable
# state.  A *tail factory* additionally receives the byte offset of the next
# instruction and returns ``tail(emu, result) -> next_pc | None`` — branch
# targets are resolved to absolute offsets at decode time, so taken and
# fall-through edges are a single attribute-free return.  Closures capture
# everything as default arguments (the fastest lookup CPython offers) and are
# emulator-independent, which is what makes a DecodedProgram shareable across
# every Emulator instance — and every thread — of the process.


def _c_div(a: int, b: int) -> int:
    if b == 0:
        raise EmulationError("integer division by zero")
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return wrap64(quotient)


def _c_mod(a: int, b: int) -> int:
    if b == 0:
        raise EmulationError("integer modulo by zero")
    return wrap64(a - _c_div(a, b) * b)


_ALU_REG = {
    "add": lambda a, b: wrap64(a + b),
    "sub": lambda a, b: wrap64(a - b),
    "mul": lambda a, b: wrap64(a * b),
    "div": _c_div,
    "mod": _c_mod,
    "and": lambda a, b: wrap64(a & b),
    "or": lambda a, b: wrap64(a | b),
    "xor": lambda a, b: wrap64(a ^ b),
    "shl": lambda a, b: wrap64(a << (b & 63)),
    "shr": lambda a, b: wrap64(a >> (b & 63)),
}
_ALU_IMM = {
    "addi": lambda a, imm: wrap64(a + imm),
    "subi": lambda a, imm: wrap64(a - imm),
    "muli": lambda a, imm: wrap64(a * imm),
    "shli": lambda a, imm: wrap64(a << (imm & 63)),
    "shri": lambda a, imm: wrap64(a >> (imm & 63)),
    "andi": lambda a, imm: wrap64(a & imm),
    "ori": lambda a, imm: wrap64(a | imm),
    "xori": lambda a, imm: wrap64(a ^ imm),
}
_CMP = {
    "cmpeq": lambda a, b: a == b,
    "cmpne": lambda a, b: a != b,
    "cmplt": lambda a, b: a < b,
    "cmple": lambda a, b: a <= b,
    "cmpgt": lambda a, b: a > b,
    "cmpge": lambda a, b: a >= b,
}

_VEC = {
    "vadd": lambda a, b: a + b,
    "vsub": lambda a, b: a - b,
    "vmul": lambda a, b: a * b,
}

_StraightOp = Callable[["Emulator"], None]
_TailOp = Callable[["Emulator", ExecutionResult], Optional[int]]


def _h_nop(ops) -> _StraightOp:
    def op(emu):
        pass

    return op


def _h_movi(ops) -> _StraightOp:
    def op(emu, d=ops[0], value=wrap64(ops[1])):
        emu.registers[d] = value

    return op


def _h_mov(ops) -> _StraightOp:
    def op(emu, d=ops[0], s=ops[1]):
        regs = emu.registers
        regs[d] = regs[s]

    return op


_MASK64 = (1 << 64) - 1
_SIGN64 = 1 << 63
_WRAP64 = 1 << 64


def _make_alu_reg(fn) -> Callable[[Sequence[int]], _StraightOp]:
    def factory(ops):
        def op(emu, _fn=fn, d=ops[0], a=ops[1], b=ops[2]):
            regs = emu.registers
            regs[d] = _fn(regs[a], regs[b])

        return op

    return factory


def _make_alu_imm(fn) -> Callable[[Sequence[int]], _StraightOp]:
    def factory(ops):
        def op(emu, _fn=fn, d=ops[0], a=ops[1], imm=ops[2]):
            regs = emu.registers
            regs[d] = _fn(regs[a], imm)

        return op

    return factory


# The inner-loop workhorses get hand-specialized closures with the 64-bit
# wrap inlined (one function call per op instead of three); everything else
# goes through the generic _ALU_REG/_ALU_IMM factories above.


def _h_add(ops) -> _StraightOp:
    def op(emu, d=ops[0], a=ops[1], b=ops[2], _m=_MASK64, _s=_SIGN64, _w=_WRAP64):
        regs = emu.registers
        value = (regs[a] + regs[b]) & _m
        regs[d] = value - _w if value >= _s else value

    return op


def _h_sub(ops) -> _StraightOp:
    def op(emu, d=ops[0], a=ops[1], b=ops[2], _m=_MASK64, _s=_SIGN64, _w=_WRAP64):
        regs = emu.registers
        value = (regs[a] - regs[b]) & _m
        regs[d] = value - _w if value >= _s else value

    return op


def _h_mul(ops) -> _StraightOp:
    def op(emu, d=ops[0], a=ops[1], b=ops[2], _m=_MASK64, _s=_SIGN64, _w=_WRAP64):
        regs = emu.registers
        value = (regs[a] * regs[b]) & _m
        regs[d] = value - _w if value >= _s else value

    return op


def _h_addi(ops) -> _StraightOp:
    def op(emu, d=ops[0], a=ops[1], imm=ops[2], _m=_MASK64, _s=_SIGN64, _w=_WRAP64):
        regs = emu.registers
        value = (regs[a] + imm) & _m
        regs[d] = value - _w if value >= _s else value

    return op


def _h_subi(ops) -> _StraightOp:
    def op(emu, d=ops[0], a=ops[1], imm=ops[2], _m=_MASK64, _s=_SIGN64, _w=_WRAP64):
        regs = emu.registers
        value = (regs[a] - imm) & _m
        regs[d] = value - _w if value >= _s else value

    return op


def _h_muli(ops) -> _StraightOp:
    def op(emu, d=ops[0], a=ops[1], imm=ops[2], _m=_MASK64, _s=_SIGN64, _w=_WRAP64):
        regs = emu.registers
        value = (regs[a] * imm) & _m
        regs[d] = value - _w if value >= _s else value

    return op


def _make_cmp(fn) -> Callable[[Sequence[int]], _StraightOp]:
    def factory(ops):
        def op(emu, _fn=fn, d=ops[0], a=ops[1], b=ops[2]):
            regs = emu.registers
            regs[d] = 1 if _fn(regs[a], regs[b]) else 0

        return op

    return factory


def _h_not(ops) -> _StraightOp:
    def op(emu, d=ops[0], s=ops[1]):
        regs = emu.registers
        regs[d] = 1 if regs[s] == 0 else 0

    return op


def _h_neg(ops) -> _StraightOp:
    def op(emu, _w=wrap64, d=ops[0], s=ops[1]):
        regs = emu.registers
        regs[d] = _w(-regs[s])

    return op


def _h_bnot(ops) -> _StraightOp:
    def op(emu, _w=wrap64, d=ops[0], s=ops[1]):
        regs = emu.registers
        regs[d] = _w(~regs[s])

    return op


def _h_ld(ops) -> _StraightOp:
    def op(emu, d=ops[0], b=ops[1], off=ops[2]):
        regs = emu.registers
        regs[d] = emu.memory.get(regs[b] + off, 0)

    return op


def _h_st(ops) -> _StraightOp:
    def op(emu, _w=wrap64, b=ops[0], off=ops[1], s=ops[2]):
        regs = emu.registers
        emu.memory[regs[b] + off] = _w(regs[s])

    return op


def _h_ldx(ops) -> _StraightOp:
    def op(emu, d=ops[0], b=ops[1], i=ops[2]):
        regs = emu.registers
        regs[d] = emu.memory.get(regs[b] + regs[i], 0)

    return op


def _h_stx(ops) -> _StraightOp:
    def op(emu, _w=wrap64, b=ops[0], i=ops[1], s=ops[2]):
        regs = emu.registers
        emu.memory[regs[b] + regs[i]] = _w(regs[s])

    return op


def _h_leag(ops) -> _StraightOp:
    def op(emu, d=ops[0], addr=ops[1]):
        emu.registers[d] = addr

    return op


def _h_leas(ops) -> _StraightOp:
    def op(emu, d=ops[0], off=ops[1]):
        regs = emu.registers
        regs[d] = regs[15] + off

    return op


def _h_ldg(ops) -> _StraightOp:
    def op(emu, d=ops[0], addr=ops[1]):
        emu.registers[d] = emu.memory.get(addr, 0)

    return op


def _h_stg(ops) -> _StraightOp:
    def op(emu, _w=wrap64, addr=ops[0], s=ops[1]):
        emu.memory[addr] = _w(emu.registers[s])

    return op


def _h_select(ops) -> _StraightOp:
    def op(emu, d=ops[0], c=ops[1], t=ops[2], f=ops[3]):
        regs = emu.registers
        regs[d] = regs[t] if regs[c] != 0 else regs[f]

    return op


def _h_spadd(ops) -> _StraightOp:
    def op(emu, off=ops[0]):
        regs = emu.registers
        regs[15] = regs[15] + off

    return op


def _h_vld(ops) -> _StraightOp:
    def op(emu, v=ops[0], a=ops[1], b=ops[2]):
        regs = emu.registers
        base = regs[a] + regs[b]
        get = emu.memory.get
        emu.vector_registers[v] = [
            get(base, 0), get(base + 1, 0), get(base + 2, 0), get(base + 3, 0)
        ]

    return op


def _h_vst(ops) -> _StraightOp:
    def op(emu, _w=wrap64, v=ops[0], a=ops[1], b=ops[2]):
        regs = emu.registers
        base = regs[a] + regs[b]
        memory = emu.memory
        lanes = emu.vector_registers[v]
        for index in range(4):
            memory[base + index] = _w(lanes[index])

    return op


def _make_vec(fn) -> Callable[[Sequence[int]], _StraightOp]:
    def factory(ops):
        def op(emu, _fn=fn, _w=wrap64, d=ops[0], a=ops[1], b=ops[2]):
            vectors = emu.vector_registers
            left = vectors[a]
            right = vectors[b]
            vectors[d] = [_w(_fn(x, y)) for x, y in zip(left, right)]

        return op

    return factory


_STRAIGHT_FACTORIES: Dict[str, Callable[[Sequence[int]], _StraightOp]] = {
    "nop": _h_nop,
    "movi": _h_movi,
    "movis": _h_movi,
    "mov": _h_mov,
    "not": _h_not,
    "neg": _h_neg,
    "bnot": _h_bnot,
    "ld": _h_ld,
    "st": _h_st,
    "ldx": _h_ldx,
    "stx": _h_stx,
    "leag": _h_leag,
    "leas": _h_leas,
    "ldg": _h_ldg,
    "stg": _h_stg,
    "select": _h_select,
    "spadd": _h_spadd,
    "vld": _h_vld,
    "vst": _h_vst,
}
_STRAIGHT_FACTORIES.update({name: _make_alu_reg(fn) for name, fn in _ALU_REG.items()})
_STRAIGHT_FACTORIES.update({name: _make_alu_imm(fn) for name, fn in _ALU_IMM.items()})
_STRAIGHT_FACTORIES.update({name: _make_cmp(fn) for name, fn in _CMP.items()})
_STRAIGHT_FACTORIES.update({name: _make_vec(fn) for name, fn in _VEC.items()})
_STRAIGHT_FACTORIES.update(
    {
        "add": _h_add,
        "sub": _h_sub,
        "mul": _h_mul,
        "addi": _h_addi,
        "subi": _h_subi,
        "muli": _h_muli,
    }
)


def _t_hlt(ops, next_pc, text_len) -> _TailOp:
    def tail(emu, result):
        return None

    return tail


def _t_jmp(ops, next_pc, text_len) -> _TailOp:
    def tail(emu, result, target=next_pc + ops[0]):
        return target

    return tail


def _t_beqz(ops, next_pc, text_len) -> _TailOp:
    def tail(emu, result, r=ops[0], taken=next_pc + ops[1], fall=next_pc):
        return taken if emu.registers[r] == 0 else fall

    return tail


def _t_bnez(ops, next_pc, text_len) -> _TailOp:
    def tail(emu, result, r=ops[0], taken=next_pc + ops[1], fall=next_pc):
        return taken if emu.registers[r] != 0 else fall

    return tail


def _t_call(ops, next_pc, text_len) -> _TailOp:
    def tail(emu, result, target=ops[0], ret=next_pc):
        emu._push_frame(ret)
        return target

    return tail


def _t_tcall(ops, next_pc, text_len) -> _TailOp:
    def tail(emu, result, target=ops[0]):
        return target

    return tail


def _t_ret(ops, next_pc, text_len) -> _TailOp:
    def tail(emu, result):
        if not emu.control_stack:
            return None
        return emu._pop_frame()

    return tail


def _t_ijmp(ops, next_pc, text_len) -> _TailOp:
    def tail(emu, result, r=ops[0], limit=text_len):
        target = emu.registers[r]
        if not 0 <= target < limit:
            raise EmulationError(f"indirect jump out of range: {target}")
        return target

    return tail


def _t_syscall(ops, next_pc, text_len) -> _TailOp:
    def tail(emu, result, number=ops[0], fall=next_pc):
        return None if emu._syscall(number, result) else fall

    return tail


_TAIL_FACTORIES: Dict[str, Callable[[Sequence[int], int, int], _TailOp]] = {
    "hlt": _t_hlt,
    "jmp": _t_jmp,
    "beqz": _t_beqz,
    "bnez": _t_bnez,
    "call": _t_call,
    "tcall": _t_tcall,
    "ret": _t_ret,
    "ijmp": _t_ijmp,
    "syscall": _t_syscall,
}


def _fallthrough(offset: int) -> _TailOp:
    """A block tail that is not an instruction: continue at ``offset``.

    Used where a straight-line run is split (the :data:`MAX_BLOCK_OPS` bound,
    a decode error *past* the entry, or running off the end of ``.text``) —
    the next dispatch of ``offset`` re-raises any fault exactly where the
    reference engine would, because blocks are built lazily from reached pcs.
    """

    def tail(emu, result, target=offset):
        return target

    return tail


#: A fused superinstruction: ``(straight_ops, step_count, cycles, tail)``.
#: ``step_count`` counts real instructions (tail included when it is one);
#: ``cycles`` is their pre-summed abstract latency.  Plain tuples: block
#: dispatch is the single hottest load of a campaign.
BasicBlock = Tuple[Tuple[_StraightOp, ...], int, int, _TailOp]


class DecodedProgram:
    """The decoded, closure-compiled view of one ``.text`` section.

    Blocks are built lazily from actually-reached pcs (so decode faults keep
    their runtime timing) and memoized forever: the object is immutable input
    plus a monotonically growing block map, safe to share across emulators
    and threads.  Jumping into the middle of an existing block simply builds
    a second, overlapping block starting at the target — blocks are pure
    decoded views, not a partition.
    """

    __slots__ = ("text", "blocks")

    def __init__(self, text: bytes) -> None:
        self.text = text
        self.blocks: Dict[int, BasicBlock] = {}

    def block_at(self, pc: int) -> BasicBlock:
        """The block starting at ``pc`` (built and memoized on first use)."""
        text = self.text
        if not 0 <= pc < len(text):
            raise EmulationError(f"program counter out of range: {pc}")
        ops: List[_StraightOp] = []
        cycles = 0
        offset = pc
        text_len = len(text)
        while True:
            try:
                instr, next_offset = decode_instruction(text, offset)
            except EncodingError:
                if offset == pc:
                    # The entry itself is undecodable: raise now, which *is*
                    # runtime for a lazily built block — the reference engine
                    # faults at exactly this pc.
                    raise
                tail = _fallthrough(offset)
                break
            name = instr.name
            cycles += OPCODES_BY_NAME[name].cycles
            tail_factory = _TAIL_FACTORIES.get(name)
            if tail_factory is not None:
                tail = tail_factory(instr.operands, next_offset, text_len)
                block = (tuple(ops), len(ops) + 1, cycles, tail)
                self.blocks[pc] = block
                return block
            ops.append(_STRAIGHT_FACTORIES[name](instr.operands))
            offset = next_offset
            if offset >= text_len or len(ops) >= MAX_BLOCK_OPS:
                tail = _fallthrough(offset)
                break
        block = (tuple(ops), len(ops), cycles, tail)
        self.blocks[pc] = block
        return block


_PROGRAM_CACHE: "OrderedDict[bytes, DecodedProgram]" = OrderedDict()
_PROGRAM_CACHE_LOCK = threading.Lock()


def decoded_program(text: bytes) -> DecodedProgram:
    """The process-level :class:`DecodedProgram` for ``text``.

    Keyed by ``sha256(text)`` and bounded by :data:`PROGRAM_CACHE_SIZE`
    (LRU), so a campaign's near-identical candidates share decode work and
    already-built blocks across every emulation — including across the
    thread lanes of a worker, which all read one instance.
    """
    key = hashlib.sha256(text).digest()
    with _PROGRAM_CACHE_LOCK:
        program = _PROGRAM_CACHE.get(key)
        if program is not None:
            _PROGRAM_CACHE.move_to_end(key)
            return program
    program = DecodedProgram(text)
    with _PROGRAM_CACHE_LOCK:
        existing = _PROGRAM_CACHE.get(key)
        if existing is not None:
            return existing
        _PROGRAM_CACHE[key] = program
        while len(_PROGRAM_CACHE) > PROGRAM_CACHE_SIZE:
            _PROGRAM_CACHE.popitem(last=False)
    return program


def reset_decoded_programs() -> None:
    """Forget every cached decoded program (test hook)."""
    with _PROGRAM_CACHE_LOCK:
        _PROGRAM_CACHE.clear()


def decoded_program_cache_size() -> int:
    """Number of decoded programs currently cached (bench/telemetry probe)."""
    with _PROGRAM_CACHE_LOCK:
        return len(_PROGRAM_CACHE)


class Emulator:
    """A single-program SIM64 interpreter."""

    def __init__(self, image: BinaryImage, inputs: Optional[Sequence[int]] = None) -> None:
        self.image = image
        self.text = image.text
        self.registers: List[int] = [0] * 16
        self.vector_registers: List[List[int]] = [[0, 0, 0, 0] for _ in range(8)]
        self.memory: Dict[int, int] = {}
        self.inputs: List[int] = list(inputs or [])
        self._input_cursor = 0
        self.output: List[str] = []
        self.heap_pointer = HEAP_BASE
        self.rand_state = 0x2545F4914F6CDD1D
        self.control_stack: List[Tuple[int, List[int], List[List[int]]]] = []
        self.cycles = 0
        self._decode_cache: Dict[int, Tuple[MachInstr, int]] = {}
        self._load_initial_memory()
        self.registers[15] = STACK_TOP

    # -- memory -------------------------------------------------------------

    def _load_initial_memory(self) -> None:
        self.memory.update(self.image.initial_memory())
        rodata = self.image.rodata
        rodata_base = int(self.image.metadata.get("rodata_base", GLOBAL_BASE))
        for index in range(len(rodata) // 8):
            value = struct.unpack_from("<q", rodata, index * 8)[0]
            self.memory[rodata_base + index] = value

    def read_word(self, address: int) -> int:
        return self.memory.get(address, 0)

    def write_word(self, address: int, value: int) -> None:
        self.memory[address] = wrap64(value)

    def read_string(self, address: int, limit: int = 4096) -> str:
        chars: List[str] = []
        for offset in range(limit):
            word = self.read_word(address + offset)
            if word == 0:
                break
            chars.append(chr(word & 0x10FFFF))
        return "".join(chars)

    # -- execution ------------------------------------------------------------

    def _decode(self, offset: int) -> Tuple[MachInstr, int]:
        cached = self._decode_cache.get(offset)
        if cached is None:
            if not 0 <= offset < len(self.text):
                raise EmulationError(f"program counter out of range: {offset}")
            cached = decode_instruction(self.text, offset)
            self._decode_cache[offset] = cached
        return cached

    def run(
        self,
        entry: Optional[int] = None,
        args: Optional[Sequence[int]] = None,
        max_steps: int = 2_000_000,
    ) -> ExecutionResult:
        """Run from ``entry`` (default: the image entry point) until return."""
        result = ExecutionResult()
        pc = self.image.entry_point if entry is None else entry
        for index, value in enumerate(args or []):
            self.registers[index + 1] = wrap64(value)
        # Each run's cycle count stands alone: a reused emulator instance
        # (run_function-style probing) must not leak the previous run's
        # cycles into this run's cost-model numbers.
        self.cycles = 0
        if dispatch_mode() == REFERENCE_DISPATCH:
            steps = self._run_reference(pc, 0, max_steps, result)
        else:
            steps = self._run_table(pc, max_steps, result)
        result.steps = steps
        result.cycles = self.cycles
        result.return_value = wrap64(self.registers[0])
        result.output = self.output
        return result

    def _run_reference(
        self, pc: int, steps: int, max_steps: int, result: ExecutionResult
    ) -> int:
        """The reference engine: decode-and-execute one instruction per loop.

        Also the table engine's exact-budget continuation: when a fused block
        would overshoot ``max_steps``, execution hands over here (at most one
        block's worth of instructions remain before the limit), preserving
        the limit check — and its exception — instruction by instruction.
        """
        while True:
            if steps >= max_steps:
                raise EmulationLimitExceeded(
                    f"exceeded {max_steps} steps at pc={pc} in {self.image.name}"
                )
            instr, next_pc = self._decode(pc)
            steps += 1
            self.cycles += instr.spec.cycles
            new_pc = self._execute(instr, pc, next_pc, result)
            if new_pc is None:
                return steps
            pc = new_pc

    def _run_table(self, pc: int, max_steps: int, result: ExecutionResult) -> int:
        """The table engine: one fused superinstruction block per loop."""
        program = decoded_program(self.text)
        blocks = program.blocks
        build = program.block_at
        steps = 0
        cycles = 0
        executed_blocks = 0
        while True:
            block = blocks.get(pc)
            if block is None:
                block = build(pc)
            ops, count, block_cycles, tail = block
            if steps + count > max_steps:
                # The block straddles the step budget: flush the fast-path
                # counters and finish under the reference engine so the
                # limit is enforced at exactly the right instruction.
                self.cycles += cycles
                result.blocks = executed_blocks
                return self._run_reference(pc, steps, max_steps, result)
            for op in ops:
                op(self)
            steps += count
            cycles += block_cycles
            executed_blocks += 1
            next_pc = tail(self, result)
            if next_pc is None:
                break
            pc = next_pc
        self.cycles += cycles
        result.blocks = executed_blocks
        return steps

    # -- instruction semantics ---------------------------------------------------

    def _execute(
        self, instr: MachInstr, pc: int, next_pc: int, result: ExecutionResult
    ) -> Optional[int]:
        name = instr.name
        ops = instr.operands
        regs = self.registers

        if name == "nop":
            return next_pc
        if name == "hlt":
            return None
        if name == "movi" or name == "movis":
            regs[ops[0]] = wrap64(ops[1])
            return next_pc
        if name == "mov":
            regs[ops[0]] = regs[ops[1]]
            return next_pc
        if name in _ALU_REG:
            regs[ops[0]] = _ALU_REG[name](regs[ops[1]], regs[ops[2]])
            return next_pc
        if name in _ALU_IMM:
            regs[ops[0]] = _ALU_IMM[name](regs[ops[1]], ops[2])
            return next_pc
        if name in _CMP:
            regs[ops[0]] = int(_CMP[name](regs[ops[1]], regs[ops[2]]))
            return next_pc
        if name == "not":
            regs[ops[0]] = int(regs[ops[1]] == 0)
            return next_pc
        if name == "neg":
            regs[ops[0]] = wrap64(-regs[ops[1]])
            return next_pc
        if name == "bnot":
            regs[ops[0]] = wrap64(~regs[ops[1]])
            return next_pc
        if name == "ld":
            regs[ops[0]] = self.read_word(regs[ops[1]] + ops[2])
            return next_pc
        if name == "st":
            self.write_word(regs[ops[0]] + ops[1], regs[ops[2]])
            return next_pc
        if name == "ldx":
            regs[ops[0]] = self.read_word(regs[ops[1]] + regs[ops[2]])
            return next_pc
        if name == "stx":
            self.write_word(regs[ops[0]] + regs[ops[1]], regs[ops[2]])
            return next_pc
        if name == "leag":
            regs[ops[0]] = ops[1]
            return next_pc
        if name == "leas":
            regs[ops[0]] = regs[15] + ops[1]
            return next_pc
        if name == "ldg":
            regs[ops[0]] = self.read_word(ops[1])
            return next_pc
        if name == "stg":
            self.write_word(ops[0], regs[ops[1]])
            return next_pc
        if name == "jmp":
            return next_pc + ops[0]
        if name == "beqz":
            return next_pc + ops[1] if regs[ops[0]] == 0 else next_pc
        if name == "bnez":
            return next_pc + ops[1] if regs[ops[0]] != 0 else next_pc
        if name == "call":
            self._push_frame(next_pc)
            return ops[0]
        if name == "tcall":
            return ops[0]
        if name == "ret":
            if not self.control_stack:
                return None
            return self._pop_frame()
        if name == "ijmp":
            target = regs[ops[0]]
            if not 0 <= target < len(self.text):
                raise EmulationError(f"indirect jump out of range: {target}")
            return target
        if name == "syscall":
            return None if self._syscall(ops[0], result) else next_pc
        if name == "select":
            regs[ops[0]] = regs[ops[2]] if regs[ops[1]] != 0 else regs[ops[3]]
            return next_pc
        if name == "spadd":
            regs[15] = regs[15] + ops[0]
            return next_pc
        if name == "vld":
            base = regs[ops[1]] + regs[ops[2]]
            self.vector_registers[ops[0]] = [self.read_word(base + lane) for lane in range(4)]
            return next_pc
        if name == "vst":
            base = regs[ops[1]] + regs[ops[2]]
            for lane in range(4):
                self.write_word(base + lane, self.vector_registers[ops[0]][lane])
            return next_pc
        if name in _VEC:
            op = _VEC[name]
            left = self.vector_registers[ops[1]]
            right = self.vector_registers[ops[2]]
            self.vector_registers[ops[0]] = [wrap64(op(a, b)) for a, b in zip(left, right)]
            return next_pc
        raise EmulationError(f"unimplemented instruction {name}")  # pragma: no cover

    def _push_frame(self, return_address: int) -> None:
        if len(self.control_stack) > 4096:
            raise EmulationError("call stack overflow (likely runaway recursion)")
        saved_regs = self.registers[7:15].copy()
        saved_vectors = [lane.copy() for lane in self.vector_registers]
        self.control_stack.append((return_address, saved_regs, saved_vectors))

    def _pop_frame(self) -> int:
        return_address, saved_regs, saved_vectors = self.control_stack.pop()
        self.registers[7:15] = saved_regs
        self.vector_registers = saved_vectors
        return return_address

    # -- builtins ------------------------------------------------------------------

    def _syscall(self, number: int, result: ExecutionResult) -> bool:
        """Execute a builtin.  Returns True when the program should halt."""
        name = BUILTIN_NAMES.get(number)
        regs = self.registers
        if name is None:
            raise EmulationError(f"unknown syscall number {number}")
        if name == "print_int":
            self.output.append(str(wrap64(regs[1])))
            self.output.append("\n")
        elif name == "print_char":
            self.output.append(chr(regs[1] & 0x10FFFF))
        elif name == "print_str":
            self.output.append(self.read_string(regs[1]))
        elif name == "read_int":
            if self._input_cursor < len(self.inputs):
                regs[0] = wrap64(self.inputs[self._input_cursor])
                self._input_cursor += 1
            else:
                regs[0] = 0
        elif name == "abs":
            regs[0] = wrap64(abs(regs[1]))
        elif name == "min":
            regs[0] = min(regs[1], regs[2])
        elif name == "max":
            regs[0] = max(regs[1], regs[2])
        elif name == "strcpy":
            destination, source = regs[1], regs[2]
            offset = 0
            while True:
                word = self.read_word(source + offset)
                self.write_word(destination + offset, word)
                offset += 1
                if word == 0 or offset > 65536:
                    break
            regs[0] = destination
        elif name == "strcmp":
            left, right = regs[1], regs[2]
            offset = 0
            value = 0
            while offset <= 65536:
                a = self.read_word(left + offset)
                b = self.read_word(right + offset)
                if a != b:
                    value = -1 if a < b else 1
                    break
                if a == 0:
                    break
                offset += 1
            regs[0] = value
        elif name == "strlen":
            address = regs[1]
            length = 0
            while self.read_word(address + length) != 0 and length <= 65536:
                length += 1
            regs[0] = length
        elif name == "memset":
            destination, value, count = regs[1], regs[2], regs[3]
            for offset in range(max(count, 0)):
                self.write_word(destination + offset, value)
            regs[0] = destination
        elif name == "memcpy":
            destination, source, count = regs[1], regs[2], regs[3]
            for offset in range(max(count, 0)):
                self.write_word(destination + offset, self.read_word(source + offset))
            regs[0] = destination
        elif name == "malloc":
            size = max(regs[1], 1)
            regs[0] = self.heap_pointer
            self.heap_pointer += size
        elif name == "free":
            regs[0] = 0
        elif name == "rand":
            self.rand_state = wrap64(self.rand_state * 6364136223846793005 + 1442695040888963407)
            regs[0] = (self.rand_state >> 17) & 0x7FFFFFFF
        elif name == "srand":
            self.rand_state = wrap64(regs[1] or 1)
        elif name == "exit":
            result.exited = True
            result.exit_code = wrap64(regs[1])
            regs[0] = regs[1]
            return True
        elif name == "assert":
            if regs[1] == 0:
                result.assertion_failed = True
                regs[0] = 0
                return True
            regs[0] = 1
        else:  # pragma: no cover - defensive
            raise EmulationError(f"unimplemented builtin {name}")
        return False


def run_program(
    image: BinaryImage,
    args: Optional[Sequence[int]] = None,
    inputs: Optional[Sequence[int]] = None,
    max_steps: int = 2_000_000,
) -> ExecutionResult:
    """Run ``main`` of a linked image and return its observable behaviour."""
    return Emulator(image, inputs=inputs).run(args=args, max_steps=max_steps)


def run_function(
    image: BinaryImage,
    name: str,
    args: Sequence[int],
    inputs: Optional[Sequence[int]] = None,
    max_steps: int = 200_000,
) -> ExecutionResult:
    """Run a single function by symbol name with concrete arguments."""
    symbol = image.symbol(name)
    emulator = Emulator(image, inputs=inputs)
    return emulator.run(entry=symbol.offset, args=args, max_steps=max_steps)
