"""Execution cost model.

The paper's Table 3 compares execution speedups of ``-O3`` builds against the
BinTuner-tuned builds.  Without the authors' hardware we rely on the
emulator's deterministic cycle counts (every opcode carries an abstract
latency in :mod:`repro.backend.isa`).  The cost model offers both:

* a *dynamic* estimate: run the program in the emulator and report cycles;
* a *static* estimate: sum per-instruction latencies weighted by a crude
  loop-nesting heuristic — useful when a workload has no runnable ``main``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.disassembler import disassemble
from repro.analysis.emulator import EmulationError, run_program
from repro.backend.binary import BinaryImage
from repro.backend.isa import OPCODES_BY_NAME


def static_cycle_estimate(image: BinaryImage, loop_weight: int = 8) -> int:
    """Weighted static cycle estimate over the recovered CFG.

    Instructions in blocks that participate in (an approximation of) a loop
    are weighted by ``loop_weight`` to mimic their dynamic importance.
    """
    program = disassemble(image)
    total = 0
    for function in program.functions.values():
        loop_blocks = set()
        for start, block in function.blocks.items():
            for successor in block.successors:
                if successor <= start:
                    loop_blocks.add(start)
                    loop_blocks.add(successor)
        for start, block in function.blocks.items():
            weight = loop_weight if start in loop_blocks else 1
            for _, instr in block.instructions:
                total += OPCODES_BY_NAME[instr.name].cycles * weight
    return total


@dataclass
class CostReport:
    """Cycle cost of executing a binary on its workload."""

    cycles: int
    steps: int
    dynamic: bool


class CostModel:
    """Estimates the runtime cost of a linked binary."""

    def __init__(self, args: Optional[Sequence[int]] = None, inputs: Optional[Sequence[int]] = None,
                 max_steps: int = 2_000_000) -> None:
        self.args = list(args or [])
        self.inputs = list(inputs or [])
        self.max_steps = max_steps

    def measure(self, image: BinaryImage) -> CostReport:
        """Dynamic cycle count; falls back to the static estimate on faults."""
        try:
            result = run_program(image, args=self.args, inputs=self.inputs, max_steps=self.max_steps)
            return CostReport(cycles=result.cycles, steps=result.steps, dynamic=True)
        except EmulationError:
            return CostReport(cycles=static_cycle_estimate(image), steps=0, dynamic=False)

    def speedup(self, baseline: BinaryImage, candidate: BinaryImage) -> float:
        """Relative speedup of ``candidate`` over ``baseline`` (1.0 = equal)."""
        base = self.measure(baseline).cycles
        cand = self.measure(candidate).cycles
        if cand == 0:
            return 1.0
        return base / cand
