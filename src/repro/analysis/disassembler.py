"""Disassembly and structure recovery (the IDA Pro stand-in).

Given a linked :class:`BinaryImage`, the disassembler decodes every function's
byte range, splits it into basic blocks at branch targets, reconstructs the
intra-procedural CFG (including indirect jumps through jump tables, recovered
by scanning ``.rodata`` for code addresses that fall inside the function), and
builds the inter-procedural call graph.

Diffing tools consume the recovered structures only — never the IR — so the
pipeline "compile, strip to bytes, recover, compare" matches how the paper's
tools operate on real binaries.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.backend.binary import BinaryImage, Symbol
from repro.backend.isa import MachInstr, decode_stream


@dataclass
class RecoveredBlock:
    """A recovered basic block: [start, end) byte range in .text."""

    start: int
    end: int
    instructions: List[Tuple[int, MachInstr]] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return self.end - self.start

    def mnemonics(self) -> List[str]:
        return [instr.name for _, instr in self.instructions]

    def raw_bytes(self, text: bytes) -> bytes:
        return text[self.start : self.end]

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class RecoveredFunction:
    """A recovered function with its CFG."""

    name: str
    start: int
    end: int
    blocks: Dict[int, RecoveredBlock] = field(default_factory=dict)
    calls: List[int] = field(default_factory=list)
    tail_calls: List[int] = field(default_factory=list)
    syscalls: List[int] = field(default_factory=list)

    @property
    def entry(self) -> int:
        return self.start

    @property
    def block_count(self) -> int:
        return len(self.blocks)

    @property
    def edge_count(self) -> int:
        return sum(len(block.successors) for block in self.blocks.values())

    @property
    def instruction_count(self) -> int:
        return sum(len(block) for block in self.blocks.values())

    def cfg(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        for start, block in self.blocks.items():
            graph.add_node(start, size=block.size, instructions=len(block))
        for start, block in self.blocks.items():
            for successor in block.successors:
                if successor in self.blocks:
                    graph.add_edge(start, successor)
        return graph

    def mnemonic_sequence(self) -> List[str]:
        out: List[str] = []
        for start in sorted(self.blocks):
            out.extend(self.blocks[start].mnemonics())
        return out


@dataclass
class RecoveredProgram:
    """All recovered functions plus the call graph of an image."""

    image: BinaryImage
    functions: Dict[str, RecoveredFunction] = field(default_factory=dict)

    def function_names(self) -> List[str]:
        return list(self.functions)

    def non_library_functions(self) -> List[RecoveredFunction]:
        return list(self.functions.values())

    def total_blocks(self) -> int:
        return sum(fn.block_count for fn in self.functions.values())

    def total_edges(self) -> int:
        return sum(fn.edge_count for fn in self.functions.values())

    def call_graph(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        by_offset = {fn.start: name for name, fn in self.functions.items()}
        for name in self.functions:
            graph.add_node(name)
        for name, fn in self.functions.items():
            for target in fn.calls + fn.tail_calls:
                callee = by_offset.get(target)
                if callee is None:
                    containing = self.image.function_at(target)
                    callee = containing.name if containing else None
                if callee is not None:
                    graph.add_edge(name, callee)
        return graph


class Disassembler:
    """Recovers functions, basic blocks, CFGs and the call graph."""

    def __init__(self, image: BinaryImage) -> None:
        self.image = image
        self.text = image.text
        self._rodata_code_addresses = self._collect_rodata_code_addresses()

    def _collect_rodata_code_addresses(self) -> List[int]:
        """Words in .rodata that look like code addresses (jump-table entries)."""
        addresses: List[int] = []
        rodata = self.image.rodata
        for index in range(len(rodata) // 8):
            value = struct.unpack_from("<q", rodata, index * 8)[0]
            if 0 <= value < len(self.text):
                addresses.append(value)
        return addresses

    # -- function recovery -----------------------------------------------------

    def disassemble(self) -> RecoveredProgram:
        program = RecoveredProgram(image=self.image)
        for symbol in self.image.function_symbols():
            program.functions[symbol.name] = self._recover_function(symbol)
        return program

    def _recover_function(self, symbol: Symbol) -> RecoveredFunction:
        start, end = symbol.offset, symbol.offset + symbol.size
        decoded = decode_stream(self.text, start, end)
        by_offset = {offset: instr for offset, instr in decoded}
        sizes = {offset: instr.size for offset, instr in decoded}

        leaders: Set[int] = {start}
        calls: List[int] = []
        tail_calls: List[int] = []
        syscalls: List[int] = []
        for offset, instr in decoded:
            next_offset = offset + instr.size
            if instr.name in ("jmp", "beqz", "bnez"):
                relative = instr.operands[-1]
                target = next_offset + relative
                if start <= target < end:
                    leaders.add(target)
                if next_offset < end:
                    leaders.add(next_offset)
            elif instr.name in ("ret", "hlt", "ijmp", "tcall"):
                if next_offset < end:
                    leaders.add(next_offset)
                if instr.name == "tcall":
                    tail_calls.append(instr.operands[0])
            elif instr.name == "call":
                calls.append(instr.operands[0])
            elif instr.name == "syscall":
                syscalls.append(instr.operands[0])
        for address in self._rodata_code_addresses:
            if start <= address < end:
                leaders.add(address)

        ordered_leaders = sorted(leaders)
        function = RecoveredFunction(
            name=symbol.name,
            start=start,
            end=end,
            calls=calls,
            tail_calls=tail_calls,
            syscalls=syscalls,
        )
        for index, leader in enumerate(ordered_leaders):
            block_end = ordered_leaders[index + 1] if index + 1 < len(ordered_leaders) else end
            block = RecoveredBlock(start=leader, end=block_end)
            offset = leader
            while offset < block_end and offset in by_offset:
                block.instructions.append((offset, by_offset[offset]))
                offset += sizes[offset]
            block.end = offset if block.instructions else block_end
            function.blocks[leader] = block

        self._connect_blocks(function, end)
        return function

    def _connect_blocks(self, function: RecoveredFunction, end: int) -> None:
        block_starts = sorted(function.blocks)
        for leader, block in function.blocks.items():
            if not block.instructions:
                continue
            last_offset, last = block.instructions[-1]
            fall_through = last_offset + last.size
            successors: List[int] = []
            if last.name == "jmp":
                successors.append(fall_through + last.operands[0])
            elif last.name in ("beqz", "bnez"):
                successors.append(fall_through + last.operands[1])
                if fall_through < end:
                    successors.append(fall_through)
            elif last.name in ("ret", "hlt", "tcall"):
                pass
            elif last.name == "ijmp":
                successors.extend(
                    address
                    for address in self._rodata_code_addresses
                    if function.start <= address < function.end
                )
            else:
                if fall_through < end:
                    successors.append(fall_through)
            seen: Set[int] = set()
            for successor in successors:
                if successor in function.blocks and successor not in seen:
                    seen.add(successor)
                    block.successors.append(successor)


def disassemble(image: BinaryImage) -> RecoveredProgram:
    """Convenience wrapper around :class:`Disassembler`."""
    return Disassembler(image).disassemble()
