"""Binary analysis substrate.

Everything the diffing tools and experiments need to *consume* a linked
:class:`repro.backend.binary.BinaryImage`:

* :mod:`repro.analysis.disassembler` — linear-sweep decoding, basic-block and
  CFG recovery, call-graph construction (the IDA-Pro stand-in);
* :mod:`repro.analysis.emulator` — a full SIM64 machine emulator used for
  functional-correctness checks, dynamic diffing tools (IMF-SIM style) and the
  cycle-accurate cost model behind the paper's Table 3;
* :mod:`repro.analysis.features` — per-function statistical features shared by
  the scalable diffing tools (BinDiff-like, VulSeeker, Multi-MH, ...).
"""

from repro.analysis.disassembler import (
    Disassembler,
    RecoveredBlock,
    RecoveredFunction,
    RecoveredProgram,
    disassemble,
)
from repro.analysis.emulator import (
    Emulator,
    EmulationError,
    EmulationLimitExceeded,
    ExecutionResult,
    run_program,
    run_function,
)
from repro.analysis.features import (
    FunctionFeatures,
    extract_function_features,
    extract_program_features,
)
from repro.analysis.cost_model import CostModel, static_cycle_estimate

__all__ = [
    "Disassembler",
    "RecoveredBlock",
    "RecoveredFunction",
    "RecoveredProgram",
    "disassemble",
    "Emulator",
    "EmulationError",
    "EmulationLimitExceeded",
    "ExecutionResult",
    "run_program",
    "run_function",
    "FunctionFeatures",
    "extract_function_features",
    "extract_program_features",
    "CostModel",
    "static_cycle_estimate",
]
