"""Statistical per-function features over recovered binaries.

These descriptive numeric features are the common currency of the scalable
diffing approaches the paper surveys (§3.2): numbers of blocks, edges, calls,
transfer instructions, arithmetic instructions, and so on.  Several of the
re-implemented tools (BinDiff-like matching, VulSeeker, Multi-MH's block
signatures, the provenance classifier, the anti-virus feature scanners) share
this module.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.analysis.disassembler import RecoveredFunction, RecoveredProgram

#: Instruction categories used for the numeric feature vectors.
CATEGORIES: Dict[str, str] = {
    "add": "arith", "sub": "arith", "mul": "arith", "div": "arith", "mod": "arith",
    "addi": "arith", "subi": "arith", "muli": "arith", "neg": "arith",
    "and": "logic", "or": "logic", "xor": "logic", "shl": "logic", "shr": "logic",
    "andi": "logic", "ori": "logic", "xori": "logic", "shli": "logic", "shri": "logic",
    "bnot": "logic", "not": "logic",
    "cmpeq": "cmp", "cmpne": "cmp", "cmplt": "cmp", "cmple": "cmp",
    "cmpgt": "cmp", "cmpge": "cmp", "select": "cmp",
    "ld": "mem", "st": "mem", "ldx": "mem", "stx": "mem", "ldg": "mem",
    "stg": "mem", "leag": "mem", "leas": "mem",
    "jmp": "transfer", "beqz": "transfer", "bnez": "transfer", "ijmp": "transfer",
    "call": "call", "tcall": "call", "syscall": "call", "ret": "transfer",
    "movi": "move", "movis": "move", "mov": "move",
    "vld": "vector", "vst": "vector", "vadd": "vector", "vsub": "vector", "vmul": "vector",
    "spadd": "stack", "nop": "nop", "hlt": "transfer",
}

FEATURE_NAMES = [
    "blocks",
    "edges",
    "instructions",
    "bytes",
    "arith",
    "logic",
    "cmp",
    "mem",
    "transfer",
    "call",
    "move",
    "vector",
    "stack",
    "nop",
    "constants",
    "calls_out",
    "loops",
    "max_block_size",
]


@dataclass
class FunctionFeatures:
    """A numeric feature vector describing one recovered function."""

    name: str
    values: Dict[str, float] = field(default_factory=dict)

    def vector(self) -> np.ndarray:
        return np.array([self.values.get(key, 0.0) for key in FEATURE_NAMES], dtype=float)

    def normalized(self) -> np.ndarray:
        vector = self.vector()
        norm = np.linalg.norm(vector)
        return vector / norm if norm else vector


def extract_function_features(function: RecoveredFunction) -> FunctionFeatures:
    """Compute the feature vector of a recovered function."""
    counts: Counter = Counter()
    constants = 0
    for block in function.blocks.values():
        for _, instr in block.instructions:
            counts[CATEGORIES.get(instr.name, "other")] += 1
            if instr.name in ("movi", "movis"):
                constants += 1
    cfg = function.cfg()
    try:
        loop_count = sum(1 for _ in __import__("networkx").simple_cycles(cfg)) if function.block_count <= 40 else _back_edge_count(function)
    except Exception:
        loop_count = _back_edge_count(function)
    features = {
        "blocks": float(function.block_count),
        "edges": float(function.edge_count),
        "instructions": float(function.instruction_count),
        "bytes": float(function.end - function.start),
        "constants": float(constants),
        "calls_out": float(len(function.calls) + len(function.tail_calls) + len(function.syscalls)),
        "loops": float(loop_count),
        "max_block_size": float(max((len(b) for b in function.blocks.values()), default=0)),
    }
    for category in ("arith", "logic", "cmp", "mem", "transfer", "call", "move", "vector", "stack", "nop"):
        features[category] = float(counts.get(category, 0))
    return FunctionFeatures(name=function.name, values=features)


def _back_edge_count(function: RecoveredFunction) -> int:
    """Cheap loop estimate: edges that target an earlier (dominating-ish) block."""
    count = 0
    for start, block in function.blocks.items():
        for successor in block.successors:
            if successor <= start:
                count += 1
    return count


def extract_program_features(program: RecoveredProgram) -> Dict[str, FunctionFeatures]:
    """Feature vectors for every recovered function."""
    return {
        name: extract_function_features(function)
        for name, function in program.functions.items()
    }


def feature_distance(left: FunctionFeatures, right: FunctionFeatures) -> float:
    """Cosine distance between two normalized feature vectors (0 = identical)."""
    a = left.normalized()
    b = right.normalized()
    similarity = float(np.dot(a, b))
    return 1.0 - max(min(similarity, 1.0), -1.0)
