"""repro — reproduction of "Unleashing the Hidden Power of Compiler
Optimization on Binary Code Difference: An Empirical Study" (PLDI 2021).

The package rebuilds the paper's whole pipeline from scratch in Python:

* a mini-C compiler toolchain with a GCC-like and an LLVM-like personality,
  ~50-60 optimization flags each, and a byte-encodable synthetic ISA
  (:mod:`repro.minic`, :mod:`repro.ir`, :mod:`repro.opt`, :mod:`repro.backend`,
  :mod:`repro.compilers`);
* a binary analysis substrate: disassembler, CFG/call-graph recovery, an
  emulator and a cost model (:mod:`repro.analysis`);
* the diffing tools used as measurement instruments: NCD, BinHunt, and the
  Figure-8 tool set (:mod:`repro.difftools`);
* **BinTuner**, the paper's contribution: GA-driven iterative compilation that
  maximizes binary code difference (:mod:`repro.tuner`);
* campaign orchestration: suite × compiler tuning matrices over one shared
  worker pool and sharded database, with checkpoint/resume and cross-program
  warm starts (:mod:`repro.campaign`, ``python -m repro.campaign``);
* workloads, IoT-malware/AV simulation and compiler-provenance recovery
  (:mod:`repro.workloads`, :mod:`repro.malware`, :mod:`repro.provenance`);
* experiment drivers regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart::

    from repro.compilers import SimLLVM
    from repro.tuner import BinTuner, BuildSpec, BinTunerConfig
    from repro.workloads import benchmark

    workload = benchmark("462.libquantum")
    compiler = SimLLVM()
    tuner = BinTuner(compiler, BuildSpec(workload.name, workload.source),
                     BinTunerConfig(max_iterations=100))
    result = tuner.run()
    print(result.best_fitness, result.best_flags)
"""

__version__ = "1.0.0"

__all__ = [
    "minic",
    "ir",
    "opt",
    "backend",
    "compilers",
    "analysis",
    "difftools",
    "tuner",
    "campaign",
    "workloads",
    "malware",
    "provenance",
    "experiments",
]
