"""The client-plane wire format: versioned, schema'd, pickle-free.

The worker plane (:mod:`repro.distrib.protocol`) pickles its frames — fine
between mutually authenticated machines the operator controls, untenable for
a public-facing job API: ``pickle.loads`` on client bytes is remote code
execution.  The service plane therefore rides the *same* 4-byte length-
prefixed framing but carries JSON (msgpack when both ends opt in and the
module exists), decoded with :func:`json.loads` and validated field-by-field
against an explicit schema before any handler sees it.  No code path from a
client socket ever reaches ``pickle.loads`` — the fuzz battery in
``tests/test_wire.py`` asserts exactly that with a booby-trapped pickle.

Every message is a JSON object carrying ``"v"`` (the wire version) and
``"type"`` (one of :data:`SCHEMAS`); unknown types, unknown fields, missing
required fields, and type-confused values all raise :class:`WireError` with
a stable machine-readable ``code`` — the service answers those with a clean
``error`` frame and keeps accepting.  Frames announcing more than the
configured byte cap are refused *before* the payload is read.

The payload's first byte is the codec tag (``J`` = JSON, ``M`` = msgpack),
so a future codec is a tag away and a peer speaking the wrong protocol
(e.g. a pickled worker frame, which starts ``0x80``) is rejected as
``bad-codec`` instead of being parsed.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Dict, Optional, Sequence, Tuple

from repro.distrib.errors import ConnectionClosed, ServiceError

#: Bumped on any schema change; both sides send it in every frame and the
#: decoder rejects mismatches, so version skew is a typed error, not a
#: field-by-field surprise.
WIRE_VERSION = 1

#: Default cap on one client frame.  Sources are capped far below this by
#: admission control; everything else on the client plane is tiny.
MAX_WIRE_FRAME_BYTES = 8 * 1024 * 1024

_HEADER = struct.Struct(">I")

_CODEC_JSON = b"J"
_CODEC_MSGPACK = b"M"


def _msgpack():
    """The optional msgpack module, or ``None`` (never a hard dependency)."""
    try:
        import msgpack  # type: ignore[import-not-found]

        return msgpack
    except ImportError:
        return None


class WireError(ServiceError):
    """A frame the wire layer refuses; ``code`` is the stable error status."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(code, message)


class FrameTooLarge(WireError):
    """The header announces more bytes than the configured cap.

    The stream cannot be resynchronized after this (the oversized payload
    was never read), so the service answers one error frame and hangs up.
    """

    def __init__(self, announced: int, limit: int) -> None:
        super().__init__(
            "frame-too-large",
            f"frame announces {announced} bytes (limit {limit})",
        )


# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------
#
# A field spec is (types, required).  ``types`` is a tuple of accepted Python
# types after JSON decoding; ``bool`` is never accepted where ``int`` is
# (the Hello.slots lesson: JSON ``true`` must not pass as 1).  ``None`` in
# ``types`` marks the field nullable.  Semantic validation (budget ranges,
# source caps) belongs to admission control in :mod:`repro.distrib.jobs` —
# the wire layer owns shape only.

_STR = ((str,), True)
_STR_OPT = ((str, None), False)
_INT = ((int,), True)
_INT_OPT = ((int, None), False)
_NUM_OPT = ((int, float, None), False)
_DICT = ((dict,), True)
_DICT_OPT = ((dict, None), False)
_LIST = ((list,), True)
_BOOL_OPT = ((bool, None), False)

#: type name -> {field name: (accepted types, required)}.  The fuzz battery
#: iterates this table, so adding a message type automatically enrolls it in
#: the round-trip and garbage corpora.
SCHEMAS: Dict[str, Dict[str, Tuple[tuple, bool]]] = {
    # client -> service
    "submit": {
        "tenant": _STR,
        "program": _STR,
        "source": _STR,
        "family": _STR,
        "budget": _DICT,
        "priority": _INT_OPT,
        "token": _STR_OPT,
    },
    "status": {"job_id": _STR, "token": _STR_OPT},
    "jobs": {"tenant": _STR_OPT, "token": _STR_OPT},
    "stream": {"job_id": _STR, "from_seq": _INT_OPT, "token": _STR_OPT},
    "cancel": {"job_id": _STR, "token": _STR_OPT},
    "accounting": {"tenant": _STR_OPT, "token": _STR_OPT},
    "ping": {"token": _STR_OPT},
    # service -> client
    "welcome": {"service": _STR, "families": _LIST},
    "submitted": {"job_id": _STR, "position": _INT},
    "job": {"job": _DICT},
    "job_list": {"rows": _LIST},
    "event": {"job_id": _STR, "seq": _INT, "kind": _STR, "data": _DICT},
    "accounts": {"tenants": _DICT},
    "pong": {"uptime_seconds": _NUM_OPT},
    "error": {"code": _STR, "message": _STR, "job_id": _STR_OPT},
    "cancelled": {"job_id": _STR, "state": _STR},
}


def _type_ok(value: object, types: tuple) -> bool:
    for accepted in types:
        if accepted is None:
            if value is None:
                return True
        elif isinstance(value, accepted):
            # JSON has distinct bool/int; a bool must never satisfy an int
            # (or float) slot unless bool itself is in the accepted set.
            if isinstance(value, bool) and bool not in types:
                continue
            return True
    return False


def validate_message(message: object) -> Dict[str, object]:
    """Schema-check one decoded payload; returns it typed as a dict.

    Raises :class:`WireError` with a stable code on every violation —
    the single choke point between client bytes and service handlers.
    """
    if not isinstance(message, dict):
        raise WireError(
            "bad-schema", f"expected a JSON object, got {type(message).__name__}"
        )
    version = message.get("v")
    if not isinstance(version, int) or isinstance(version, bool):
        raise WireError("bad-version", "missing or non-integer wire version 'v'")
    if version != WIRE_VERSION:
        raise WireError(
            "bad-version", f"wire version {version} (this side speaks {WIRE_VERSION})"
        )
    kind = message.get("type")
    if not isinstance(kind, str):
        raise WireError("bad-schema", "missing message 'type'")
    schema = SCHEMAS.get(kind)
    if schema is None:
        raise WireError("bad-type", f"unknown message type {kind!r}")
    for name, value in message.items():
        if name in ("v", "type"):
            continue
        spec = schema.get(name)
        if spec is None:
            raise WireError("bad-schema", f"{kind}: unknown field {name!r}")
        types, _required = spec
        if not _type_ok(value, types):
            raise WireError(
                "bad-schema",
                f"{kind}.{name}: expected "
                f"{'/'.join('null' if t is None else t.__name__ for t in types)}, "
                f"got {type(value).__name__}",
            )
    for name, (types, required) in schema.items():
        if required and name not in message:
            raise WireError("bad-schema", f"{kind}: missing required field {name!r}")
    return message


def make_message(msg_type: str, **fields: object) -> Dict[str, object]:
    """Build and validate one outgoing message (None-valued fields dropped).

    The first parameter is positional-only in spirit (named ``msg_type``
    so it cannot collide with schema fields like ``event.kind``).
    """
    message: Dict[str, object] = {"v": WIRE_VERSION, "type": msg_type}
    message.update({name: value for name, value in fields.items() if value is not None})
    return validate_message(message)


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------

def encode_payload(message: Dict[str, object], codec: str = "json") -> bytes:
    """Validated message -> codec tag + encoded bytes."""
    validate_message(message)
    if codec == "json":
        return _CODEC_JSON + json.dumps(
            message, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    if codec == "msgpack":
        msgpack = _msgpack()
        if msgpack is None:
            raise WireError("bad-codec", "msgpack codec requested but not installed")
        return _CODEC_MSGPACK + msgpack.packb(message, use_bin_type=True)
    raise WireError("bad-codec", f"unknown codec {codec!r}")


def decode_payload(payload: bytes) -> Dict[str, object]:
    """Codec tag + bytes -> validated message.  Never touches pickle."""
    if not payload:
        raise WireError("bad-codec", "empty frame")
    tag, body = payload[:1], payload[1:]
    if tag == _CODEC_JSON:
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireError("bad-json", f"frame is not valid JSON: {exc}") from None
    elif tag == _CODEC_MSGPACK:
        msgpack = _msgpack()
        if msgpack is None:
            raise WireError("bad-codec", "peer sent msgpack but it is not installed")
        try:
            message = msgpack.unpackb(body, raw=False)
        except Exception as exc:
            raise WireError("bad-json", f"frame is not valid msgpack: {exc}") from None
    else:
        raise WireError(
            "bad-codec", f"unknown codec tag 0x{tag.hex() or '??'}"
        )
    return validate_message(message)


# ---------------------------------------------------------------------------
# Framed socket I/O
# ---------------------------------------------------------------------------

def send_wire(sock: socket.socket, message: Dict[str, object],
              codec: str = "json") -> None:
    """Write one validated message as a length-prefixed frame."""
    payload = encode_payload(message, codec=codec)
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as exc:
        raise ConnectionClosed(f"peer went away mid-send: {exc}") from exc


def recv_wire(sock: socket.socket,
              max_frame_bytes: int = MAX_WIRE_FRAME_BYTES) -> Dict[str, object]:
    """Read one frame and decode/validate it.

    Raises :class:`FrameTooLarge` before reading an oversized payload,
    :class:`WireError` for anything that read fully but failed to decode,
    and :class:`~repro.distrib.errors.ConnectionClosed` on EOF/truncation.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > max_frame_bytes:
        raise FrameTooLarge(length, max_frame_bytes)
    return decode_payload(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except TimeoutError:
            raise
        except OSError as exc:
            raise ConnectionClosed(f"peer went away mid-frame: {exc}") from exc
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def error_message(code: str, message: str,
                  job_id: Optional[str] = None) -> Dict[str, object]:
    """The canonical error frame (trimmed: a reason, never a traceback)."""
    return make_message("error", code=code, message=message[:500], job_id=job_id)


__all__ = [
    "WIRE_VERSION",
    "MAX_WIRE_FRAME_BYTES",
    "SCHEMAS",
    "WireError",
    "FrameTooLarge",
    "validate_message",
    "make_message",
    "encode_payload",
    "decode_payload",
    "send_wire",
    "recv_wire",
    "error_message",
]
