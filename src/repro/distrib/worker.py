"""The worker loop and its CLI: ``python -m repro.distrib.worker``.

A worker is one process (on this machine or another) that connects to a
coordinator, advertises its capacity, and serves evaluation batches until
told to shut down::

    python -m repro.distrib.worker --connect HOST:PORT [--slots N] [--reconnect]

Evaluators arrive as pickle-once blobs keyed by the same monotonic evaluator
ids the in-process :class:`~repro.campaign.pool.SharedWorkerPool` uses; each
is deserialized at most once and kept in a bounded FIFO cache (the same
bound as the pool's per-process cache), so a long campaign over many
programs cannot pile baselines up in worker memory.  Evicted evaluators are
recovered via the :class:`~repro.distrib.protocol.EvaluatorMissing` reply —
the coordinator re-sends the blob.

Batches are evaluated pipeline-aware: a staged evaluator
(:class:`~repro.tuner.pipeline.StagedCandidateEvaluator`) receives its
tasks as contiguous per-slot chunks and overlaps each chunk's compiles with
its emulation/scoring on a second lane; a monolithic evaluator is mapped
task by task, exactly as before.  From registration to shutdown the worker
sends :class:`~repro.distrib.protocol.Heartbeat` frames so a long batch —
or an idle wait between batches — is distinguishable from a dead machine
(historically a busy worker could only fail at batch boundaries or the
coordinator's timeout, and an idle one aged silently); the advertised
cadence rides in :class:`~repro.distrib.protocol.Hello` so the coordinator
sizes its staleness windows to it.

``--reconnect`` keeps the worker alive across coordinator outages and its
own restarts: a refused connection or a dropped coordinator triggers an
exponentially backed-off retry (a clean :class:`~repro.distrib.protocol.
Shutdown` still exits), so a rebooted machine rejoins a running campaign
without operator action.  ``--store-dir`` gives the worker a *local*
disk-backed artifact store (:mod:`repro.tuner.store`): staged evaluators
are re-pointed at it as they arrive, so the compiles and traces this
machine pays persist across batches, evaluator-cache evictions, and the
reconnects above — a worker that rejoins is warm, not amnesiac.  Without
the flag, a staged evaluator keeps whatever ``store_dir`` the orchestrator
baked into the blob (correct for same-machine workers; remote machines
should pass their own path, or ``--no-store`` to detach the tier so the
orchestrator's path is never created on this machine).

An evaluator exception is reported back as a :class:`~repro.distrib.
protocol.BatchFailure` (programming errors must propagate to the campaign,
exactly as they do in-process); a transport failure toward the coordinator
ends the session.  ``--max-batches N`` is the failure-injection knob behind
the worker-loss determinism tests: the worker serves N batches, then dies
*without replying* on the next one, like a machine crash mid-generation.
"""

from __future__ import annotations

import argparse
import functools
import logging
import os
import pickle
import socket
import sys
import threading
import time
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.distrib.artifacts import WorkerMeshClient
from repro.distrib.errors import AuthenticationError, ConnectionClosed, ProtocolError
from repro.distrib.protocol import (
    BatchFailure,
    BatchResult,
    EvalBatch,
    EvaluatorMissing,
    Heartbeat,
    Hello,
    Shutdown,
    TelemetrySummary,
    Welcome,
    authenticate,
    normalize_authkey,
    parse_address,
    recv_message,
    send_message,
)
from repro import telemetry
from repro.telemetry import get_sink
from repro.telemetry.live import Histogram
from repro.tuner.evaluation import EVALUATOR_CACHE_LIMIT, evaluate_keys, map_pipelined

logger = logging.getLogger("repro.distrib.worker")

#: Exit status of a ``--max-batches`` induced crash (distinct from clean 0).
CRASH_EXIT_STATUS = 17

#: Exit status of a session that ended because the *coordinator* went away
#: (distinct from a clean Shutdown): the reconnect loop retries on this.
CONNECTION_LOST_STATUS = 4

#: Exit status of a failed handshake (wrong/missing authkey, version skew).
#: Deterministic — never retried.
HANDSHAKE_FAILED_STATUS = 3

#: Default seconds between Heartbeat frames while a batch evaluates.
DEFAULT_HEARTBEAT_INTERVAL = 15.0

#: Default seconds to establish the TCP connection *and* complete the
#: handshake.  Historically there was no deadline at all, so a blackholed
#: coordinator address (firewall drop, dead NAT entry) or a
#: bound-but-never-accepting socket hung a connecting worker forever — and
#: with it the ``--reconnect`` backoff that exists precisely for that case.
DEFAULT_CONNECT_TIMEOUT = 30.0


def _exception_survives_pickle(exc: BaseException) -> bool:
    try:
        pickle.loads(pickle.dumps(exc))
        return True
    except Exception:
        return False


def _evaluate_tasks(evaluator, tasks, slots: int, executor) -> Tuple[Tuple[int, object], ...]:
    """Evaluate one batch's ``(index, key)`` tasks, pipeline-aware.

    A staged evaluator gets contiguous per-slot chunks so each slot overlaps
    its compiles with emulation on its own second lane; a plain evaluator is
    mapped key by key across the slot threads, the historical behaviour.
    Results carry their submission indices, so scheduling never reorders
    anything.
    """
    keys = [key for _index, key in tasks]
    pipelined = getattr(evaluator, "evaluate_batch", None) is not None
    if slots > 1 and len(keys) > 1:
        if pipelined:
            values = map_pipelined(
                executor, functools.partial(evaluate_keys, evaluator), keys, slots
            )
        else:
            values = list(executor.map(evaluator, keys))
    else:
        values = evaluate_keys(evaluator, keys)
    return tuple(
        (index, value) for (index, _key), value in zip(tasks, values)
    )


class _SessionTelemetry:
    """One session's utilization counters, forwarded as compact
    :class:`~repro.distrib.protocol.TelemetrySummary` frames.

    Sums what each batch's :class:`~repro.tuner.evaluation.CandidateResult`
    objects already carry (per-stage wall clock, cache-tier provenance) plus
    wall-clock busy time, so the coordinator's fleet view costs the wire one
    small dict per batch and the worker no extra measurement.  Observe-only:
    nothing here feeds results, fingerprints, or scheduling.
    """

    def __init__(self, worker_id: int, slots: int) -> None:
        self.worker_id = worker_id
        self.slots = slots
        self._started = time.perf_counter()
        self.batches = 0
        self.candidates = 0
        self.busy_seconds = 0.0
        self.compile_seconds = 0.0
        self.measure_seconds = 0.0
        self.score_seconds = 0.0
        self.artifact_hits = 0
        self.artifact_store_hits = 0
        self.artifact_mesh_hits = 0
        self.artifact_misses = 0
        #: Batch wall-clock distribution, shipped as a mergeable snapshot so
        #: the coordinator can fold every worker's into one fleet-wide
        #: ``worker.batch.seconds`` histogram for ``/metrics``.
        self.batch_seconds = Histogram()

    def absorb(self, results, busy_seconds: float) -> None:
        self.batches += 1
        self.candidates += len(results)
        self.busy_seconds += busy_seconds
        self.batch_seconds.observe(busy_seconds)
        for _index, value in results:
            self.compile_seconds += getattr(value, "compile_seconds", 0.0)
            self.measure_seconds += getattr(value, "measure_seconds", 0.0)
            self.score_seconds += getattr(value, "score_seconds", 0.0)
            self.artifact_hits += getattr(value, "artifact_hits", 0)
            self.artifact_store_hits += getattr(value, "artifact_store_hits", 0)
            self.artifact_mesh_hits += getattr(value, "artifact_mesh_hits", 0)
            self.artifact_misses += getattr(value, "artifact_misses", 0)

    def payload(self, mesh_client: Optional[WorkerMeshClient]) -> Dict[str, object]:
        data: Dict[str, object] = {
            "slots": self.slots,
            "batches": self.batches,
            "candidates": self.candidates,
            "busy_seconds": round(self.busy_seconds, 6),
            "uptime_seconds": round(time.perf_counter() - self._started, 6),
            "compile_seconds": round(self.compile_seconds, 6),
            "measure_seconds": round(self.measure_seconds, 6),
            "score_seconds": round(self.score_seconds, 6),
            "artifact_hits": self.artifact_hits,
            "artifact_store_hits": self.artifact_store_hits,
            "artifact_mesh_hits": self.artifact_mesh_hits,
            "artifact_misses": self.artifact_misses,
            "batch_seconds_hist": self.batch_seconds.snapshot(),
        }
        if mesh_client is not None:
            stats = mesh_client.stats()
            data["mesh_bytes_sent"] = stats["bytes_sent"]
            data["mesh_bytes_received"] = stats["bytes_received"]
        return data


class _HeartbeatSender:
    """Sends :class:`Heartbeat` frames for the lifetime of a session.

    Historically the beat ran only while a batch evaluated, so an *idle*
    worker was indistinguishable from a dead one until its next dispatch;
    now the thread spans the whole session (started right after
    registration) and the coordinator's health tracking reads the idle
    frames off the buffered stream.  Socket writes are serialized with the
    main loop's replies through ``send`` (two threads interleaving
    ``sendall`` would corrupt framing); send failures just stop the beat —
    the main loop will observe the dead socket itself on its next reply.
    """

    def __init__(self, sock: socket.socket, worker_id: int, interval: float) -> None:
        self._sock = sock
        self._worker_id = worker_id
        self.interval = interval
        self._lock = threading.Lock()
        self._stop: Optional[threading.Event] = None
        self._thread: Optional[threading.Thread] = None

    def send(self, message) -> None:
        with self._lock:
            send_message(self._sock, message)

    def start(self) -> None:
        if self.interval > 0 and self._thread is None:
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._beat, name="worker-heartbeat", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        if self._stop is not None:
            self._stop.set()
            self._thread.join(timeout=1.0)
            self._stop = None
            self._thread = None

    def __enter__(self) -> "_HeartbeatSender":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _beat(self) -> None:
        stop = self._stop
        while not stop.wait(self.interval):
            try:
                self.send(Heartbeat(self._worker_id))
            except Exception:
                return


def serve(
    connect: str,
    slots: int = 1,
    cache_limit: int = EVALUATOR_CACHE_LIMIT,
    max_batches: Optional[int] = None,
    hard_exit: bool = False,
    log: Optional[Callable[[str], None]] = None,
    authkey=None,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    on_registered: Optional[Callable[[int], None]] = None,
    store_dir: Optional[str] = None,
    store_max_bytes: Optional[int] = None,
    no_store: bool = False,
    connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
    mesh: bool = True,
    mesh_budget_bytes: Optional[int] = None,
) -> int:
    """Run one worker session until shutdown; returns a process exit status.

    ``slots > 1`` evaluates each batch on that many threads (the coordinator
    also weights batch partitioning by slots, so the capacity claim must be
    real — a sequential worker advertising 8 slots would just become the
    per-generation straggler).  ``hard_exit=True`` (the CLI default) makes
    the ``--max-batches`` crash an ``os._exit`` — a real process death.
    Tests that run workers as threads pass ``False`` so the crash degrades
    to closing the socket and returning, which the coordinator observes
    identically (EOF mid-batch).

    Returns 0 after a clean :class:`Shutdown`,
    :data:`CONNECTION_LOST_STATUS` when the coordinator went away (the
    :func:`run_worker` reconnect loop retries on exactly this), and
    :data:`HANDSHAKE_FAILED_STATUS` on a failed handshake.
    ``on_registered`` fires with the assigned worker id right after the
    handshake — the reconnect loop uses it to reset its backoff.

    ``store_dir`` points arriving staged evaluators at a *worker-local*
    disk-backed artifact store (overriding any path baked into the blob by
    the orchestrator, which may not exist on this machine): compiles and
    traces this worker pays persist across batches, evaluator-cache
    evictions, reconnects, and its own restarts.  ``store_max_bytes`` sizes
    the local tier's GC budget for *this* machine's disk (``None`` keeps the
    budget the orchestrator baked into the blob).  ``no_store`` detaches the
    store instead, so an evaluator's baked-in orchestrator path is never
    created or written on this machine at all.

    ``connect_timeout`` bounds both the TCP connect and the whole handshake
    (a coordinator that accepts the connection but never answers used to
    hang the worker forever); a handshake that times out returns
    :data:`CONNECTION_LOST_STATUS` — a stalled coordinator may heal, so the
    reconnect loop must back off and retry it, not give up.  Once the
    Welcome arrives the deadline comes off: batches may legitimately be
    minutes apart.

    ``mesh`` (on by default) joins the coordinator's artifact plane when it
    advertises one: this worker's tier-2 misses are served from other
    machines' past work before paying a compile, and its fresh artifacts
    are pushed back after each batch.  ``mesh_budget_bytes`` caps this
    machine's total artifact transfer (default: the budget the coordinator
    advertises).
    """
    if slots < 1:
        raise ValueError(f"slots must be >= 1, got {slots}")
    if cache_limit < 1:
        raise ValueError(f"cache_limit must be >= 1, got {cache_limit}")
    if connect_timeout is not None and connect_timeout <= 0:
        raise ValueError(f"connect_timeout must be > 0, got {connect_timeout}")
    emit = log if log is not None else (lambda message: None)
    authkey = normalize_authkey(authkey)
    host, port = parse_address(connect)
    # The timeout set here persists on the socket through the handshake
    # below, so every recv between connect and Welcome shares the deadline.
    sock = socket.create_connection((host, port), timeout=connect_timeout)
    executor = None
    mesh_client: Optional[WorkerMeshClient] = None
    sender: Optional[_HeartbeatSender] = None
    try:
        try:
            if authkey is not None:
                authenticate(sock, authkey, server=False)
            send_message(
                sock,
                Hello(slots=slots, heartbeat_interval=max(0.0, heartbeat_interval)),
            )
            welcome = recv_message(sock)
            if not isinstance(welcome, Welcome):
                raise ProtocolError(f"expected Welcome, got {type(welcome).__name__}")
        except TimeoutError:
            # The coordinator accepted the connection but never completed
            # the handshake — bound-but-not-accepting listen backlog, a
            # stalled process, a blackholing middlebox.  Transient: the
            # reconnect loop must back off and retry, exactly like a peer
            # that vanished mid-handshake.
            emit(f"worker: handshake with {connect} timed out "
                 f"after {connect_timeout:g}s")
            return CONNECTION_LOST_STATUS
        except ConnectionClosed as exc:
            # The peer vanished mid-handshake — a coordinator dying between
            # accept and Welcome, or a handshake squeezed out by an accept
            # storm.  That is a *transient* loss (the reconnect loop must
            # retry it), not a deterministic handshake rejection.
            emit(f"worker: {connect} went away during the handshake: {exc}")
            return CONNECTION_LOST_STATUS
        except (AuthenticationError, ProtocolError) as exc:
            # Key mismatch presents as either an explicit rejection or the
            # coordinator's challenge frame failing to unpickle; both mean
            # "wrong or missing authkey", not a crash.
            emit(f"worker: handshake with {connect} failed: {exc}")
            return HANDSHAKE_FAILED_STATUS
        # Registered: the deadline comes off — batches can be arbitrarily
        # far apart, and the coordinator owns liveness from here on.
        sock.settimeout(None)
        emit(f"worker {welcome.worker_id}: connected to {connect} with {slots} slot(s)")
        if on_registered is not None:
            on_registered(welcome.worker_id)
        sender = _HeartbeatSender(sock, welcome.worker_id, heartbeat_interval)
        # Session-long liveness: beats flow from registration onward, so an
        # idle worker (between batches, or never dispatched to) stays
        # `healthy` in the coordinator's fleet view instead of aging into
        # `stale` the moment the campaign pauses.
        sender.start()
        if mesh and getattr(welcome, "mesh", False):
            budget = mesh_budget_bytes
            if budget is None:
                budget = getattr(welcome, "mesh_budget_bytes", None)
            mesh_client = WorkerMeshClient(sock, sender, budget_bytes=budget, log=log)
            emit(f"worker {welcome.worker_id}: joined the artifact mesh"
                 + (f" (budget {budget} bytes)" if budget is not None else ""))
        #: evaluator id -> deserialized evaluator, FIFO-bounded like
        #: the shared pool's per-process cache.
        evaluators: Dict[int, object] = {}
        batches_done = 0
        # Forward fleet telemetry only when the coordinator advertised it:
        # version skew in either direction degrades to "no fleet view".
        session = (
            _SessionTelemetry(welcome.worker_id, slots)
            if getattr(welcome, "telemetry", False) else None
        )
        while True:
            try:
                message = recv_message(sock)
            except ConnectionClosed:
                emit(f"worker {welcome.worker_id}: coordinator went away")
                return CONNECTION_LOST_STATUS
            if isinstance(message, Shutdown):
                emit(f"worker {welcome.worker_id}: shutdown after {batches_done} batch(es)")
                return 0
            if not isinstance(message, EvalBatch):
                raise ProtocolError(f"unexpected message {type(message).__name__}")
            if max_batches is not None and batches_done >= max_batches:
                # Failure injection: die without replying, mid-batch.
                emit(f"worker {welcome.worker_id}: injected crash on batch {batches_done + 1}")
                sock.close()
                if hard_exit:
                    os._exit(CRASH_EXIT_STATUS)
                return CRASH_EXIT_STATUS
            evaluator = evaluators.get(message.evaluator_id)
            if evaluator is None:
                if message.blob is None:
                    send_message(sock, EvaluatorMissing(message.evaluator_id))
                    continue
                evaluator = pickle.loads(message.blob)
                if store_dir is not None or no_store:
                    attach = getattr(evaluator, "attach_store", None)
                    if attach is not None:
                        if no_store:
                            attach(None)
                        else:
                            attach(store_dir, max_bytes=store_max_bytes)
                if mesh_client is not None:
                    # After any store override: attach_store swaps the cache,
                    # and the mesh must hook the cache actually in use.
                    attach_mesh = getattr(evaluator, "attach_mesh", None)
                    if attach_mesh is not None:
                        mesh_client.track_cache(attach_mesh(mesh_client))
                while len(evaluators) >= cache_limit:
                    evaluators.pop(next(iter(evaluators)))
                evaluators[message.evaluator_id] = evaluator
            if slots > 1 and executor is None:
                from concurrent.futures import ThreadPoolExecutor

                executor = ThreadPoolExecutor(
                    max_workers=slots, thread_name_prefix="worker-slot"
                )
            try:
                if mesh_client is not None:
                    # Arm the mesh only while this worker owns the socket
                    # for reading (the coordinator sends nothing unprompted
                    # mid-batch, so fetch replies are unambiguous).
                    mesh_client.begin_batch()
                try:
                    busy_started = time.perf_counter()
                    with get_sink().span(
                        "worker.batch",
                        worker=welcome.worker_id,
                        tasks=len(message.tasks),
                    ):
                        results = _evaluate_tasks(
                            evaluator, message.tasks, slots, executor
                        )
                    busy_seconds = time.perf_counter() - busy_started
                    if mesh_client is not None:
                        # Fresh artifacts travel *before* the batch reply:
                        # the ordered stream guarantees the coordinator has
                        # absorbed them when the reply is parsed, so the
                        # next machine's fetches already see them.
                        mesh_client.flush()
                finally:
                    if mesh_client is not None:
                        mesh_client.end_batch()
            except Exception as exc:
                sender.send(
                    BatchFailure(
                        message.evaluator_id,
                        f"{type(exc).__name__}: {exc}",
                        exc if _exception_survives_pickle(exc) else None,
                    )
                )
                continue  # the error was deterministic; keep serving
            if mesh_client is not None and mesh_client.shutdown_seen:
                # The coordinator shut down while we were mid-batch (its
                # Shutdown frame surfaced inside a mesh round trip): exit
                # cleanly instead of reporting a lost connection.
                emit(f"worker {welcome.worker_id}: shutdown after {batches_done} batch(es)")
                return 0
            if session is not None:
                session.absorb(results, busy_seconds)
                try:
                    # Interleaved ahead of the reply, like heartbeats and
                    # mesh pushes: the ordered stream guarantees the
                    # coordinator absorbs it before parsing the reply.
                    sender.send(
                        TelemetrySummary(welcome.worker_id, session.payload(mesh_client))
                    )
                except Exception:
                    # Telemetry must never fail a healthy batch; a real
                    # transport loss surfaces on the BatchResult send below.
                    pass
            try:
                sender.send(BatchResult(message.evaluator_id, results))
            except ConnectionClosed:
                # The coordinator vanished while we were evaluating (e.g. it
                # gave up on this batch); a preceding interleaved frame may
                # have already triggered the RST that surfaces here.  Same
                # retryable loss as a failed read.
                emit(f"worker {welcome.worker_id}: coordinator went away")
                return CONNECTION_LOST_STATUS
            batches_done += 1
    finally:
        if sender is not None:
            sender.stop()
        if mesh_client is not None:
            # The caches are process-global and outlive this session; a
            # dead session's client must not serve later lookups.
            mesh_client.detach()
        if executor is not None:
            executor.shutdown(wait=False)
        try:
            sock.close()
        except OSError:
            pass


def run_worker(
    connect: str,
    reconnect: bool = False,
    max_retries: Optional[int] = None,
    backoff_base: float = 1.0,
    backoff_cap: float = 60.0,
    log: Optional[Callable[[str], None]] = None,
    **serve_kwargs,
) -> int:
    """:func:`serve`, wrapped in the auto-reconnect policy.

    With ``reconnect=False`` (the historical default) this is one session:
    a refused connection raises, a lost coordinator returns.  With
    ``reconnect=True`` the worker survives both — it retries with
    exponential backoff (``backoff_base`` doubling up to ``backoff_cap``
    seconds, at most ``max_retries`` consecutive failures, unbounded when
    ``None``) so a restarted machine rejoins a running campaign without
    operator action.  Any ``OSError`` reaching the coordinator counts as
    transient and retries — on a machine that is itself booting, refused
    connections, unreachable networks and *unresolvable hostnames* are all
    states that heal on their own, so only ``--max-retries`` bounds them.
    A successful registration resets the backoff; a clean
    :class:`Shutdown`, an injected crash, and a failed handshake (a
    deterministic authkey/version problem) never retry.
    """
    if backoff_base <= 0:
        raise ValueError(f"backoff_base must be > 0, got {backoff_base}")
    emit = log if log is not None else (lambda message: None)
    registered = threading.Event()
    #: Last assigned worker id, so retry lines identify which fleet member
    #: is flapping (``None`` until the first successful registration).
    last_worker = {"id": None}

    def on_registered(worker_id: int) -> None:
        last_worker["id"] = worker_id
        registered.set()

    delay = backoff_base
    failures = 0
    while True:
        registered.clear()
        reason = "coordinator went away mid-session"
        try:
            status = serve(connect, log=log, on_registered=on_registered, **serve_kwargs)
        except (ConnectionRefusedError, OSError) as exc:
            if not reconnect:
                raise
            reason = f"{type(exc).__name__}: {exc}"
            emit(f"worker: cannot reach {connect}: {exc}")
            status = CONNECTION_LOST_STATUS
        if status != CONNECTION_LOST_STATUS or not reconnect:
            return status
        if registered.is_set():
            # The session was live before it dropped; start backing off from
            # scratch rather than where the last outage left off.
            delay = backoff_base
            failures = 0
        failures += 1
        who = (
            f"worker {last_worker['id']}" if last_worker["id"] is not None
            else "worker (never registered)"
        )
        if max_retries is not None and failures > max_retries:
            emit(f"{who}: giving up on {connect} after {max_retries} retries "
                 f"(last failure: {reason})")
            return status
        emit(f"{who}: reconnecting to {connect} in {delay:.1f}s "
             f"(attempt {failures}; last failure: {reason})")
        time.sleep(delay)
        delay = min(delay * 2, backoff_cap)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distrib.worker",
        description="Serve candidate evaluations for a distributed campaign.",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to register with")
    parser.add_argument("--slots", type=int, default=1,
                        help="evaluation threads; also weights how the "
                             "coordinator partitions batches (default: 1)")
    parser.add_argument("--cache-limit", type=int, default=EVALUATOR_CACHE_LIMIT,
                        help="bounded evaluator cache size (default: "
                             f"{EVALUATOR_CACHE_LIMIT}, the shared-pool bound)")
    parser.add_argument("--max-batches", type=int, default=None,
                        help="failure injection: serve N batches, then crash "
                             "without replying (worker-loss tests/demos)")
    parser.add_argument("--reconnect", action="store_true",
                        help="retry with exponential backoff when the "
                             "coordinator is unreachable or goes away, so a "
                             "restarted machine rejoins a running campaign "
                             "(a clean Shutdown still exits)")
    parser.add_argument("--max-retries", type=int, default=None,
                        help="with --reconnect: give up after N consecutive "
                             "failed attempts (default: retry forever)")
    parser.add_argument("--backoff", type=float, default=1.0, metavar="SECONDS",
                        help="with --reconnect: initial retry delay, doubled "
                             "per consecutive failure up to 60s (default: 1.0)")
    parser.add_argument("--heartbeat", type=float, default=DEFAULT_HEARTBEAT_INTERVAL,
                        metavar="SECONDS",
                        help="interval between keep-alive frames while a batch "
                             f"is evaluating; 0 disables (default: "
                             f"{DEFAULT_HEARTBEAT_INTERVAL:g})")
    parser.add_argument("--authkey", default=os.environ.get("REPRO_DISTRIB_AUTHKEY"),
                        help="shared secret for the coordinator handshake "
                             "(default: $REPRO_DISTRIB_AUTHKEY; required when "
                             "the coordinator was started with one)")
    parser.add_argument("--store-dir", type=str, default=None,
                        help="worker-local disk-backed artifact store: "
                             "compiles/traces this worker pays persist across "
                             "batches, reconnects and restarts, so a "
                             "rejoining worker starts warm")
    parser.add_argument("--store-max-bytes", type=int, default=None,
                        help="with --store-dir: byte budget of the local "
                             "store's LRU garbage collection, sized for this "
                             "machine's disk (default: the budget the "
                             "orchestrator configured)")
    parser.add_argument("--no-store", action="store_true",
                        help="detach any orchestrator-configured artifact "
                             "store from arriving evaluators: no local "
                             "persistence, and the orchestrator's store path "
                             "is never created on this machine")
    parser.add_argument("--connect-timeout", type=float,
                        default=DEFAULT_CONNECT_TIMEOUT, metavar="SECONDS",
                        help="deadline for the TCP connect plus handshake; a "
                             "coordinator that never answers fails the "
                             "attempt (and --reconnect backs off) instead of "
                             f"hanging forever (default: "
                             f"{DEFAULT_CONNECT_TIMEOUT:g})")
    parser.add_argument("--no-mesh", action="store_true",
                        help="do not join the coordinator's artifact mesh "
                             "even when it serves one: no artifact fetches "
                             "or pushes from this machine")
    parser.add_argument("--mesh-budget-bytes", type=int, default=None,
                        help="cap on this machine's total artifact-mesh "
                             "transfer, both directions (default: the "
                             "budget the coordinator advertises)")
    parser.add_argument("--telemetry-dir", type=str, default=None,
                        help="write this worker's local telemetry (spans, "
                             "counters) as JSONL under this directory; "
                             "readable with python -m repro.telemetry report")
    parser.add_argument("--verbose", action="store_true",
                        help="debug-level log lines on stderr")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-connection log lines (warnings "
                             "and errors still print)")
    return parser


def configure_logging(verbose: bool = False, quiet: bool = False) -> None:
    """Point the ``repro`` logger tree at stderr (idempotent).

    Progress goes through :mod:`logging` so operators can tune it; stdout
    stays reserved for machine-readable output (``--json`` etc.).
    """
    root = logging.getLogger("repro")
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter("%(message)s"))
        root.addHandler(handler)
    if quiet:
        root.setLevel(logging.WARNING)
    elif verbose:
        root.setLevel(logging.DEBUG)
    else:
        root.setLevel(logging.INFO)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.no_store and args.store_dir is not None:
        parser.error("--store-dir and --no-store are mutually exclusive")
    if args.store_max_bytes is not None and args.store_dir is None:
        parser.error("--store-max-bytes requires --store-dir")
    if args.no_mesh and args.mesh_budget_bytes is not None:
        parser.error("--mesh-budget-bytes and --no-mesh are mutually exclusive")
    if args.connect_timeout is not None and args.connect_timeout <= 0:
        parser.error("--connect-timeout must be > 0")
    if args.verbose and args.quiet:
        parser.error("--verbose and --quiet are mutually exclusive")
    configure_logging(verbose=args.verbose, quiet=args.quiet)
    sink: Optional[telemetry.JsonlSink] = None
    if args.telemetry_dir is not None:
        sink = telemetry.JsonlSink(args.telemetry_dir, label="worker")
        telemetry.set_sink(sink)
    try:
        return run_worker(
            args.connect,
            reconnect=args.reconnect,
            max_retries=args.max_retries,
            backoff_base=args.backoff,
            slots=args.slots,
            cache_limit=args.cache_limit,
            max_batches=args.max_batches,
            hard_exit=True,
            log=logger.info,
            authkey=args.authkey,
            heartbeat_interval=args.heartbeat,
            store_dir=args.store_dir,
            store_max_bytes=args.store_max_bytes,
            no_store=args.no_store,
            connect_timeout=args.connect_timeout,
            mesh=not args.no_mesh,
            mesh_budget_bytes=args.mesh_budget_bytes,
        )
    except ConnectionRefusedError:
        logger.error("no coordinator listening at %s", args.connect)
        return 2
    finally:
        if sink is not None:
            telemetry.set_sink(None)
            sink.close()


if __name__ == "__main__":
    raise SystemExit(main())
