"""The worker loop and its CLI: ``python -m repro.distrib.worker``.

A worker is one process (on this machine or another) that connects to a
coordinator, advertises its capacity, and serves evaluation batches until
told to shut down::

    python -m repro.distrib.worker --connect HOST:PORT [--slots N]

Evaluators arrive as pickle-once blobs keyed by the same monotonic evaluator
ids the in-process :class:`~repro.campaign.pool.SharedWorkerPool` uses; each
is deserialized at most once and kept in a bounded FIFO cache (the same
bound as the pool's per-process cache), so a long campaign over many
programs cannot pile baselines up in worker memory.  Evicted evaluators are
recovered via the :class:`~repro.distrib.protocol.EvaluatorMissing` reply —
the coordinator re-sends the blob.

An evaluator exception is reported back as a :class:`~repro.distrib.
protocol.BatchFailure` (programming errors must propagate to the campaign,
exactly as they do in-process); a transport failure toward the coordinator
ends the worker.  ``--max-batches N`` is the failure-injection knob behind
the worker-loss determinism tests: the worker serves N batches, then dies
*without replying* on the next one, like a machine crash mid-generation.
"""

from __future__ import annotations

import argparse
import os
import pickle
import socket
import sys
from typing import Callable, Dict, Optional, Sequence

from repro.distrib.errors import AuthenticationError, ConnectionClosed, ProtocolError
from repro.distrib.protocol import (
    BatchFailure,
    BatchResult,
    EvalBatch,
    EvaluatorMissing,
    Hello,
    Shutdown,
    Welcome,
    authenticate,
    normalize_authkey,
    parse_address,
    recv_message,
    send_message,
)
from repro.tuner.evaluation import EVALUATOR_CACHE_LIMIT

#: Exit status of a ``--max-batches`` induced crash (distinct from clean 0).
CRASH_EXIT_STATUS = 17


def _exception_survives_pickle(exc: BaseException) -> bool:
    try:
        pickle.loads(pickle.dumps(exc))
        return True
    except Exception:
        return False


def serve(
    connect: str,
    slots: int = 1,
    cache_limit: int = EVALUATOR_CACHE_LIMIT,
    max_batches: Optional[int] = None,
    hard_exit: bool = False,
    log: Optional[Callable[[str], None]] = None,
    authkey=None,
) -> int:
    """Run one worker until shutdown; returns a process exit status.

    ``slots > 1`` evaluates each batch on that many threads (the coordinator
    also weights batch partitioning by slots, so the capacity claim must be
    real — a sequential worker advertising 8 slots would just become the
    per-generation straggler).  ``hard_exit=True`` (the CLI default) makes
    the ``--max-batches`` crash an ``os._exit`` — a real process death.
    Tests that run workers as threads pass ``False`` so the crash degrades
    to closing the socket and returning, which the coordinator observes
    identically (EOF mid-batch).
    """
    if slots < 1:
        raise ValueError(f"slots must be >= 1, got {slots}")
    if cache_limit < 1:
        raise ValueError(f"cache_limit must be >= 1, got {cache_limit}")
    emit = log if log is not None else (lambda message: None)
    authkey = normalize_authkey(authkey)
    host, port = parse_address(connect)
    sock = socket.create_connection((host, port))
    executor = None
    try:
        try:
            if authkey is not None:
                authenticate(sock, authkey, server=False)
            send_message(sock, Hello(slots=slots))
            welcome = recv_message(sock)
            if not isinstance(welcome, Welcome):
                raise ProtocolError(f"expected Welcome, got {type(welcome).__name__}")
        except (AuthenticationError, ProtocolError, ConnectionClosed) as exc:
            # Key mismatch presents as either an explicit rejection or the
            # coordinator's challenge frame failing to unpickle; both mean
            # "wrong or missing authkey", not a crash.
            emit(f"worker: handshake with {connect} failed: {exc}")
            return 3
        emit(f"worker {welcome.worker_id}: connected to {connect} with {slots} slot(s)")
        #: evaluator id -> deserialized evaluator, FIFO-bounded like
        #: the shared pool's per-process cache.
        evaluators: Dict[int, object] = {}
        batches_done = 0
        while True:
            try:
                message = recv_message(sock)
            except ConnectionClosed:
                emit(f"worker {welcome.worker_id}: coordinator went away, exiting")
                return 0
            if isinstance(message, Shutdown):
                emit(f"worker {welcome.worker_id}: shutdown after {batches_done} batch(es)")
                return 0
            if not isinstance(message, EvalBatch):
                raise ProtocolError(f"unexpected message {type(message).__name__}")
            if max_batches is not None and batches_done >= max_batches:
                # Failure injection: die without replying, mid-batch.
                emit(f"worker {welcome.worker_id}: injected crash on batch {batches_done + 1}")
                sock.close()
                if hard_exit:
                    os._exit(CRASH_EXIT_STATUS)
                return CRASH_EXIT_STATUS
            evaluator = evaluators.get(message.evaluator_id)
            if evaluator is None:
                if message.blob is None:
                    send_message(sock, EvaluatorMissing(message.evaluator_id))
                    continue
                evaluator = pickle.loads(message.blob)
                while len(evaluators) >= cache_limit:
                    evaluators.pop(next(iter(evaluators)))
                evaluators[message.evaluator_id] = evaluator
            try:
                if slots > 1:
                    if executor is None:
                        from concurrent.futures import ThreadPoolExecutor

                        executor = ThreadPoolExecutor(
                            max_workers=slots, thread_name_prefix="worker-slot"
                        )
                    keys = [key for _index, key in message.tasks]
                    values = list(executor.map(evaluator, keys))
                    results = tuple(
                        (index, value)
                        for (index, _key), value in zip(message.tasks, values)
                    )
                else:
                    results = tuple(
                        (index, evaluator(key)) for index, key in message.tasks
                    )
            except Exception as exc:
                send_message(
                    sock,
                    BatchFailure(
                        message.evaluator_id,
                        f"{type(exc).__name__}: {exc}",
                        exc if _exception_survives_pickle(exc) else None,
                    ),
                )
                continue  # the error was deterministic; keep serving
            send_message(sock, BatchResult(message.evaluator_id, results))
            batches_done += 1
    finally:
        if executor is not None:
            executor.shutdown(wait=False)
        try:
            sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.distrib.worker",
        description="Serve candidate evaluations for a distributed campaign.",
    )
    parser.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to register with")
    parser.add_argument("--slots", type=int, default=1,
                        help="evaluation threads; also weights how the "
                             "coordinator partitions batches (default: 1)")
    parser.add_argument("--cache-limit", type=int, default=EVALUATOR_CACHE_LIMIT,
                        help="bounded evaluator cache size (default: "
                             f"{EVALUATOR_CACHE_LIMIT}, the shared-pool bound)")
    parser.add_argument("--max-batches", type=int, default=None,
                        help="failure injection: serve N batches, then crash "
                             "without replying (worker-loss tests/demos)")
    parser.add_argument("--authkey", default=os.environ.get("REPRO_DISTRIB_AUTHKEY"),
                        help="shared secret for the coordinator handshake "
                             "(default: $REPRO_DISTRIB_AUTHKEY; required when "
                             "the coordinator was started with one)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-connection log lines")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log = None if args.quiet else (lambda message: print(message, file=sys.stderr, flush=True))
    try:
        return serve(
            args.connect,
            slots=args.slots,
            cache_limit=args.cache_limit,
            max_batches=args.max_batches,
            hard_exit=True,
            log=log,
            authkey=args.authkey,
        )
    except ConnectionRefusedError:
        print(f"no coordinator listening at {args.connect}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
