"""Distributed candidate evaluation: multi-machine mapping behind the pool.

The campaign's evaluation substrate was capped at one machine's
``ProcessPoolExecutor``; this subsystem serves the same work over the
network while keeping the component contract — a ``CandidateEvaluator``
behind an ordered ``map(keys) -> results`` — completely fixed:

* :mod:`repro.distrib.protocol` — length-prefixed pickle framing and the
  message vocabulary (register, batch, result, failure, shutdown);
* :mod:`repro.distrib.coordinator` — the campaign-side listener workers
  register with, plus the synchronous per-worker batch RPC;
* :mod:`repro.distrib.worker` — the worker loop and its CLI
  (``python -m repro.distrib.worker --connect HOST:PORT [--slots N]``),
  with a bounded pickle-once evaluator cache;
* :mod:`repro.distrib.mapper` — :class:`DistributedMapper`, the
  ``map(keys) -> results`` implementation with submission-order results,
  bounded re-dispatch on worker loss, and in-process fallback;
* :mod:`repro.distrib.artifacts` — the artifact mesh: workers push fresh
  tier-2 entries to the coordinator's store and fetch their misses from
  any other machine's past work, digest-verified on every hop;
* :mod:`repro.distrib.errors` — the failure taxonomy (transport losses are
  recovered; programming errors propagate);
* :mod:`repro.distrib.wire`, :mod:`repro.distrib.jobs`,
  :mod:`repro.distrib.service`, :mod:`repro.distrib.client` — the tuning
  *service* plane: a pickle-free, schema-validated client wire format and a
  long-lived multi-tenant job API over the shared fleet and artifact mesh
  (workers keep the trusted pickle protocol above; clients never reach it).

Because results are slotted by submission index — never completion order —
a distributed run is bit-for-bit identical to a serial one for any worker
or machine count, including runs where workers die mid-generation.
"""

from repro.distrib.artifacts import CoordinatorArtifactPlane, WorkerMeshClient
from repro.distrib.coordinator import Coordinator, WorkerHandle
from repro.distrib.errors import (
    ConnectionClosed,
    DistribError,
    ProtocolError,
    RemoteEvaluationError,
    ServiceError,
    WorkerLost,
)
from repro.distrib.mapper import DistributedMapper
from repro.distrib.protocol import format_address, parse_address


def __getattr__(name: str):
    # ``serve`` is imported lazily: loading ``repro.distrib.worker`` during
    # package import would make ``python -m repro.distrib.worker`` execute
    # the module twice (runpy's found-in-sys.modules warning).
    if name == "serve":
        from repro.distrib.worker import serve

        return serve
    if name == "run_worker":
        from repro.distrib.worker import run_worker

        return run_worker
    # The service plane loads lazily too: it pulls in repro.campaign (the
    # pool/compiler wiring), which plain mapper users never need.
    if name in ("TuningService", "ServiceConfig"):
        from repro.distrib import service

        return getattr(service, name)
    if name == "ServiceClient":
        from repro.distrib.client import ServiceClient

        return ServiceClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ConnectionClosed",
    "Coordinator",
    "CoordinatorArtifactPlane",
    "WorkerMeshClient",
    "DistribError",
    "DistributedMapper",
    "ProtocolError",
    "RemoteEvaluationError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "TuningService",
    "WorkerHandle",
    "WorkerLost",
    "format_address",
    "parse_address",
    "run_worker",
    "serve",
]
