"""The coordinator: the campaign-side endpoint workers register with.

The coordinator owns the listening socket and the worker registry; it does
*not* own any scheduling policy.  :class:`~repro.distrib.mapper.
DistributedMapper` decides which keys go to which worker and what happens
when one dies — the coordinator only offers the two primitives that policy
needs: a snapshot of live workers and a synchronous per-worker batch RPC
(:meth:`Coordinator.run_batch`).

Evaluator blobs are pickled once per program (by the mapper) and shipped to
each worker at most once: :meth:`run_batch` tracks which evaluator ids a
worker holds and omits the blob afterwards.  The worker's cache is bounded,
so that book-keeping can go stale — the :class:`~repro.distrib.protocol.
EvaluatorMissing` reply self-heals it by re-sending the blob.
"""

from __future__ import annotations

import functools
import itertools
import logging
import socket
import statistics
import threading
import time
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.distrib.artifacts import CoordinatorArtifactPlane, handle_artifact_message
from repro.distrib.errors import (
    ConnectionClosed,
    DistribError,
    ProtocolError,
    WorkerLost,
)
from repro.distrib.protocol import (
    ArtifactFetch,
    ArtifactHave,
    ArtifactPush,
    BatchFailure,
    BatchResult,
    EvalBatch,
    EvaluatorMissing,
    Heartbeat,
    Hello,
    Shutdown,
    TelemetrySummary,
    Welcome,
    authenticate,
    format_address,
    normalize_authkey,
    recv_message,
    send_message,
)
from repro.telemetry import get_sink

logger = logging.getLogger("repro.distrib.coordinator")

#: Upper bound on a worker's advertised slot count.  ``Hello.slots`` weights
#: batch partitioning (the mapper materializes ``slots`` list entries per
#: worker), so an absurd claim from a hand-rolled client would poison the
#: partition — and no real machine runs a thousand evaluation threads.
MAX_WORKER_SLOTS = 1024

#: Worker health states, derived from the last-seen monotonic timestamp
#: (updated on *every* frame read from a worker, heartbeats included) and
#: the staleness windows below.  ``lost`` is sticky once a worker is
#: discarded.
HEALTHY, STALE, LOST = "healthy", "stale", "lost"

#: Fallback staleness windows for a worker that advertised no heartbeat
#: cadence (``Hello.heartbeat_interval == 0`` or an old worker build):
#: silent for longer than ``stale`` is suspect, longer than ``lost`` is
#: gone.  When a cadence *is* advertised the windows derive from it —
#: a few missed beats, not a wall-clock guess.
DEFAULT_STALE_AFTER = 30.0
DEFAULT_LOST_AFTER = 120.0

#: Missed-beat multiples for advertised heartbeat cadences: stale after
#: ~2.5 missed beats, lost after ~8 (bounded below so scheduler jitter on
#: a loaded machine never flaps a healthy worker).
STALE_BEATS = 2.5
LOST_BEATS = 8.0
MIN_STALE_AFTER = 5.0

#: Straggler detection: a worker whose per-task EWMA exceeds this multiple
#: of the fleet median (with at least two workers reporting) is flagged.
STRAGGLER_FACTOR = 2.0
#: EWMA smoothing for per-task batch durations (higher = more reactive).
EWMA_ALPHA = 0.3


def _is_loopback(host: str) -> bool:
    return host == "localhost" or host.startswith("127.") or host == "::1"


class WorkerHandle:
    """Coordinator-side state of one registered worker connection."""

    def __init__(self, worker_id: int, sock: socket.socket, slots: int, peer: str) -> None:
        self.worker_id = worker_id
        self.sock = sock
        self.slots = slots
        self.peer = peer
        #: Evaluator ids this worker is believed to hold (see module docs).
        self.known_evaluators: Set[int] = set()
        #: One in-flight conversation per worker: the protocol is strictly
        #: request/response, so concurrent mapper threads must serialize.
        self.lock = threading.Lock()
        self.batches_completed = 0
        #: Artifact-plane state: bytes this machine has moved over the mesh
        #: (both directions, budget-checked), and in-flight push
        #: reassemblies (``repr(key)`` -> partial chunks) — all touched only
        #: under ``self.lock`` from :meth:`Coordinator.run_batch`, and gone
        #: with the handle when the worker is discarded.
        self.mesh_bytes = 0
        self.mesh_parts: Dict[str, Dict] = {}
        #: Latest :class:`~repro.distrib.protocol.TelemetrySummary` payload
        #: this worker forwarded (observe-only; empty until the first one).
        self.telemetry: Dict[str, object] = {}
        #: Health tracking: monotonic timestamp of the last frame read from
        #: this worker (any frame — heartbeats, telemetry, artifact traffic,
        #: batch replies), the advertised heartbeat cadence, whether an RPC
        #: conversation is in flight, and the per-task batch-duration EWMA
        #: the straggler detector compares against the fleet median.
        self.last_seen = time.monotonic()
        self.heartbeat_interval = 0.0
        self.busy = False
        self.ewma_task_seconds: Optional[float] = None
        self.discarded = False

    def __repr__(self) -> str:
        return (f"WorkerHandle(id={self.worker_id}, peer={self.peer!r}, "
                f"slots={self.slots}, batches={self.batches_completed})")


class Coordinator:
    """Listens on ``host:port`` and registers workers as they connect.

    A daemon accept-thread performs the :class:`Hello`/:class:`Welcome`
    handshake and publishes each worker to the registry; ``wait_for_workers``
    lets a campaign block until enough capacity has joined.  All sockets are
    torn down by :meth:`close` (workers receive :class:`Shutdown` first, so a
    clean campaign end does not read as a crash on the worker side).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        task_timeout: float = 120.0,
        handshake_timeout: float = 5.0,
        authkey: Union[str, bytes, None] = None,
        artifact_store=None,
        mesh_budget_bytes: Optional[int] = None,
        stale_after: Optional[float] = None,
        lost_after: Optional[float] = None,
        obs_port: Optional[int] = None,
        obs_host: str = "127.0.0.1",
    ) -> None:
        #: Per-*task* reply budget: a batch of N tasks may take N times this
        #: before its worker is declared lost (a fixed per-batch timeout
        #: would discard healthy-but-busy workers on large generations).
        self.task_timeout = task_timeout
        self.handshake_timeout = handshake_timeout
        #: Shared secret for the mutual HMAC handshake.  ``None`` skips
        #: authentication, which is why the check below *refuses* a keyless
        #: bind beyond loopback rather than documenting a warning: frames
        #: are pickled, and unpickling bytes from an unauthenticated network
        #: peer is arbitrary code execution.
        self.authkey = normalize_authkey(authkey)
        #: The artifact mesh: when a store is given (an
        #: :class:`~repro.tuner.store.ArtifactStore` or a directory path),
        #: this coordinator serves the artifact plane from it — workers
        #: push fresh tier-2 entries here and fetch their misses from it,
        #: budget-capped per machine by ``mesh_budget_bytes``.
        self.artifact_plane: Optional[CoordinatorArtifactPlane] = None
        if artifact_store is not None:
            from repro.tuner.store import ArtifactStore, persistent_store

            if not isinstance(artifact_store, ArtifactStore):
                artifact_store = persistent_store(artifact_store)
            self.artifact_plane = CoordinatorArtifactPlane(
                artifact_store, budget_bytes=mesh_budget_bytes
            )
        if self.authkey is None and not _is_loopback(host):
            raise ValueError(
                f"refusing to bind a coordinator without an authkey on "
                f"{host!r}: any peer that reaches this port could execute "
                f"code via a crafted pickle frame.  Pass authkey= (CLI: "
                f"--authkey / $REPRO_DISTRIB_AUTHKEY) or bind 127.0.0.1."
            )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._workers: Dict[int, WorkerHandle] = {}
        #: Fleet telemetry: worker id -> latest summary payload (plus peer /
        #: slots).  Kept separately from the registry so the fleet view of a
        #: campaign outlives discarded workers.
        self._fleet: Dict[int, Dict[str, object]] = {}
        self._fleet_lock = threading.Lock()
        self._registry_lock = threading.Lock()
        self._joined = threading.Condition(self._registry_lock)
        self._worker_ids = itertools.count(1)
        self._closed = False
        #: Explicit staleness-window overrides; ``None`` derives them per
        #: worker from the heartbeat cadence it advertised in ``Hello``.
        self.stale_after = stale_after
        self.lost_after = lost_after
        #: The live observability plane: ``obs_port`` (0 = ephemeral) binds
        #: the ``/metrics`` + ``/status`` HTTP server on ``obs_host``
        #: (loopback unless told otherwise) with the fleet health view and
        #: fleet-merged metrics pre-registered.  Observe-only: the server
        #: reads coordinator state through the same locks as everything
        #: else and can never fail a batch.
        self.obs_server = None
        if obs_port is not None:
            from repro.distrib.obsserver import ObservabilityServer

            try:
                self.obs_server = ObservabilityServer(host=obs_host, port=obs_port)
            except OSError:
                self._listener.close()
                raise
            self.obs_server.add_source("fleet", self.fleet_status)
            self.obs_server.add_metrics_source(self.fleet_metrics)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"coordinator-accept:{self.port}", daemon=True
        )
        self._accept_thread.start()

    # -- registry ---------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def address_string(self) -> str:
        return format_address(self.host, self.port)

    def workers(self) -> List[WorkerHandle]:
        """Snapshot of live workers, ordered by registration (worker id)."""
        with self._registry_lock:
            return [self._workers[key] for key in sorted(self._workers)]

    def worker_count(self) -> int:
        with self._registry_lock:
            return len(self._workers)

    def total_slots(self) -> int:
        with self._registry_lock:
            return sum(handle.slots for handle in self._workers.values())

    def wait_for_workers(self, count: int, timeout: Optional[float] = None) -> int:
        """Block until at least ``count`` workers registered; returns the
        live count, raising :class:`DistribError` on timeout."""
        with self._joined:
            if not self._joined.wait_for(lambda: len(self._workers) >= count, timeout):
                raise DistribError(
                    f"only {len(self._workers)} of {count} workers registered with "
                    f"{self.address_string()} within {timeout}s"
                )
            return len(self._workers)

    def discard(self, handle: WorkerHandle) -> None:
        """Drop a dead worker: close its socket, remove it from the registry.

        The worker's fleet row flips to ``lost`` — stickily: a discarded
        worker stays visible (and lost) in ``/status`` and the end-of-run
        fleet summary, because the fleet view describes the campaign, not
        just the current registry.
        """
        handle.discarded = True
        with self._registry_lock:
            dropped = self._workers.pop(handle.worker_id, None)
        if dropped is not None:
            logger.warning(
                "worker %d (%s) discarded after %d completed batch(es)",
                handle.worker_id, handle.peer, handle.batches_completed,
            )
        with self._fleet_lock:
            row = self._fleet.setdefault(
                handle.worker_id,
                {"worker_id": handle.worker_id, "peer": handle.peer,
                 "slots": handle.slots},
            )
            row["health"] = LOST
            row["batches"] = handle.batches_completed
        if dropped is not None:
            get_sink().event(
                "fleet.worker", worker_id=handle.worker_id, peer=handle.peer,
                health=LOST, batches=handle.batches_completed,
            )
        try:
            handle.sock.close()
        except OSError:
            pass

    # -- accept loop ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed by close()
            try:
                sock.settimeout(self.handshake_timeout)
                if self.authkey is not None:
                    # Before any pickle byte is parsed: unauthenticated
                    # peers never reach recv_message.
                    authenticate(sock, self.authkey, server=True)
                hello = recv_message(sock)
                # ``slots`` weights batch partitioning, so a bogus claim
                # (zero, negative, bool, or an absurdly large int) must be
                # rejected cleanly at the door, never trusted verbatim.
                if (not isinstance(hello, Hello)
                        or not isinstance(hello.slots, int)
                        or isinstance(hello.slots, bool)
                        or hello.slots < 1
                        or hello.slots > MAX_WORKER_SLOTS):
                    raise ProtocolError(f"bad handshake from {peer}: {hello!r}")
                worker_id = next(self._worker_ids)
                plane = self.artifact_plane
                send_message(sock, Welcome(
                    worker_id,
                    mesh=plane is not None,
                    mesh_budget_bytes=plane.budget_bytes if plane is not None else None,
                    telemetry=True,
                ))
                sock.settimeout(self.task_timeout)
            except Exception as exc:
                # One bad peer (version skew, scanner, crafted payload) must
                # never take the accept thread — and with it all future
                # registration — down.  But a rejection must not be *silent*
                # either: an operator whose worker never joins needs to see
                # the auth failure / bad slots / protocol error here.
                logger.warning(
                    "rejected connection from %s: %s: %s",
                    format_address(*peer[:2]), type(exc).__name__, exc,
                )
                get_sink().incr("coordinator.rejected_connections")
                sock.close()
                continue
            handle = WorkerHandle(worker_id, sock, hello.slots, format_address(*peer[:2]))
            # The advertised heartbeat cadence sizes this worker's staleness
            # windows; garbage (negative, non-numeric, absurd) degrades to 0,
            # i.e. the wall-clock default windows.
            cadence = getattr(hello, "heartbeat_interval", 0.0)
            if isinstance(cadence, (int, float)) and not isinstance(cadence, bool):
                handle.heartbeat_interval = min(max(float(cadence), 0.0), 3600.0)
            handle.last_seen = time.monotonic()
            with self._joined:
                if self._closed:
                    sock.close()
                    return
                self._workers[worker_id] = handle
                self._joined.notify_all()
            logger.info(
                "worker %d registered from %s with %d slot(s)",
                worker_id, handle.peer, handle.slots,
            )
            get_sink().incr("coordinator.workers_registered")

    # -- the batch RPC ----------------------------------------------------------------

    def run_batch(self, handle, evaluator_id: int, blob: bytes, tasks) -> List[Tuple[int, object]]:
        """Send one :class:`EvalBatch` to ``handle`` and await its reply.

        Raises :class:`WorkerLost` on *transport* failure — EOF or timeout
        (the reply budget scales with the batch: ``task_timeout`` per task)
        — and the caller discards the worker and re-dispatches.  Failures
        that would deterministically repeat on another worker propagate
        instead: a :class:`BatchFailure` re-raises the remote evaluator's
        exception, and a malformed or mismatched reply raises
        :class:`ProtocolError` (a version-skewed worker must not silently
        wipe the whole fleet one re-dispatch at a time).
        """
        tasks = tuple(tasks)
        expected = {index for index, _key in tasks}
        rpc_started = time.monotonic()
        with get_sink().span(
            "coordinator.rpc", worker=handle.worker_id, tasks=len(tasks)
        ), handle.lock:
            handle.busy = True
            try:
                handle.sock.settimeout(
                    self.handshake_timeout + self.task_timeout * max(1, len(tasks))
                )
                include_blob = evaluator_id not in handle.known_evaluators
                send_message(
                    handle.sock,
                    EvalBatch(evaluator_id, tasks, blob if include_blob else None),
                )
                while True:
                    reply = recv_message(handle.sock)
                    # Any frame is proof of life; heartbeats exist for
                    # exactly this timestamp.
                    handle.last_seen = time.monotonic()
                    if isinstance(reply, Heartbeat):
                        # The worker is mid-evaluation and provably alive;
                        # each frame restarts the socket's silence budget, so
                        # a batch may legitimately outlive the nominal
                        # per-task timeout as long as heartbeats keep coming.
                        continue
                    if isinstance(reply, TelemetrySummary):
                        # Fleet telemetry interleaves like heartbeats:
                        # absorb the snapshot and keep waiting for the batch
                        # reply.  Observe-only by construction.
                        self._absorb_telemetry(handle, reply)
                        continue
                    if isinstance(reply, EvaluatorMissing) and reply.evaluator_id == evaluator_id:
                        # The worker's bounded cache evicted this evaluator
                        # since we last shipped it; re-send with the blob.
                        handle.known_evaluators.discard(evaluator_id)
                        send_message(handle.sock, EvalBatch(evaluator_id, tasks, blob))
                        continue
                    if isinstance(reply, (ArtifactFetch, ArtifactHave, ArtifactPush)):
                        # Artifact-plane traffic interleaves with the batch
                        # exactly like heartbeats: serve it and keep waiting
                        # for the batch reply.  The handle's lock is already
                        # held, so the per-handle mesh state is safe.
                        handle_artifact_message(
                            self.artifact_plane, handle, reply,
                            functools.partial(send_message, handle.sock),
                        )
                        continue
                    break
            except (ConnectionClosed, OSError, TimeoutError) as exc:
                raise WorkerLost(
                    f"worker {handle.worker_id} ({handle.peer}) lost with "
                    f"{len(tasks)} task(s) in flight: {exc}",
                    worker_id=handle.worker_id,
                    pending=len(tasks),
                ) from exc
            finally:
                handle.busy = False
        if isinstance(reply, BatchFailure):
            if reply.exception is not None:
                raise reply.exception
            from repro.distrib.errors import RemoteEvaluationError

            raise RemoteEvaluationError(
                f"worker {handle.worker_id} evaluator {evaluator_id} raised: {reply.message}"
            )
        if not isinstance(reply, BatchResult) or {i for i, _ in reply.results} != expected:
            raise ProtocolError(
                f"worker {handle.worker_id} ({handle.peer}) returned a mismatched "
                f"batch reply ({type(reply).__name__}); the worker is likely "
                f"running a different repro version"
            )
        handle.known_evaluators.add(evaluator_id)
        handle.batches_completed += 1
        # Per-task EWMA feeds the straggler detector: batch wall clock
        # normalized by task count, smoothed so one slow candidate does not
        # brand a machine.
        per_task = (time.monotonic() - rpc_started) / max(1, len(tasks))
        if handle.ewma_task_seconds is None:
            handle.ewma_task_seconds = per_task
        else:
            handle.ewma_task_seconds = (
                EWMA_ALPHA * per_task + (1.0 - EWMA_ALPHA) * handle.ewma_task_seconds
            )
        return list(reply.results)

    # -- the artifact plane -----------------------------------------------------------

    def mesh_stats(self) -> Optional[Dict[str, object]]:
        """The artifact plane's counters, or ``None`` when no mesh is served."""
        if self.artifact_plane is None:
            return None
        return self.artifact_plane.stats()

    # -- fleet telemetry --------------------------------------------------------------

    def _absorb_telemetry(self, handle: WorkerHandle, summary: TelemetrySummary) -> None:
        payload = summary.payload if isinstance(summary.payload, dict) else {}
        row: Dict[str, object] = {"worker_id": handle.worker_id, "peer": handle.peer}
        row.update(payload)
        # The frame just arrived, so the worker is healthy by construction;
        # the histogram snapshot is fleet-metrics input, too bulky for the
        # event stream.
        row["health"] = HEALTHY
        event_row = {
            key: value for key, value in row.items() if key != "batch_seconds_hist"
        }
        with self._fleet_lock:
            self._fleet[handle.worker_id] = row
        get_sink().event("fleet.worker", **event_row)

    def fleet_telemetry(self) -> List[Dict[str, object]]:
        """Latest per-worker summary rows, ordered by worker id.

        Includes workers that have since disconnected — the fleet view
        describes the whole campaign, not just the current registry.
        """
        with self._fleet_lock:
            return [dict(self._fleet[key]) for key in sorted(self._fleet)]

    # -- worker health ----------------------------------------------------------------

    def _windows(self, handle: WorkerHandle) -> Tuple[float, float]:
        """Effective ``(stale_after, lost_after)`` for one worker: explicit
        constructor overrides win, otherwise derived from the heartbeat
        cadence the worker advertised (wall-clock defaults without one)."""
        cadence = handle.heartbeat_interval
        if cadence > 0:
            stale = max(STALE_BEATS * cadence, MIN_STALE_AFTER)
            lost = max(LOST_BEATS * cadence, stale + MIN_STALE_AFTER)
        else:
            stale, lost = DEFAULT_STALE_AFTER, DEFAULT_LOST_AFTER
        if self.stale_after is not None:
            stale = self.stale_after
        if self.lost_after is not None:
            lost = self.lost_after
        return stale, max(lost, stale)

    def _probe_idle(self, handle: WorkerHandle) -> None:
        """Refresh an *idle* worker's liveness without consuming frames.

        Between batches nothing reads the socket, so buffered heartbeats
        do not advance ``last_seen`` and a dead peer's EOF goes unseen.  A
        non-blocking ``MSG_PEEK`` under the handle lock settles both: data
        waiting means the worker spoke since the last batch, EOF or a
        reset means it is gone.  Skipped entirely when an RPC holds the
        lock — the recv loop is already tracking liveness there.
        """
        if not handle.lock.acquire(blocking=False):
            return
        try:
            if handle.discarded:
                return
            sock = handle.sock
            previous_timeout = sock.gettimeout()
            try:
                sock.setblocking(False)
                try:
                    data = sock.recv(1, socket.MSG_PEEK)
                except (BlockingIOError, InterruptedError):
                    return  # no frames waiting: silence, judged by the windows
                except OSError:
                    data = b""
            finally:
                try:
                    sock.settimeout(previous_timeout)
                except OSError:
                    pass
            if data:
                handle.last_seen = time.monotonic()
        finally:
            handle.lock.release()
        if not data:
            # EOF / reset: the peer is gone; make the loss official so the
            # mapper never dispatches to a socket known to be dead.
            self.discard(handle)

    def _health_state(self, handle: WorkerHandle, now: float) -> str:
        if handle.discarded:
            return LOST
        stale_after, lost_after = self._windows(handle)
        age = now - handle.last_seen
        if age > lost_after:
            return LOST
        if age > stale_after:
            return STALE
        return HEALTHY

    def _stragglers(self, handles: List[WorkerHandle]) -> Set[int]:
        ewmas = {
            handle.worker_id: handle.ewma_task_seconds
            for handle in handles
            if handle.ewma_task_seconds is not None
        }
        if len(ewmas) < 2:
            return set()  # a fleet of one has no median to lag behind
        median = statistics.median(ewmas.values())
        if median <= 0:
            return set()
        return {
            worker_id for worker_id, ewma in ewmas.items()
            if ewma > STRAGGLER_FACTOR * median
        }

    def fleet_status(self) -> List[Dict[str, object]]:
        """Per-worker fleet rows with live health, for ``/status``.

        Merges the latest telemetry payloads (slots, batches, busy ratio,
        tier hits, mesh bytes) with the derived health state, last-seen
        age, per-task EWMA and the straggler flag.  Discarded workers stay
        in the list as ``lost``.
        """
        now = time.monotonic()
        with self._registry_lock:
            handles = list(self._workers.values())
        for handle in handles:
            if not handle.busy:
                self._probe_idle(handle)
        stragglers = self._stragglers(handles)
        with self._fleet_lock:
            rows = {worker_id: dict(row) for worker_id, row in self._fleet.items()}
        for handle in handles:
            row = rows.setdefault(
                handle.worker_id,
                {"worker_id": handle.worker_id, "peer": handle.peer},
            )
            row.pop("batch_seconds_hist", None)
            uptime = row.get("uptime_seconds")
            busy = row.get("busy_seconds")
            if isinstance(uptime, (int, float)) and isinstance(busy, (int, float)) and uptime > 0:
                row["busy_ratio"] = round(float(busy) / float(uptime), 4)
            row.update(
                slots=handle.slots,
                batches=handle.batches_completed,
                health=self._health_state(handle, now),
                last_seen_age_seconds=round(max(0.0, now - handle.last_seen), 3),
                straggler=handle.worker_id in stragglers,
            )
            if handle.ewma_task_seconds is not None:
                row["ewma_task_seconds"] = round(handle.ewma_task_seconds, 6)
        for row in rows.values():
            row.pop("batch_seconds_hist", None)
            row.setdefault("health", LOST)
            row.setdefault("straggler", False)
        return [rows[key] for key in sorted(rows)]

    def worker_health(self) -> Dict[int, str]:
        """``worker_id -> healthy/stale/lost`` over every known worker."""
        return {
            int(row["worker_id"]): str(row["health"]) for row in self.fleet_status()
        }

    def fleet_metrics(self) -> Dict[str, object]:
        """A registry snapshot of fleet-level gauges and the fleet-merged
        worker batch-duration histogram, merged into ``/metrics``."""
        from repro.telemetry.live import Histogram

        states = {HEALTHY: 0, STALE: 0, LOST: 0}
        stragglers = 0
        for row in self.fleet_status():
            states[str(row.get("health"))] = states.get(str(row.get("health")), 0) + 1
            if row.get("straggler"):
                stragglers += 1
        merged = Histogram()
        with self._fleet_lock:
            snapshots = [
                row.get("batch_seconds_hist")
                for row in self._fleet.values()
                if isinstance(row.get("batch_seconds_hist"), dict)
            ]
        for snapshot in snapshots:
            merged.merge(snapshot)
        gauges = {
            f"fleet.workers.{state}": float(count) for state, count in states.items()
        }
        gauges["fleet.workers.straggling"] = float(stragglers)
        histograms = {}
        if merged.count:
            histograms["worker.batch.seconds"] = merged.snapshot()
        return {"counters": {}, "gauges": gauges, "histograms": histograms}

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Shut down: tell every worker to exit, then close all sockets."""
        with self._joined:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._workers.clear()
        if self.obs_server is not None:
            # Drain first: a scrape racing this teardown gets a clean 503,
            # and the server thread is joined with a bounded timeout so a
            # wedged scraper cannot hang campaign shutdown.
            self.obs_server.close(timeout=2.0)
        for handle in workers:
            with handle.lock:
                try:
                    send_message(handle.sock, Shutdown())
                except DistribError:
                    pass
                try:
                    handle.sock.close()
                except OSError:
                    pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
