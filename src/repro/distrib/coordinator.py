"""The coordinator: the campaign-side endpoint workers register with.

The coordinator owns the listening socket and the worker registry; it does
*not* own any scheduling policy.  :class:`~repro.distrib.mapper.
DistributedMapper` decides which keys go to which worker and what happens
when one dies — the coordinator only offers the two primitives that policy
needs: a snapshot of live workers and a synchronous per-worker batch RPC
(:meth:`Coordinator.run_batch`).

Evaluator blobs are pickled once per program (by the mapper) and shipped to
each worker at most once: :meth:`run_batch` tracks which evaluator ids a
worker holds and omits the blob afterwards.  The worker's cache is bounded,
so that book-keeping can go stale — the :class:`~repro.distrib.protocol.
EvaluatorMissing` reply self-heals it by re-sending the blob.
"""

from __future__ import annotations

import functools
import itertools
import logging
import socket
import threading
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.distrib.artifacts import CoordinatorArtifactPlane, handle_artifact_message
from repro.distrib.errors import (
    ConnectionClosed,
    DistribError,
    ProtocolError,
    WorkerLost,
)
from repro.distrib.protocol import (
    ArtifactFetch,
    ArtifactHave,
    ArtifactPush,
    BatchFailure,
    BatchResult,
    EvalBatch,
    EvaluatorMissing,
    Heartbeat,
    Hello,
    Shutdown,
    TelemetrySummary,
    Welcome,
    authenticate,
    format_address,
    normalize_authkey,
    recv_message,
    send_message,
)
from repro.telemetry import get_sink

logger = logging.getLogger("repro.distrib.coordinator")

#: Upper bound on a worker's advertised slot count.  ``Hello.slots`` weights
#: batch partitioning (the mapper materializes ``slots`` list entries per
#: worker), so an absurd claim from a hand-rolled client would poison the
#: partition — and no real machine runs a thousand evaluation threads.
MAX_WORKER_SLOTS = 1024


def _is_loopback(host: str) -> bool:
    return host == "localhost" or host.startswith("127.") or host == "::1"


class WorkerHandle:
    """Coordinator-side state of one registered worker connection."""

    def __init__(self, worker_id: int, sock: socket.socket, slots: int, peer: str) -> None:
        self.worker_id = worker_id
        self.sock = sock
        self.slots = slots
        self.peer = peer
        #: Evaluator ids this worker is believed to hold (see module docs).
        self.known_evaluators: Set[int] = set()
        #: One in-flight conversation per worker: the protocol is strictly
        #: request/response, so concurrent mapper threads must serialize.
        self.lock = threading.Lock()
        self.batches_completed = 0
        #: Artifact-plane state: bytes this machine has moved over the mesh
        #: (both directions, budget-checked), and in-flight push
        #: reassemblies (``repr(key)`` -> partial chunks) — all touched only
        #: under ``self.lock`` from :meth:`Coordinator.run_batch`, and gone
        #: with the handle when the worker is discarded.
        self.mesh_bytes = 0
        self.mesh_parts: Dict[str, Dict] = {}
        #: Latest :class:`~repro.distrib.protocol.TelemetrySummary` payload
        #: this worker forwarded (observe-only; empty until the first one).
        self.telemetry: Dict[str, object] = {}

    def __repr__(self) -> str:
        return (f"WorkerHandle(id={self.worker_id}, peer={self.peer!r}, "
                f"slots={self.slots}, batches={self.batches_completed})")


class Coordinator:
    """Listens on ``host:port`` and registers workers as they connect.

    A daemon accept-thread performs the :class:`Hello`/:class:`Welcome`
    handshake and publishes each worker to the registry; ``wait_for_workers``
    lets a campaign block until enough capacity has joined.  All sockets are
    torn down by :meth:`close` (workers receive :class:`Shutdown` first, so a
    clean campaign end does not read as a crash on the worker side).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        task_timeout: float = 120.0,
        handshake_timeout: float = 5.0,
        authkey: Union[str, bytes, None] = None,
        artifact_store=None,
        mesh_budget_bytes: Optional[int] = None,
    ) -> None:
        #: Per-*task* reply budget: a batch of N tasks may take N times this
        #: before its worker is declared lost (a fixed per-batch timeout
        #: would discard healthy-but-busy workers on large generations).
        self.task_timeout = task_timeout
        self.handshake_timeout = handshake_timeout
        #: Shared secret for the mutual HMAC handshake.  ``None`` skips
        #: authentication, which is why the check below *refuses* a keyless
        #: bind beyond loopback rather than documenting a warning: frames
        #: are pickled, and unpickling bytes from an unauthenticated network
        #: peer is arbitrary code execution.
        self.authkey = normalize_authkey(authkey)
        #: The artifact mesh: when a store is given (an
        #: :class:`~repro.tuner.store.ArtifactStore` or a directory path),
        #: this coordinator serves the artifact plane from it — workers
        #: push fresh tier-2 entries here and fetch their misses from it,
        #: budget-capped per machine by ``mesh_budget_bytes``.
        self.artifact_plane: Optional[CoordinatorArtifactPlane] = None
        if artifact_store is not None:
            from repro.tuner.store import ArtifactStore, persistent_store

            if not isinstance(artifact_store, ArtifactStore):
                artifact_store = persistent_store(artifact_store)
            self.artifact_plane = CoordinatorArtifactPlane(
                artifact_store, budget_bytes=mesh_budget_bytes
            )
        if self.authkey is None and not _is_loopback(host):
            raise ValueError(
                f"refusing to bind a coordinator without an authkey on "
                f"{host!r}: any peer that reaches this port could execute "
                f"code via a crafted pickle frame.  Pass authkey= (CLI: "
                f"--authkey / $REPRO_DISTRIB_AUTHKEY) or bind 127.0.0.1."
            )
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._workers: Dict[int, WorkerHandle] = {}
        #: Fleet telemetry: worker id -> latest summary payload (plus peer /
        #: slots).  Kept separately from the registry so the fleet view of a
        #: campaign outlives discarded workers.
        self._fleet: Dict[int, Dict[str, object]] = {}
        self._fleet_lock = threading.Lock()
        self._registry_lock = threading.Lock()
        self._joined = threading.Condition(self._registry_lock)
        self._worker_ids = itertools.count(1)
        self._closed = False
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"coordinator-accept:{self.port}", daemon=True
        )
        self._accept_thread.start()

    # -- registry ---------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        return (self.host, self.port)

    def address_string(self) -> str:
        return format_address(self.host, self.port)

    def workers(self) -> List[WorkerHandle]:
        """Snapshot of live workers, ordered by registration (worker id)."""
        with self._registry_lock:
            return [self._workers[key] for key in sorted(self._workers)]

    def worker_count(self) -> int:
        with self._registry_lock:
            return len(self._workers)

    def total_slots(self) -> int:
        with self._registry_lock:
            return sum(handle.slots for handle in self._workers.values())

    def wait_for_workers(self, count: int, timeout: Optional[float] = None) -> int:
        """Block until at least ``count`` workers registered; returns the
        live count, raising :class:`DistribError` on timeout."""
        with self._joined:
            if not self._joined.wait_for(lambda: len(self._workers) >= count, timeout):
                raise DistribError(
                    f"only {len(self._workers)} of {count} workers registered with "
                    f"{self.address_string()} within {timeout}s"
                )
            return len(self._workers)

    def discard(self, handle: WorkerHandle) -> None:
        """Drop a dead worker: close its socket, remove it from the registry."""
        with self._registry_lock:
            dropped = self._workers.pop(handle.worker_id, None)
        if dropped is not None:
            logger.warning(
                "worker %d (%s) discarded after %d completed batch(es)",
                handle.worker_id, handle.peer, handle.batches_completed,
            )
        try:
            handle.sock.close()
        except OSError:
            pass

    # -- accept loop ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                sock, peer = self._listener.accept()
            except OSError:
                return  # listener closed by close()
            try:
                sock.settimeout(self.handshake_timeout)
                if self.authkey is not None:
                    # Before any pickle byte is parsed: unauthenticated
                    # peers never reach recv_message.
                    authenticate(sock, self.authkey, server=True)
                hello = recv_message(sock)
                # ``slots`` weights batch partitioning, so a bogus claim
                # (zero, negative, bool, or an absurdly large int) must be
                # rejected cleanly at the door, never trusted verbatim.
                if (not isinstance(hello, Hello)
                        or not isinstance(hello.slots, int)
                        or isinstance(hello.slots, bool)
                        or hello.slots < 1
                        or hello.slots > MAX_WORKER_SLOTS):
                    raise ProtocolError(f"bad handshake from {peer}: {hello!r}")
                worker_id = next(self._worker_ids)
                plane = self.artifact_plane
                send_message(sock, Welcome(
                    worker_id,
                    mesh=plane is not None,
                    mesh_budget_bytes=plane.budget_bytes if plane is not None else None,
                    telemetry=True,
                ))
                sock.settimeout(self.task_timeout)
            except Exception as exc:
                # One bad peer (version skew, scanner, crafted payload) must
                # never take the accept thread — and with it all future
                # registration — down.  But a rejection must not be *silent*
                # either: an operator whose worker never joins needs to see
                # the auth failure / bad slots / protocol error here.
                logger.warning(
                    "rejected connection from %s: %s: %s",
                    format_address(*peer[:2]), type(exc).__name__, exc,
                )
                get_sink().incr("coordinator.rejected_connections")
                sock.close()
                continue
            handle = WorkerHandle(worker_id, sock, hello.slots, format_address(*peer[:2]))
            with self._joined:
                if self._closed:
                    sock.close()
                    return
                self._workers[worker_id] = handle
                self._joined.notify_all()
            logger.info(
                "worker %d registered from %s with %d slot(s)",
                worker_id, handle.peer, handle.slots,
            )
            get_sink().incr("coordinator.workers_registered")

    # -- the batch RPC ----------------------------------------------------------------

    def run_batch(self, handle, evaluator_id: int, blob: bytes, tasks) -> List[Tuple[int, object]]:
        """Send one :class:`EvalBatch` to ``handle`` and await its reply.

        Raises :class:`WorkerLost` on *transport* failure — EOF or timeout
        (the reply budget scales with the batch: ``task_timeout`` per task)
        — and the caller discards the worker and re-dispatches.  Failures
        that would deterministically repeat on another worker propagate
        instead: a :class:`BatchFailure` re-raises the remote evaluator's
        exception, and a malformed or mismatched reply raises
        :class:`ProtocolError` (a version-skewed worker must not silently
        wipe the whole fleet one re-dispatch at a time).
        """
        tasks = tuple(tasks)
        expected = {index for index, _key in tasks}
        with get_sink().span(
            "coordinator.rpc", worker=handle.worker_id, tasks=len(tasks)
        ), handle.lock:
            try:
                handle.sock.settimeout(
                    self.handshake_timeout + self.task_timeout * max(1, len(tasks))
                )
                include_blob = evaluator_id not in handle.known_evaluators
                send_message(
                    handle.sock,
                    EvalBatch(evaluator_id, tasks, blob if include_blob else None),
                )
                while True:
                    reply = recv_message(handle.sock)
                    if isinstance(reply, Heartbeat):
                        # The worker is mid-evaluation and provably alive;
                        # each frame restarts the socket's silence budget, so
                        # a batch may legitimately outlive the nominal
                        # per-task timeout as long as heartbeats keep coming.
                        continue
                    if isinstance(reply, TelemetrySummary):
                        # Fleet telemetry interleaves like heartbeats:
                        # absorb the snapshot and keep waiting for the batch
                        # reply.  Observe-only by construction.
                        self._absorb_telemetry(handle, reply)
                        continue
                    if isinstance(reply, EvaluatorMissing) and reply.evaluator_id == evaluator_id:
                        # The worker's bounded cache evicted this evaluator
                        # since we last shipped it; re-send with the blob.
                        handle.known_evaluators.discard(evaluator_id)
                        send_message(handle.sock, EvalBatch(evaluator_id, tasks, blob))
                        continue
                    if isinstance(reply, (ArtifactFetch, ArtifactHave, ArtifactPush)):
                        # Artifact-plane traffic interleaves with the batch
                        # exactly like heartbeats: serve it and keep waiting
                        # for the batch reply.  The handle's lock is already
                        # held, so the per-handle mesh state is safe.
                        handle_artifact_message(
                            self.artifact_plane, handle, reply,
                            functools.partial(send_message, handle.sock),
                        )
                        continue
                    break
            except (ConnectionClosed, OSError, TimeoutError) as exc:
                raise WorkerLost(
                    f"worker {handle.worker_id} ({handle.peer}) lost with "
                    f"{len(tasks)} task(s) in flight: {exc}",
                    worker_id=handle.worker_id,
                    pending=len(tasks),
                ) from exc
        if isinstance(reply, BatchFailure):
            if reply.exception is not None:
                raise reply.exception
            from repro.distrib.errors import RemoteEvaluationError

            raise RemoteEvaluationError(
                f"worker {handle.worker_id} evaluator {evaluator_id} raised: {reply.message}"
            )
        if not isinstance(reply, BatchResult) or {i for i, _ in reply.results} != expected:
            raise ProtocolError(
                f"worker {handle.worker_id} ({handle.peer}) returned a mismatched "
                f"batch reply ({type(reply).__name__}); the worker is likely "
                f"running a different repro version"
            )
        handle.known_evaluators.add(evaluator_id)
        handle.batches_completed += 1
        return list(reply.results)

    # -- the artifact plane -----------------------------------------------------------

    def mesh_stats(self) -> Optional[Dict[str, object]]:
        """The artifact plane's counters, or ``None`` when no mesh is served."""
        if self.artifact_plane is None:
            return None
        return self.artifact_plane.stats()

    # -- fleet telemetry --------------------------------------------------------------

    def _absorb_telemetry(self, handle: WorkerHandle, summary: TelemetrySummary) -> None:
        payload = summary.payload if isinstance(summary.payload, dict) else {}
        row: Dict[str, object] = {"worker_id": handle.worker_id, "peer": handle.peer}
        row.update(payload)
        with self._fleet_lock:
            self._fleet[handle.worker_id] = row
        get_sink().event("fleet.worker", **row)

    def fleet_telemetry(self) -> List[Dict[str, object]]:
        """Latest per-worker summary rows, ordered by worker id.

        Includes workers that have since disconnected — the fleet view
        describes the whole campaign, not just the current registry.
        """
        with self._fleet_lock:
            return [dict(self._fleet[key]) for key in sorted(self._fleet)]

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Shut down: tell every worker to exit, then close all sockets."""
        with self._joined:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            self._workers.clear()
        for handle in workers:
            with handle.lock:
                try:
                    send_message(handle.sock, Shutdown())
                except DistribError:
                    pass
                try:
                    handle.sock.close()
                except OSError:
                    pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
