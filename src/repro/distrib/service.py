"""The tuning service: a long-lived, multi-tenant job API over the substrate.

This inverts the coordinator relationship: instead of one campaign owning
one fleet for one run, a :class:`TuningService` owns the worker pool, the
shared content-addressed artifact cache/store, and a durable job table —
and *clients* come and go, submitting tuning jobs over the pickle-free wire
format (:mod:`repro.distrib.wire`) and streaming generation summaries back.

Two planes, two trust levels:

* the **client plane** (this module's listener) speaks schema-validated
  JSON frames; malformed, oversized, or type-confused input is answered
  with a typed ``error`` frame and the accept loop survives — no byte a
  client sends is ever unpickled;
* the **worker plane** is the existing trusted
  :mod:`repro.distrib.protocol` (HMAC handshake, pickle payloads) behind
  the shared :class:`~repro.campaign.pool.SharedWorkerPool`, unchanged.

Scheduling is generation-granular fair share: each admitted job runs its
deterministic :class:`~repro.tuner.tuner.BinTuner` in its own thread, but
every generation passes through a turnstile that admits exactly one at a
time, always the waiting tenant with the least accumulated work.  That
ordering is the dedupe economics: when tenant B submits the same (source,
family) as tenant A, B is always the lighter tenant when its generation g
comes up, so A has already compiled those exact candidates into the shared
cache and B's generation is all artifact hits — per-tenant accounting shows
B's compile cost at ~0.  Because every job keeps its *own* database shard
and its own GA sequence, each job's fingerprint is bit-for-bit identical to
a solo run of the same spec: shared caches are content-addressed and can
change only timing, never results.

Durability rides :mod:`repro.campaign.database`: each generation checkpoints
the job's shard, the job table persists under ``state_dir``, and a service
restarted over the same ``state_dir`` re-queues unfinished jobs, replaying
their shards so the resumed run converges to the identical fingerprint.
"""

from __future__ import annotations

import hmac
import json
import logging
import socket
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional

from repro import telemetry
from repro.distrib.errors import ConnectionClosed, ServiceError
from repro.distrib.jobs import (
    AdmissionError,
    AdmissionLimits,
    FairShareQueue,
    Job,
    JobSpec,
    TenantAccounting,
    stable_job_id,
    validate_submission,
)
from repro.distrib.protocol import format_address
from repro.distrib.wire import (
    MAX_WIRE_FRAME_BYTES,
    FrameTooLarge,
    WireError,
    error_message,
    make_message,
    recv_wire,
    send_wire,
)
from repro.campaign.database import CampaignDatabase
from repro.campaign.campaign import default_compiler_provider
from repro.tuner import BinTuner, BinTunerConfig, BuildSpec, EvaluationStats
from repro.tuner.database import write_text_atomic
from repro.tuner.pipeline import DEFAULT_ARTIFACT_CACHE_SIZE, ArtifactCache

logger = logging.getLogger("repro.distrib.service")

JOBS_FILE = "jobs.json"
DATABASE_DIR = "database"
STORE_DIR = "store"
STATE_VERSION = 1


class _ServiceStopping(Exception):
    """Internal: the service is draining; the job re-queues, not fails."""


class _JobCancelled(Exception):
    """Internal: the job's tenant asked for cancellation."""


@dataclass
class ServiceConfig:
    """Knobs of one service instance."""

    name: str = "repro-tuning"
    #: Client-plane bind address.  Loopback by default; the wire format is
    #: pickle-free so a wider bind is safe *transport-wise*, but pair it
    #: with ``token`` — the endpoints mutate state.
    host: str = "127.0.0.1"
    port: int = 0
    #: Shared bearer token every request must carry (``None``: open —
    #: appropriate on loopback only).  Constant-time compared.
    token: Optional[str] = None
    #: Durability root: job table, per-job database shards, artifact store.
    #: ``None`` keeps everything in memory (tests, demos).
    state_dir: Optional[Path] = None
    #: Worker-pool substrate, exactly the campaign knobs.
    dispatch: str = "serial"
    workers: int = 1
    #: ``HOST:PORT`` the *worker*-plane coordinator binds (distributed only).
    serve_workers: Optional[str] = None
    authkey: Optional[str] = None
    limits: AdmissionLimits = field(default_factory=AdmissionLimits)
    #: How many job runner threads may exist at once.  Generations are
    #: serialized by the fair-share turnstile regardless; this only caps
    #: thread count and checkpoint-replay concurrency.
    max_active_jobs: int = 4
    artifact_cache_size: int = DEFAULT_ARTIFACT_CACHE_SIZE
    obs_port: Optional[int] = None
    obs_host: str = "127.0.0.1"
    #: Write tenant-tagged telemetry (``service.job`` / ``service.generation``
    #: spans) as JSONL here; ``python -m repro.telemetry report`` renders the
    #: per-tenant fair-share table from it.  Observe-only, as ever.
    telemetry_dir: Optional[Path] = None
    max_frame_bytes: int = MAX_WIRE_FRAME_BYTES
    #: Per-connection socket timeout (seconds): a wedged client cannot pin
    #: its handler thread forever.
    client_timeout: float = 300.0


class _GenerationGate:
    """The fair-share turnstile: one generation runs at a time, least-served
    tenant first (then priority, then arrival).  Stop/cancel wake waiters
    immediately instead of letting them queue for a turn that never comes."""

    def __init__(self, accounting: TenantAccounting) -> None:
        self._accounting = accounting
        self._cond = threading.Condition()
        self._waiting: List[Job] = []
        self._busy = False
        self._stopped = False

    def stop(self) -> None:
        with self._cond:
            self._stopped = True
            self._cond.notify_all()

    def _next(self) -> Optional[Job]:
        if not self._waiting:
            return None
        return min(
            self._waiting,
            key=lambda job: (
                self._accounting.cost(job.spec.tenant),
                -job.spec.priority,
                job.submitted_seq,
            ),
        )

    @contextmanager
    def turn(self, job: Job):
        with self._cond:
            self._waiting.append(job)
            try:
                while True:
                    if self._stopped:
                        raise _ServiceStopping()
                    if job.cancel_requested:
                        raise _JobCancelled()
                    if not self._busy and self._next() is job:
                        break
                    self._cond.wait(timeout=1.0)
            finally:
                self._waiting.remove(job)
            self._busy = True
        try:
            yield
        finally:
            with self._cond:
                self._busy = False
                self._cond.notify_all()


class TuningService:
    """Accepts tuning jobs from many tenants over one shared substrate."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        limits = self.config.limits
        self._lock = threading.Lock()
        self._db_lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._next_seq = 1
        self._accounting = TenantAccounting()
        self._queue = FairShareQueue(self._accounting)
        self._gate = _GenerationGate(self._accounting)
        self._active = 0
        self._runners: List[threading.Thread] = []
        self._stopping = False
        self._started = time.time()
        self.rejected_frames = 0
        self.rejected_connections = 0
        self.connections = 0

        self._sink = None
        self._previous_sink = None
        if self.config.telemetry_dir is not None:
            self._sink = telemetry.JsonlSink(
                Path(self.config.telemetry_dir), label="service"
            )
            self._previous_sink = telemetry.set_sink(self._sink)

        state_dir = self.config.state_dir
        self._state_dir = Path(state_dir) if state_dir is not None else None
        self._database_dir = (
            self._state_dir / DATABASE_DIR if self._state_dir is not None else None
        )
        self._store_dir = (
            self._state_dir / STORE_DIR if self._state_dir is not None else None
        )
        self._database = CampaignDatabase(name=self.config.name)
        self._artifact_cache = ArtifactCache(
            self.config.artifact_cache_size
        ).ensure_store(self._store_dir)

        # Worker plane: the shared pool, unchanged trust model.  The mesh is
        # served from the service store when the fleet is distributed.
        from repro.campaign.pool import SharedWorkerPool

        distributed = self.config.dispatch == "distributed"
        self._pool = SharedWorkerPool(
            executor="serial",
            workers=self.config.workers,
            dispatch=self.config.dispatch,
            serve=self.config.serve_workers,
            authkey=self.config.authkey,
            mesh_store=(self._store_dir if distributed and self._store_dir else None),
            obs_port=(self.config.obs_port if distributed else None),
            obs_host=self.config.obs_host,
        )
        self._obs = self._pool.obs_server
        self._own_obs = False
        if self._obs is None and self.config.obs_port is not None:
            from repro.distrib.obsserver import ObservabilityServer

            self._obs = ObservabilityServer(
                host=self.config.obs_host, port=self.config.obs_port
            )
            self._own_obs = True
        if self._obs is not None:
            self._obs.add_source("service", self.status_snapshot)
            self._obs.add_metrics_source(self.metrics_snapshot)

        if self._state_dir is not None:
            self._restore_state()

        # Client plane: pickle-free listener, crash-proof accept loop.
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((self.config.host, self.config.port))
        self._listener.listen(32)
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"service-accept:{self.port}", daemon=True
        )
        self._accept_thread.start()
        logger.info("tuning service listening on %s", self.address_string())
        self._maybe_start_jobs()

    # -- addresses / fleet ------------------------------------------------------------

    def address_string(self) -> str:
        return format_address(self.host, self.port)

    def worker_address(self) -> Optional[str]:
        """The worker-plane coordinator address (distributed dispatch only)."""
        if self._pool.coordinator is None:
            return None
        return self._pool.address_string()

    def wait_for_workers(self, count: int, timeout: Optional[float] = None) -> int:
        return self._pool.wait_for_workers(count, timeout)

    @property
    def obs_server(self):
        return self._obs

    # -- durability -------------------------------------------------------------------

    def _jobs_path(self) -> Optional[Path]:
        if self._state_dir is None:
            return None
        return self._state_dir / JOBS_FILE

    def _persist(self) -> None:
        path = self._jobs_path()
        if path is None:
            return
        with self._lock:
            rows = []
            for job in self._jobs.values():
                rows.append(
                    {
                        "job_id": job.job_id,
                        "submitted_seq": job.submitted_seq,
                        "spec": job.spec.as_dict(),
                        "state": job.state,
                        "generations_done": job.generations_done,
                        "error": job.error,
                        "result": job.result,
                        "stats": job.stats.as_dict(),
                    }
                )
            payload = {"version": STATE_VERSION, "next_seq": self._next_seq,
                       "jobs": rows}
        path.parent.mkdir(parents=True, exist_ok=True)
        write_text_atomic(path, json.dumps(payload, indent=2))

    def _restore_state(self) -> None:
        """Reload the job table and database shards; unfinished jobs re-queue.

        A job that was running when the previous process died resumes from
        its per-generation shard checkpoint: the replayed search hits the
        database for every already-evaluated candidate, so the finished
        fingerprint equals an uninterrupted run's.
        """
        if self._database_dir is not None and (
            self._database_dir / "index.json"
        ).exists():
            with self._db_lock:
                self._database = CampaignDatabase.load(self._database_dir)
        path = self._jobs_path()
        if path is None or not path.exists():
            return
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning("ignoring unreadable job table %s: %s", path, exc)
            return
        restored = 0
        for row in payload.get("jobs", []):
            try:
                spec = JobSpec.from_dict(row["spec"])
                job = Job(row["job_id"], spec, int(row["submitted_seq"]))
            except (KeyError, TypeError, ValueError) as exc:
                logger.warning("skipping corrupt job row: %s", exc)
                continue
            job.generations_done = int(row.get("generations_done", 0))
            job.error = row.get("error")
            job.result = row.get("result")
            job.stats = EvaluationStats.from_dict(row.get("stats", {}))
            state = row.get("state", "queued")
            self._accounting.bump(spec.tenant, "jobs_submitted")
            self._accounting.absorb(spec.tenant, job.stats)
            if state in ("done", "failed", "cancelled"):
                job.set_state(state)
                counter = {"done": "jobs_done", "failed": "jobs_failed",
                           "cancelled": "jobs_cancelled"}[state]
                self._accounting.bump(spec.tenant, counter)
            else:
                # queued *and* running both restart from the checkpoint.
                job.set_state("queued")
                job.append_event("queued", {"resumed": True})
                self._queue.push(job)
                restored += 1
            self._jobs[job.job_id] = job
            self._next_seq = max(self._next_seq, job.submitted_seq + 1)
        self._next_seq = max(self._next_seq, int(payload.get("next_seq", 1)))
        if restored:
            logger.info("restored %d unfinished job(s) from %s", restored, path)

    # -- scheduling -------------------------------------------------------------------

    def _maybe_start_jobs(self) -> None:
        while True:
            with self._lock:
                if self._stopping or self._active >= self.config.max_active_jobs:
                    return
                job = self._queue.pop()
                if job is None:
                    return
                self._active += 1
                thread = threading.Thread(
                    target=self._runner, args=(job,),
                    name=f"service-job:{job.job_id}", daemon=True,
                )
                self._runners.append(thread)
            thread.start()

    def _runner(self, job: Job) -> None:
        try:
            self._run_job(job)
        except _ServiceStopping:
            # Not a failure: back to the queue, durable, resumed next start.
            job.set_state("queued")
        except _JobCancelled:
            job.set_state("cancelled")
            job.append_event("cancelled", {"reason": "client request"})
            self._accounting.bump(job.spec.tenant, "jobs_cancelled")
        except Exception as exc:  # noqa: BLE001 — a job bug must not kill the service
            logger.exception("job %s failed", job.job_id)
            job.error = {"code": "job-failed", "message": f"{type(exc).__name__}: {exc}"}
            job.append_event("failed", dict(job.error))
            job.set_state("failed")
            self._accounting.bump(job.spec.tenant, "jobs_failed")
        finally:
            self._persist()
            with self._lock:
                self._active -= 1
            self._maybe_start_jobs()

    def _shard_program(self, job: Job) -> str:
        """Per-job shard key: dedupe must stay per-job so every job's shard
        carries its own full record sequence (the fingerprint-parity
        contract); two tenants tuning the same program share *artifacts*,
        never database records."""
        return f"{job.job_id}.{job.spec.program}"

    def _save_shard(self, job: Job) -> None:
        if self._database_dir is None:
            return
        with self._db_lock:
            self._database.save_shard(
                job.spec.family, self._shard_program(job), self._database_dir
            )

    def _run_job(self, job: Job) -> None:
        spec = job.spec
        job.set_state("running")
        job.append_event("started", {"tenant": spec.tenant, "family": spec.family,
                                     "program": spec.program})
        self._persist()
        compiler = default_compiler_provider(spec.family)
        build = BuildSpec(name=spec.program, source=spec.source)
        # The budget mapping is JobBudget's single source of truth — a solo
        # BinTuner built from the same kwargs runs the identical search.
        config = BinTunerConfig(
            **spec.budget.tuner_config_kwargs(),
            pipeline="staged",
            store_dir=self._store_dir,
        )
        with self._db_lock:
            shard = self._database.shard(spec.family, self._shard_program(job))
        tuner = BinTuner(
            compiler,
            build,
            config,
            database=shard,
            mapper_factory=self._pool.mapper,
            artifact_cache=self._artifact_cache,
        )
        # The shared artifact cache is synchronized by the turnstile, so the
        # baseline build (which feeds it) takes a turn like any generation.
        with self._gate.turn(job):
            engine = tuner.evaluation_engine()

        original_evaluate = engine.evaluate_batch

        def gated_evaluate(batch):
            if job.cancel_requested:
                raise _JobCancelled()
            with self._gate.turn(job):
                before = replace(engine.stats)
                with telemetry.get_sink().span(
                    "service.generation",
                    tenant=spec.tenant, job=job.job_id,
                    family=spec.family, program=spec.program,
                    generation=engine.stats.batches,
                ):
                    scores = original_evaluate(batch)
                delta = engine.stats.since(before)
                job.stats = job.stats.add(delta)
                job.generations_done = engine.stats.batches
                self._accounting.absorb(spec.tenant, delta)
                job.append_event(
                    "generation",
                    {
                        "generation": engine.stats.batches,
                        "evaluated": delta.evaluated,
                        "evaluated_total": engine.stats.evaluated,
                        "best_fitness": engine.database.best_fitness(),
                        "compile_seconds": round(delta.compile_seconds, 6),
                        "artifact_hits": delta.artifact_hits,
                        "artifact_misses": delta.artifact_misses,
                        "tier2_hits": delta.artifact_store_hits,
                        "mesh_hits": delta.artifact_mesh_hits,
                    },
                )
            return scores

        engine.evaluate_batch = gated_evaluate
        engine.on_batch = lambda _engine: self._save_shard(job)

        with telemetry.get_sink().span(
            "service.job",
            tenant=spec.tenant, job=job.job_id,
            family=spec.family, program=spec.program,
        ) as span:
            result = tuner.run()
            span.set(iterations=result.iterations,
                     best_fitness=result.best_fitness)
        self._save_shard(job)
        job.result = {
            "best_flags": list(result.best_flags.sorted_names()),
            "best_fitness": result.best_fitness,
            "iterations": result.iterations,
            "fingerprint": shard.fingerprint(),
            "elapsed_seconds": round(result.elapsed_seconds, 6),
        }
        job.append_event("done", dict(job.result))
        job.set_state("done")
        self._accounting.bump(spec.tenant, "jobs_done")

    # -- client plane -----------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                conn, peer = self._listener.accept()
            except OSError:
                if self._stopping:
                    return
                continue
            try:
                conn.settimeout(self.config.client_timeout)
                with self._lock:
                    self.connections += 1
                threading.Thread(
                    target=self._serve_client, args=(conn, peer),
                    name=f"service-client:{peer[0]}:{peer[1]}", daemon=True,
                ).start()
            except Exception as exc:  # noqa: BLE001 — accept loop must survive
                with self._lock:
                    self.rejected_connections += 1
                logger.warning("client connection from %s rejected: %s", peer, exc)
                try:
                    conn.close()
                except OSError:
                    pass

    def _serve_client(self, conn: socket.socket, peer) -> None:
        try:
            send_wire(conn, make_message(
                "welcome", service=self.config.name,
                families=list(self.config.limits.families),
            ))
            while not self._stopping:
                try:
                    message = recv_wire(
                        conn, max_frame_bytes=self.config.max_frame_bytes
                    )
                except FrameTooLarge as exc:
                    # The oversized payload was never read, so the stream
                    # cannot be resynchronized: one typed error, then hang up.
                    with self._lock:
                        self.rejected_frames += 1
                    send_wire(conn, error_message(exc.code, str(exc)))
                    return
                except WireError as exc:
                    # Payload fully read but refused: answer and keep going.
                    with self._lock:
                        self.rejected_frames += 1
                    send_wire(conn, error_message(exc.code, str(exc)))
                    continue
                try:
                    self._dispatch(conn, message)
                except ServiceError as exc:
                    send_wire(conn, error_message(exc.code, str(exc)))
                except ConnectionClosed:
                    raise
                except Exception as exc:  # noqa: BLE001 — never a traceback on the wire
                    logger.exception("handler failed for %s from %s",
                                     message.get("type"), peer)
                    send_wire(conn, error_message(
                        "internal", f"{type(exc).__name__} while handling "
                        f"{message.get('type')!r}"))
        except (ConnectionClosed, TimeoutError, OSError):
            pass  # client went away — routine, not an incident
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _authorized(self, message: Dict[str, object]) -> bool:
        token = self.config.token
        if token is None:
            return True
        offered = message.get("token")
        return isinstance(offered, str) and hmac.compare_digest(offered, token)

    def _dispatch(self, conn: socket.socket, message: Dict[str, object]) -> None:
        kind = message["type"]
        if kind == "ping":
            send_wire(conn, make_message(
                "pong", uptime_seconds=round(time.time() - self._started, 3)))
            return
        if not self._authorized(message):
            raise ServiceError("unauthorized", "missing or invalid token")
        if kind == "submit":
            send_wire(conn, self._handle_submit(message))
        elif kind == "status":
            send_wire(conn, make_message(
                "job", job=self._get_job(message["job_id"]).status_row()))
        elif kind == "jobs":
            tenant = message.get("tenant")
            with self._lock:
                rows = [job.status_row() for job in self._jobs.values()
                        if tenant is None or job.spec.tenant == tenant]
            rows.sort(key=lambda row: row["job_id"])
            send_wire(conn, make_message("job_list", rows=rows))
        elif kind == "cancel":
            send_wire(conn, self._handle_cancel(message))
        elif kind == "accounting":
            tenants = self._accounting.snapshot()
            tenant = message.get("tenant")
            if tenant is not None:
                tenants = {name: row for name, row in tenants.items()
                           if name == tenant}
            send_wire(conn, make_message("accounts", tenants=tenants))
        elif kind == "stream":
            self._handle_stream(conn, message)
        else:
            # A schema-valid but server-bound type (e.g. a client replaying
            # "welcome" back) is a protocol misuse, not a crash.
            raise ServiceError("bad-type", f"{kind!r} is not a client request")

    def _get_job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError("unknown-job", f"no such job {job_id!r}")
        return job

    def _handle_submit(self, message: Dict[str, object]) -> Dict[str, object]:
        limits = self.config.limits
        try:
            spec = validate_submission(message, limits)
        except AdmissionError as exc:
            with self._lock:
                self.rejected_frames += 1
            tenant = message.get("tenant")
            if isinstance(tenant, str) and tenant:
                self._accounting.bump(tenant[:64], "jobs_rejected")
            return error_message(exc.code, str(exc))
        if self._queue.queued_for(spec.tenant) >= limits.max_queued_per_tenant:
            self._accounting.bump(spec.tenant, "jobs_rejected")
            return error_message(
                "queue-full",
                f"tenant {spec.tenant!r} already has "
                f"{limits.max_queued_per_tenant} queued job(s)",
            )
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
            job = Job(stable_job_id(seq), spec, seq)
            self._jobs[job.job_id] = job
        self._accounting.bump(spec.tenant, "jobs_submitted")
        position = self._queue.push(job)
        job.append_event("queued", {"position": position})
        telemetry.get_sink().incr("service.jobs.submitted")
        self._persist()
        self._maybe_start_jobs()
        return make_message("submitted", job_id=job.job_id, position=position)

    def _handle_cancel(self, message: Dict[str, object]) -> Dict[str, object]:
        job = self._get_job(message["job_id"])
        if job.terminal:
            return make_message("cancelled", job_id=job.job_id, state=job.state)
        if self._queue.remove(job):
            job.set_state("cancelled")
            job.append_event("cancelled", {"reason": "client request"})
            self._accounting.bump(job.spec.tenant, "jobs_cancelled")
            self._persist()
            return make_message("cancelled", job_id=job.job_id, state="cancelled")
        # Running: the turnstile check picks it up before the next generation.
        job.request_cancel()
        return make_message("cancelled", job_id=job.job_id, state=job.state)

    def _handle_stream(self, conn: socket.socket,
                       message: Dict[str, object]) -> None:
        """Stream a job's events from ``from_seq``; ends after the terminal
        event.  The log lives on the job, so a client that disconnects and
        reconnects replays from any offset — no per-connection state."""
        job = self._get_job(message["job_id"])
        seq = message.get("from_seq", 0)
        if isinstance(seq, bool) or not isinstance(seq, int) or seq < 0:
            raise ServiceError("bad-schema", "from_seq must be a non-negative integer")
        while True:
            events = job.events_since(seq, timeout=0.5)
            for event in events:
                seq = event["seq"]
                send_wire(conn, make_message(
                    "event", job_id=job.job_id, seq=seq,
                    kind=event["kind"], data=event["data"],
                ))
            if self._stopping:
                return
            if not events and job.terminal:
                return

    # -- observability ----------------------------------------------------------------

    def status_snapshot(self) -> Dict[str, object]:
        with self._lock:
            rows = [job.status_row() for job in self._jobs.values()]
            active = self._active
            connections = self.connections
            rejected = self.rejected_frames
        rows.sort(key=lambda row: row["job_id"])
        return {
            "name": self.config.name,
            "address": self.address_string(),
            "uptime_seconds": round(time.time() - self._started, 3),
            "active_jobs": active,
            "queue_depth": len(self._queue),
            "connections": connections,
            "rejected_frames": rejected,
            "jobs": rows,
            "tenants": self._accounting.snapshot(),
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Per-tenant counters for ``/metrics`` (merged into the sink's)."""
        counters: Dict[str, float] = {}
        with self._lock:
            counters["service.connections"] = float(self.connections)
            counters["service.rejected_frames"] = float(self.rejected_frames)
            counters["service.rejected_connections"] = float(
                self.rejected_connections)
            counters["service.jobs"] = float(len(self._jobs))
        for tenant, row in self._accounting.snapshot().items():
            prefix = f"service.tenant.{tenant}"
            counters[f"{prefix}.candidates"] = float(row["candidates_evaluated"])
            counters[f"{prefix}.compile_seconds"] = float(row["compile_seconds"])
            counters[f"{prefix}.tier2_hits"] = float(row["tier2_hits"])
            counters[f"{prefix}.mesh_hits"] = float(row["mesh_hits"])
            counters[f"{prefix}.jobs_done"] = float(row["jobs_done"])
            counters[f"{prefix}.jobs_rejected"] = float(row["jobs_rejected"])
        return {"counters": counters}

    # -- queries used by tests / the CLI ----------------------------------------------

    def job(self, job_id: str) -> Job:
        return self._get_job(job_id)

    def database(self) -> CampaignDatabase:
        return self._database

    def accounting_snapshot(self) -> Dict[str, Dict[str, object]]:
        return self._accounting.snapshot()

    # -- lifecycle --------------------------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Drain: stop accepting, park running jobs back in the queue
        (durably, when ``state_dir`` is set), shut the pool down."""
        self._stopping = True
        self._gate.stop()
        try:
            self._listener.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)
        deadline = time.monotonic() + timeout
        for thread in self._runners:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        self._persist()
        if self._own_obs and self._obs is not None:
            self._obs.close()
        self._pool.close()
        if self._sink is not None:
            telemetry.set_sink(self._previous_sink)
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "TuningService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_forever(service: TuningService,
                  poll_interval: float = 0.5) -> None:
    """Block until interrupted (the CLI's foreground mode)."""
    try:
        while True:
            time.sleep(poll_interval)
    except KeyboardInterrupt:
        logger.info("interrupt: draining service")
    finally:
        service.close()


__all__ = [
    "ServiceConfig",
    "TuningService",
    "serve_forever",
    "JOBS_FILE",
    "DATABASE_DIR",
    "STORE_DIR",
]
