"""The tuning-service client: submit jobs, stream generations, read bills.

Speaks only the pickle-free wire format of :mod:`repro.distrib.wire`.  One
:class:`ServiceClient` holds a persistent request/response connection (a
lock serializes callers, so one client is safe to share across threads);
:meth:`stream` opens a *dedicated* connection per stream so generation
events never interleave with request traffic.  Every ``error`` frame the
service answers becomes a raised :class:`~repro.distrib.errors.ServiceError`
whose ``code`` is the stable contract (``bad-budget``, ``unknown-family``,
``unauthorized``, ...).

The stream is resumable by design: events are seq-numbered, so a client
that loses its connection mid-stream reconnects and continues from the
last ``seq`` it saw — the service keeps no per-connection state.
"""

from __future__ import annotations

import socket
import threading
from typing import Dict, Iterator, Optional

from repro.distrib.errors import ConnectionClosed, ServiceError
from repro.distrib.jobs import TERMINAL_EVENTS
from repro.distrib.protocol import parse_address
from repro.distrib.wire import make_message, recv_wire, send_wire


class ServiceClient:
    """A tenant-side connection to one :class:`~repro.distrib.service.TuningService`."""

    def __init__(self, address: str, token: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        self.host, self.port = parse_address(address)
        self.token = token
        self.timeout = timeout
        self._lock = threading.Lock()
        self._sock = self._connect()

    def _connect(self) -> socket.socket:
        sock = socket.create_connection((self.host, self.port),
                                        timeout=self.timeout)
        welcome = recv_wire(sock)
        if welcome["type"] != "welcome":
            sock.close()
            raise ServiceError(
                "bad-handshake",
                f"expected a welcome frame, got {welcome['type']!r}",
            )
        self.service = welcome["service"]
        self.families = list(welcome["families"])
        return sock

    def _request(self, kind: str, **fields: object) -> Dict[str, object]:
        """One request/response round trip; error frames raise."""
        if self.token is not None:
            fields.setdefault("token", self.token)
        message = make_message(kind, **fields)
        with self._lock:
            send_wire(self._sock, message)
            reply = recv_wire(self._sock)
        if reply["type"] == "error":
            raise ServiceError(reply["code"], reply["message"])
        return reply

    # -- the job API ------------------------------------------------------------------

    def submit(self, tenant: str, program: str, source: str, family: str,
               generations: int, population: int = 8, stall_window: int = 60,
               priority: int = 0) -> str:
        """Submit one tuning job; returns its job id (or raises typed)."""
        budget = {"generations": generations, "population": population,
                  "stall_window": stall_window}
        reply = self._request(
            "submit", tenant=tenant, program=program, source=source,
            family=family, budget=budget, priority=priority,
        )
        return reply["job_id"]

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("status", job_id=job_id)["job"]

    def jobs(self, tenant: Optional[str] = None) -> list:
        return self._request("jobs", tenant=tenant)["rows"]

    def accounting(self, tenant: Optional[str] = None) -> Dict[str, object]:
        return self._request("accounting", tenant=tenant)["tenants"]

    def cancel(self, job_id: str) -> str:
        """Request cancellation; returns the job's state after the request."""
        return self._request("cancel", job_id=job_id)["state"]

    def ping(self) -> float:
        return float(self._request("ping").get("uptime_seconds", 0.0))

    # -- streaming --------------------------------------------------------------------

    def stream(self, job_id: str, from_seq: int = 0,
               timeout: Optional[float] = None) -> Iterator[Dict[str, object]]:
        """Yield the job's events (``{"seq", "kind", "data"}``) until terminal.

        Runs on its own connection; generation summaries arrive as the
        turnstile grants the job turns, ending with one of
        :data:`~repro.distrib.jobs.TERMINAL_EVENTS`.
        """
        fields: Dict[str, object] = {"job_id": job_id, "from_seq": from_seq}
        if self.token is not None:
            fields["token"] = self.token
        sock = socket.create_connection(
            (self.host, self.port),
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            welcome = recv_wire(sock)
            if welcome["type"] != "welcome":
                raise ServiceError("bad-handshake", "expected a welcome frame")
            send_wire(sock, make_message("stream", **fields))
            while True:
                try:
                    frame = recv_wire(sock)
                except ConnectionClosed:
                    return
                if frame["type"] == "error":
                    raise ServiceError(frame["code"], frame["message"])
                event = {"seq": frame["seq"], "kind": frame["kind"],
                         "data": frame["data"]}
                yield event
                if frame["kind"] in TERMINAL_EVENTS:
                    return
        finally:
            sock.close()

    def wait(self, job_id: str, timeout: Optional[float] = None
             ) -> Dict[str, object]:
        """Block until the job is terminal; returns its final status row."""
        for event in self.stream(job_id, timeout=timeout):
            if event["kind"] in TERMINAL_EVENTS:
                break
        return self.status(job_id)

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ServiceClient"]
