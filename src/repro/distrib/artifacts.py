"""The artifact plane: tier-2 entries exchanged through the coordinator.

PR 5 gave every machine its own disk-backed :class:`~repro.tuner.store.
ArtifactStore`, which made *restarts* warm but left the fleet's economics
lopsided: two machines in one campaign routinely pay the same
``(compiler, source, flags)`` compile twice, and a worker joining
mid-campaign starts cold.  The mesh closes that gap with two moves, both
riding the existing worker connection (no second socket, no new listener):

* **push-after-put** — when a batch finishes, the worker offers every
  freshly produced tier-2 entry to the coordinator in one batched exchange:
  an :class:`~repro.distrib.protocol.ArtifactHave` membership probe first,
  then :class:`~repro.distrib.protocol.ArtifactPush` frames carrying only
  the entries the coordinator does not already hold (the mesh must never
  amplify traffic by re-uploading what every machine has);
* **fetch-on-miss** — when a worker's own memory and disk tiers miss, it
  asks the coordinator (:class:`~repro.distrib.protocol.ArtifactFetch`)
  before paying the compile, so any machine's past work serves the whole
  fleet.

Trust and integrity are inherited from the store, not re-invented: payloads
travel in :meth:`~repro.tuner.store.ArtifactStore.encode_entry` form (magic,
payload digest, embedded full key) and every receiver re-verifies before
storing or using them — a poisoned, corrupt, or aliased transfer reads as a
*miss* by construction, never as a wrong artifact.  The transport is already
authenticated (the distrib handshake), so the mesh adds no new unpickle
surface beyond what evaluator blobs established.

Failure policy: the mesh is an *optimization*.  Every network error on the
worker side is absorbed internally and permanently disables the client for
the session (all further lookups read as misses); it must never convert a
healthy evaluation into a :class:`~repro.distrib.protocol.BatchFailure`.

Traffic is bounded per machine: ``budget_bytes`` caps the total artifact
bytes a worker may move (both directions).  Pushes are budgeted by the
worker (it knows each payload's size before sending); fetches are budgeted
by the coordinator (it knows the payload size before serving and answers an
over-budget request with a miss), so the cap holds even against a
non-conforming client.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.distrib.errors import ConnectionClosed, ProtocolError
from repro.telemetry import get_sink
from repro.distrib.protocol import (
    ArtifactData,
    ArtifactFetch,
    ArtifactHave,
    ArtifactHaveReply,
    ArtifactPush,
    Shutdown,
    chunk_payload,
    recv_message,
)
from repro.tuner.store import ArtifactStore

#: Entries above this size never travel the mesh (pushes skip them, pushed
#: reassemblies above it are dropped): one pathological artifact must not
#: eat a machine's whole transfer budget or the coordinator's memory.
MESH_MAX_ENTRY_BYTES = 32 * 1024 * 1024

#: A single :class:`ArtifactPush` frame batches entry chunks up to roughly
#: this many payload bytes — small entries share frames, large ones span
#: several, and no frame approaches ``MAX_FRAME_BYTES``.
PUSH_FRAME_BUDGET = 4 * 1024 * 1024

#: Bound on the worker-side offer queue: a batch that produces more fresh
#: entries than this pushes only the most recent ones (older offers are the
#: most likely to have been pushed by whoever raced us to the key anyway).
OFFER_QUEUE_LIMIT = 512


class CoordinatorArtifactPlane:
    """Coordinator-side mesh endpoint: one shared store, many workers.

    Stateless across requests except for the store itself and per-handle
    budget/reassembly state (which lives on the :class:`WorkerHandle`, so a
    discarded worker's half-pushed entries vanish with it).  All methods are
    called from :meth:`Coordinator.run_batch` while it holds the handle's
    lock, so per-handle state needs no extra locking; the counters are
    shared across workers and take ``self._lock``.
    """

    def __init__(self, store: ArtifactStore, budget_bytes: Optional[int] = None) -> None:
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1 or None, got {budget_bytes}")
        self.store = store
        self.budget_bytes = budget_bytes
        self._lock = threading.Lock()
        self.pushes_accepted = 0
        self.pushes_rejected = 0
        self.fetches_served = 0
        self.fetches_missed = 0
        self.budget_denied = 0
        self.bytes_in = 0
        self.bytes_out = 0

    # -- request handlers (one per worker-initiated frame type) ------------------

    def handle(self, handle, message, send: Callable[[object], None]) -> None:
        if isinstance(message, ArtifactHave):
            send(ArtifactHaveReply(
                tuple(self.store.contains(key) for key in message.keys)
            ))
        elif isinstance(message, ArtifactFetch):
            self._serve_fetch(handle, message.key, send)
        elif isinstance(message, ArtifactPush):
            self._absorb_push(handle, message.entries)
        else:  # pragma: no cover - callers dispatch on type first
            raise ProtocolError(f"not an artifact frame: {type(message).__name__}")

    def _serve_fetch(self, handle, key, send: Callable[[object], None]) -> None:
        payload = self.store.get_encoded(key)
        if payload is None:
            with self._lock:
                self.fetches_missed += 1
            send(ArtifactData(key, 0, 0, b""))
            return
        if (self.budget_bytes is not None
                and handle.mesh_bytes + len(payload) > self.budget_bytes):
            # The budget is enforced here, where the payload size is known
            # *before* any byte travels: an over-budget machine just sees
            # misses from now on and pays its own compiles locally.
            with self._lock:
                self.budget_denied += 1
                self.fetches_missed += 1
            send(ArtifactData(key, 0, 0, b""))
            return
        parts = chunk_payload(payload)
        for index, part in enumerate(parts):
            send(ArtifactData(key, index, len(parts), part))
        handle.mesh_bytes += len(payload)
        with self._lock:
            self.fetches_served += 1
            self.bytes_out += len(payload)
        sink = get_sink()
        sink.incr("mesh.fetches_served")
        sink.incr("mesh.bytes_out", len(payload))
        sink.observe("mesh.transfer.bytes", float(len(payload)))

    def _absorb_push(self, handle, entries) -> None:
        for key, part_index, part_count, chunk in entries:
            pending = handle.mesh_parts.get(repr(key))
            if part_index == 0:
                pending = {"key": key, "count": part_count, "parts": [], "size": 0}
                handle.mesh_parts[repr(key)] = pending
            elif (pending is None or pending["count"] != part_count
                    or len(pending["parts"]) != part_index):
                # Out-of-order or orphaned chunk: drop the whole reassembly.
                handle.mesh_parts.pop(repr(key), None)
                with self._lock:
                    self.pushes_rejected += 1
                continue
            pending["parts"].append(chunk)
            pending["size"] += len(chunk)
            if pending["size"] > MESH_MAX_ENTRY_BYTES:
                handle.mesh_parts.pop(repr(key), None)
                with self._lock:
                    self.pushes_rejected += 1
                continue
            if len(pending["parts"]) < pending["count"]:
                continue
            handle.mesh_parts.pop(repr(key), None)
            payload = b"".join(pending["parts"])
            handle.mesh_bytes += len(payload)
            with self._lock:
                self.bytes_in += len(payload)
            over_budget = (
                self.budget_bytes is not None
                and handle.mesh_bytes - len(payload) >= self.budget_bytes
            )
            if over_budget:
                # The bytes already traveled (a conforming client would not
                # have sent them), but an over-budget machine's pushes are
                # not absorbed.
                with self._lock:
                    self.budget_denied += 1
                    self.pushes_rejected += 1
                continue
            # ``put_encoded`` re-verifies digest + embedded key: a tampered
            # or corrupt push is rejected here, never stored.
            if self.store.put_encoded(pending["key"], payload):
                with self._lock:
                    self.pushes_accepted += 1
                sink = get_sink()
                sink.incr("mesh.pushes_accepted")
                sink.incr("mesh.bytes_in", len(payload))
                sink.observe("mesh.transfer.bytes", float(len(payload)))
            else:
                with self._lock:
                    self.pushes_rejected += 1

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-safe counters for campaign summaries and manifests."""
        with self._lock:
            return {
                "pushes_accepted": self.pushes_accepted,
                "pushes_rejected": self.pushes_rejected,
                "fetches_served": self.fetches_served,
                "fetches_missed": self.fetches_missed,
                "budget_denied": self.budget_denied,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "budget_bytes": self.budget_bytes,
                "store": self.store.stats(),
            }


def handle_artifact_message(plane: Optional[CoordinatorArtifactPlane],
                            handle, message,
                            send: Callable[[object], None]) -> None:
    """Dispatch one worker-initiated artifact frame.

    A coordinator without a mesh store still *answers* (everything is a
    miss, pushes are dropped) rather than erroring: a worker that was told
    ``mesh=False`` in its Welcome never sends these, but a clean degrade
    beats a protocol kill if one does.
    """
    if plane is not None:
        plane.handle(handle, message, send)
    elif isinstance(message, ArtifactHave):
        send(ArtifactHaveReply(tuple(False for _ in message.keys)))
    elif isinstance(message, ArtifactFetch):
        send(ArtifactData(message.key, 0, 0, b""))
    # ArtifactPush without a plane: silently dropped.


class WorkerMeshClient:
    """Worker-side mesh endpoint: fetch-on-miss, batched push-after-batch.

    Lives for one worker session and shares the session's socket.  All
    outbound frames go through ``sender.send`` (the heartbeat sender's
    write lock — two threads interleaving ``sendall`` would corrupt
    framing) and each full request/reply round trip is serialized under
    ``_rpc_lock``, because several slot threads may miss concurrently.

    The client is *armed* only between :meth:`begin_batch` and
    :meth:`end_batch` — the only window in which the worker owns the socket
    for reading (the main loop is blocked in evaluation, and the
    coordinator's ``run_batch`` sends nothing unprompted).  Outside that
    window :meth:`fetch` returns ``None`` immediately.

    Any transport or protocol error expires the client for good: the mesh
    degrades to misses, the batch still completes, and the main loop
    discovers the dead socket itself — a mesh hiccup must never surface as
    a :class:`~repro.distrib.protocol.BatchFailure`.
    """

    def __init__(self, sock, sender, budget_bytes: Optional[int] = None,
                 log: Optional[Callable[[str], None]] = None) -> None:
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError(f"budget_bytes must be >= 1 or None, got {budget_bytes}")
        self._sock = sock
        self._sender = sender
        self.budget_bytes = budget_bytes
        self._log = log if log is not None else (lambda message: None)
        self._rpc_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._active = False
        self._dead = False
        self.shutdown_seen = False
        #: key -> value offers accumulated during the current batch.
        self._pending: "OrderedDict[Tuple, object]" = OrderedDict()
        #: Keys the coordinator is known to hold (probed present, or pushed
        #: by us): never offered again.
        self._known_remote: Set[str] = set()
        self._caches: List[object] = []
        self.fetches = 0
        self.fetch_hits = 0
        self.verify_failures = 0
        self.pushes_sent = 0
        self.push_skipped = 0
        self.budget_denied = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- lifecycle ---------------------------------------------------------------

    def begin_batch(self) -> None:
        with self._state_lock:
            self._active = True

    def end_batch(self) -> None:
        with self._state_lock:
            self._active = False
            self._pending.clear()

    def track_cache(self, cache) -> None:
        """Remember a cache this client was attached to, for :meth:`detach`."""
        with self._state_lock:
            if cache is not None and cache not in self._caches:
                self._caches.append(cache)

    def detach(self) -> None:
        """Unhook this client from every cache it was attached to.

        Caches are process-global (shared by store directory); a finished
        session's mesh client must not linger on them and serve a later
        session's lookups over a closed socket.
        """
        with self._state_lock:
            caches, self._caches = self._caches, []
        for cache in caches:
            if getattr(cache, "mesh", None) is self:
                cache.mesh = None

    def _expire(self, reason: str) -> None:
        with self._state_lock:
            if self._dead:
                return
            self._dead = True
        self._log(f"worker mesh: disabled for this session: {reason}")

    def _usable(self) -> bool:
        with self._state_lock:
            return self._active and not self._dead

    def _budget_left(self) -> Optional[int]:
        if self.budget_bytes is None:
            return None
        return max(0, self.budget_bytes - self.bytes_sent - self.bytes_received)

    # -- fetch-on-miss -----------------------------------------------------------

    def fetch(self, key: Tuple) -> Optional[object]:
        """The mesh's value for ``key``, verified, or ``None`` (miss)."""
        if not self._usable():
            return None
        left = self._budget_left()
        if left is not None and left <= 0:
            with self._state_lock:
                self.budget_denied += 1
            return None
        with self._rpc_lock:
            if not self._usable():
                return None
            self.fetches += 1
            try:
                self._sender.send(ArtifactFetch(key))
                payload = self._recv_payload(key)
            except (ConnectionClosed, ProtocolError, OSError, TimeoutError) as exc:
                self._expire(f"{type(exc).__name__}: {exc}")
                return None
        if payload is None:
            get_sink().incr("mesh.fetch_misses")
            return None
        with self._state_lock:
            self.bytes_received += len(payload)
        sink = get_sink()
        sink.incr("mesh.bytes_received", len(payload))
        sink.observe("mesh.transfer.bytes", float(len(payload)))
        value, ok = ArtifactStore.decode_entry(payload, key)
        if not ok:
            # Corruption or tampering in flight: a verified miss, by
            # construction — the caller falls through to compiling.
            with self._state_lock:
                self.verify_failures += 1
            get_sink().incr("mesh.verify_failures")
            return None
        with self._state_lock:
            self.fetch_hits += 1
        get_sink().incr("mesh.fetch_hits")
        # The coordinator holds it; no point offering it back.
        self._known_remote.add(repr(key))
        return value

    def _recv_payload(self, key: Tuple) -> Optional[bytes]:
        """Collect one fetch reply's :class:`ArtifactData` parts, in order."""
        parts: List[bytes] = []
        expected_count: Optional[int] = None
        received = 0
        while True:
            message = recv_message(self._sock)
            if isinstance(message, Shutdown):
                # The coordinator is tearing down mid-batch; remember it so
                # the session can exit cleanly instead of reporting a loss.
                self.shutdown_seen = True
                self._expire("coordinator shut down mid-fetch")
                return None
            if not isinstance(message, ArtifactData) or message.key != key:
                raise ProtocolError(
                    f"expected ArtifactData for our fetch, got {type(message).__name__}"
                )
            if message.part_count == 0:
                return None  # an honest miss (absent, corrupt, or over budget)
            if expected_count is None:
                expected_count = message.part_count
            if (message.part_count != expected_count
                    or message.part_index != len(parts)):
                raise ProtocolError("artifact chunks arrived out of order")
            received += len(message.data)
            if received > MESH_MAX_ENTRY_BYTES:
                raise ProtocolError(
                    f"artifact transfer exceeded {MESH_MAX_ENTRY_BYTES} bytes"
                )
            parts.append(message.data)
            if len(parts) == expected_count:
                return b"".join(parts)

    # -- push-after-put ----------------------------------------------------------

    def offer(self, key: Tuple, value: object) -> None:
        """Queue a freshly produced entry for the end-of-batch push."""
        with self._state_lock:
            if not self._active or self._dead:
                return
            if repr(key) in self._known_remote:
                return
            self._pending[key] = value
            self._pending.move_to_end(key)
            while len(self._pending) > OFFER_QUEUE_LIMIT:
                self._pending.popitem(last=False)

    def flush(self) -> None:
        """Push the batch's fresh entries the coordinator does not hold.

        One membership probe, then only the absent entries travel — batched
        into frames of roughly :data:`PUSH_FRAME_BUDGET` payload bytes.
        Called once per batch, before the batch reply, so the ordered
        stream guarantees the coordinator absorbs every push first.
        """
        with self._state_lock:
            pending = list(self._pending.items())
            self._pending.clear()
        if not pending or not self._usable():
            return
        keys = tuple(key for key, _value in pending)
        with self._rpc_lock:
            try:
                self._sender.send(ArtifactHave(keys))
                reply = self._recv_have_reply(len(keys))
                if reply is None:
                    return
                quads: List[Tuple[Tuple, int, int, bytes]] = []
                frame_bytes = 0
                for (key, value), present in zip(pending, reply):
                    if present:
                        self._known_remote.add(repr(key))
                        continue
                    try:
                        payload = ArtifactStore.encode_entry(key, value)
                    except Exception:
                        continue  # unpicklable value: nothing to share
                    if len(payload) > MESH_MAX_ENTRY_BYTES:
                        with self._state_lock:
                            self.push_skipped += 1
                        continue
                    left = self._budget_left()
                    if left is not None and len(payload) > left:
                        with self._state_lock:
                            self.budget_denied += 1
                        continue
                    parts = chunk_payload(payload)
                    for index, part in enumerate(parts):
                        if quads and frame_bytes + len(part) > PUSH_FRAME_BUDGET:
                            self._sender.send(ArtifactPush(tuple(quads)))
                            quads, frame_bytes = [], 0
                        quads.append((key, index, len(parts), part))
                        frame_bytes += len(part)
                    with self._state_lock:
                        self.pushes_sent += 1
                        self.bytes_sent += len(payload)
                    sink = get_sink()
                    sink.incr("mesh.pushes_sent")
                    sink.incr("mesh.bytes_sent", len(payload))
                    sink.observe("mesh.transfer.bytes", float(len(payload)))
                    self._known_remote.add(repr(key))
                if quads:
                    self._sender.send(ArtifactPush(tuple(quads)))
            except (ConnectionClosed, ProtocolError, OSError, TimeoutError) as exc:
                self._expire(f"{type(exc).__name__}: {exc}")

    def _recv_have_reply(self, count: int) -> Optional[Tuple[bool, ...]]:
        message = recv_message(self._sock)
        if isinstance(message, Shutdown):
            self.shutdown_seen = True
            self._expire("coordinator shut down mid-push")
            return None
        if not isinstance(message, ArtifactHaveReply) or len(message.present) != count:
            raise ProtocolError(
                f"expected an ArtifactHaveReply of {count}, got {type(message).__name__}"
            )
        return message.present

    # -- introspection -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        with self._state_lock:
            return {
                "fetches": self.fetches,
                "fetch_hits": self.fetch_hits,
                "verify_failures": self.verify_failures,
                "pushes_sent": self.pushes_sent,
                "push_skipped": self.push_skipped,
                "budget_denied": self.budget_denied,
                "bytes_sent": self.bytes_sent,
                "bytes_received": self.bytes_received,
                "budget_bytes": self.budget_bytes,
                "dead": self._dead,
            }
