"""Job model of the tuning service: admission, fair share, accounting.

A *job* is one tenant's request to tune one program under one compiler
family with a bounded search budget.  This module owns everything about
jobs that is independent of sockets and threads:

* :class:`JobBudget` — the client-visible budget (generations × population)
  and its exact mapping onto a :class:`~repro.tuner.tuner.BinTunerConfig`,
  shared with tests so a solo run is *constructed* identical to a service
  job, never approximately so;
* :func:`validate_submission` — admission control: absurd budgets
  (zero/negative generations, oversized sources past the configurable cap,
  unknown families, unprintable names) are refused with a typed
  :class:`AdmissionError` before any work is queued;
* :class:`Job` — lifecycle state, the seq-numbered event log streaming
  clients replay from any offset, and per-job accounting;
* :class:`FairShareQueue` — picks the next tenant by least accumulated
  work (then priority, then arrival), which is both the fairness policy
  *and* the dedupe economics: the tenant that has consumed least runs its
  generation right after an identical generation of a heavier tenant, so
  its compiles are warm artifact-cache hits;
* :class:`TenantAccounting` — candidates evaluated, compile seconds,
  tier-2/mesh hits per tenant, for ``/status`` and the billing story.
"""

from __future__ import annotations

import re
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.distrib.errors import ServiceError
from repro.tuner.database import TuningDatabase
from repro.tuner.evaluation import EvaluationStats

#: Job lifecycle: admission enqueues, the scheduler runs, exactly one
#: terminal state ("interrupted" is queued-again after a service restart).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Event kinds a stream can carry; "done"/"failed"/"cancelled" are terminal.
TERMINAL_EVENTS = ("done", "failed", "cancelled")

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class AdmissionError(ServiceError):
    """A submission the service refuses to enqueue (typed, never a traceback)."""


@dataclass(frozen=True)
class AdmissionLimits:
    """Operator-configurable admission caps."""

    max_source_bytes: int = 256 * 1024
    max_generations: int = 512
    max_population: int = 256
    families: Tuple[str, ...] = ("gcc", "llvm")
    #: Per-tenant cap on jobs waiting in the queue (running ones excluded).
    max_queued_per_tenant: int = 16


@dataclass(frozen=True)
class JobBudget:
    """The search budget a client buys: generations of a GA population.

    ``tuner_config_kwargs`` is the single source of truth for how a budget
    becomes tuner knobs — the acceptance tests build their solo baselines
    from it, which is what makes "bit-for-bit identical to a solo run" a
    constructive property instead of a hope.
    """

    generations: int
    population: int = 8
    stall_window: int = 60

    @property
    def max_iterations(self) -> int:
        return self.generations * self.population

    def tuner_config_kwargs(self) -> Dict[str, object]:
        from repro.tuner import GAParameters

        return {
            "max_iterations": self.max_iterations,
            "ga": GAParameters(population_size=self.population),
            "stall_window": self.stall_window,
        }

    def as_dict(self) -> Dict[str, int]:
        return {
            "generations": self.generations,
            "population": self.population,
            "stall_window": self.stall_window,
        }


@dataclass(frozen=True)
class JobSpec:
    """Everything admission accepted about one job (immutable thereafter)."""

    tenant: str
    program: str
    source: str
    family: str
    budget: JobBudget
    priority: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "program": self.program,
            "source": self.source,
            "family": self.family,
            "budget": self.budget.as_dict(),
            "priority": self.priority,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "JobSpec":
        budget = payload["budget"]
        return cls(
            tenant=payload["tenant"],
            program=payload["program"],
            source=payload["source"],
            family=payload["family"],
            budget=JobBudget(
                generations=budget["generations"],
                population=budget.get("population", 8),
                stall_window=budget.get("stall_window", 60),
            ),
            priority=payload.get("priority", 0),
        )


def _require_int(value: object, what: str, minimum: int, maximum: int) -> int:
    """An honest integer in range — JSON ``true`` must not pass as 1."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise AdmissionError(
            "bad-budget", f"{what} must be an integer, got {type(value).__name__}"
        )
    if value < minimum or value > maximum:
        raise AdmissionError(
            "bad-budget", f"{what} must be in [{minimum}, {maximum}], got {value}"
        )
    return value


def _require_name(value: object, what: str, max_length: int) -> str:
    if not isinstance(value, str) or not value:
        raise AdmissionError("bad-name", f"{what} must be a non-empty string")
    if len(value) > max_length:
        raise AdmissionError(
            "bad-name", f"{what} longer than {max_length} characters"
        )
    if not _NAME_RE.match(value):
        raise AdmissionError(
            "bad-name",
            f"{what} may use letters, digits, '.', '_', '-' only (got {value!r})",
        )
    return value


def validate_submission(payload: Dict[str, object],
                        limits: AdmissionLimits) -> JobSpec:
    """Admission control: a schema-valid ``submit`` payload -> :class:`JobSpec`.

    The wire layer already guaranteed *shapes* (strings are strings, the
    budget is an object); this layer owns *semantics*, and every refusal is
    an :class:`AdmissionError` whose ``code`` the client can dispatch on:
    ``bad-name``, ``bad-budget``, ``source-too-large``, ``empty-source``,
    ``unknown-family``.
    """
    tenant = _require_name(payload.get("tenant"), "tenant", 64)
    program = _require_name(payload.get("program"), "program", 128)
    family = payload.get("family")
    if family not in limits.families:
        raise AdmissionError(
            "unknown-family",
            f"family must be one of {', '.join(limits.families)}, got {family!r}",
        )
    source = payload.get("source")
    if not isinstance(source, str) or not source.strip():
        raise AdmissionError("empty-source", "source must be non-empty program text")
    source_bytes = len(source.encode("utf-8"))
    if source_bytes > limits.max_source_bytes:
        raise AdmissionError(
            "source-too-large",
            f"source is {source_bytes} bytes "
            f"(cap {limits.max_source_bytes}; raise it service-side if intended)",
        )
    budget = payload.get("budget")
    if not isinstance(budget, dict):
        raise AdmissionError("bad-budget", "budget must be an object")
    unknown = set(budget) - {"generations", "population", "stall_window"}
    if unknown:
        raise AdmissionError(
            "bad-budget", f"unknown budget field(s): {', '.join(sorted(unknown))}"
        )
    generations = _require_int(
        budget.get("generations"), "budget.generations", 1, limits.max_generations
    )
    population = _require_int(
        budget.get("population", 8), "budget.population", 2, limits.max_population
    )
    stall_window = _require_int(
        budget.get("stall_window", 60), "budget.stall_window", 1, 1_000_000
    )
    priority = _require_int(payload.get("priority", 0), "priority", 0, 9)
    return JobSpec(
        tenant=tenant,
        program=program,
        source=source,
        family=family,
        budget=JobBudget(
            generations=generations, population=population, stall_window=stall_window
        ),
        priority=priority,
    )


# ---------------------------------------------------------------------------
# Jobs
# ---------------------------------------------------------------------------

#: Bound on a job's retained event log (a budget-capped job emits far fewer).
MAX_JOB_EVENTS = 4096


class Job:
    """One admitted job: lifecycle, event log, per-job accounting.

    The event log is the streaming contract: seq-numbered, append-only,
    replayable from any offset — a client that disconnects mid-stream
    reconnects and asks for ``from_seq`` without the service keeping any
    per-connection state.  All mutation goes through the condition lock;
    waiters are woken on every append.
    """

    def __init__(self, job_id: str, spec: JobSpec, submitted_seq: int) -> None:
        self.job_id = job_id
        self.spec = spec
        self.submitted_seq = submitted_seq
        self.state = "queued"
        self.error: Optional[Dict[str, str]] = None
        self.result: Optional[Dict[str, object]] = None
        self.generations_done = 0
        self.stats = EvaluationStats()
        self.created = time.time()
        self.cancel_requested = False
        self._events: List[Dict[str, object]] = []
        self._cond = threading.Condition()

    # -- events -----------------------------------------------------------------------

    def append_event(self, kind: str, data: Dict[str, object]) -> None:
        with self._cond:
            if len(self._events) >= MAX_JOB_EVENTS:
                # Keep the log bounded but never drop the terminal event's
                # slot: trim from the middle of the generation stream.
                del self._events[1 : len(self._events) // 2]
            self._events.append(
                {"seq": len(self._events) and self._events[-1]["seq"] + 1 or 1,
                 "kind": kind, "data": data}
            )
            self._cond.notify_all()

    def events_since(self, from_seq: int, timeout: Optional[float] = None
                     ) -> List[Dict[str, object]]:
        """Events with ``seq > from_seq``; blocks up to ``timeout`` for one."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                fresh = [event for event in self._events if event["seq"] > from_seq]
                if fresh or self.state in ("done", "failed", "cancelled"):
                    return fresh
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return []
                self._cond.wait(timeout=remaining)

    # -- state ------------------------------------------------------------------------

    def set_state(self, state: str) -> None:
        assert state in JOB_STATES, state
        with self._cond:
            self.state = state
            self._cond.notify_all()

    def request_cancel(self) -> None:
        with self._cond:
            self.cancel_requested = True
            self._cond.notify_all()

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")

    def status_row(self) -> Dict[str, object]:
        with self._cond:
            row: Dict[str, object] = {
                "job_id": self.job_id,
                "tenant": self.spec.tenant,
                "program": self.spec.program,
                "family": self.spec.family,
                "state": self.state,
                "priority": self.spec.priority,
                "generations_done": self.generations_done,
                "budget": self.spec.budget.as_dict(),
                "evaluated": self.stats.evaluated,
                "compile_seconds": round(self.stats.compile_seconds, 6),
                "events": len(self._events),
            }
            if self.error is not None:
                row["error"] = dict(self.error)
            if self.result is not None:
                row["result"] = dict(self.result)
            return row


def job_fingerprint(database: TuningDatabase) -> str:
    """The job-level identity: SHA-256 over the shard's ordered signatures.

    Delegates to :meth:`TuningDatabase.fingerprint` — named here so service,
    client, and the parity tests hash *one* way.
    """
    return database.fingerprint()


# ---------------------------------------------------------------------------
# Fair share
# ---------------------------------------------------------------------------

class TenantAccounting:
    """Per-tenant counters: the ``/status`` billing view.

    ``candidates`` is the fair-share cost signal (one unit per candidate
    actually evaluated for that tenant); the artifact-tier counters are the
    dedupe economics made visible — a tenant whose submissions repeat
    another's shows compile seconds near zero and hits near 100%.
    """

    _COUNTERS = ("jobs_submitted", "jobs_rejected", "jobs_done", "jobs_failed",
                 "jobs_cancelled")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: Dict[str, Dict[str, object]] = {}

    def _row(self, tenant: str) -> Dict[str, object]:
        row = self._tenants.get(tenant)
        if row is None:
            row = {name: 0 for name in self._COUNTERS}
            row["stats"] = EvaluationStats()
            self._tenants[tenant] = row
        return row

    def bump(self, tenant: str, counter: str, amount: int = 1) -> None:
        assert counter in self._COUNTERS, counter
        with self._lock:
            row = self._row(tenant)
            row[counter] += amount

    def absorb(self, tenant: str, delta: EvaluationStats) -> None:
        """Fold one generation's engine-stat delta into the tenant's totals."""
        with self._lock:
            row = self._row(tenant)
            row["stats"] = row["stats"].add(delta)

    def cost(self, tenant: str) -> int:
        """The fair-share cost: candidates evaluated so far for this tenant."""
        with self._lock:
            row = self._tenants.get(tenant)
            return row["stats"].evaluated if row is not None else 0

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            out: Dict[str, Dict[str, object]] = {}
            for tenant, row in sorted(self._tenants.items()):
                stats: EvaluationStats = row["stats"]
                entry = {name: row[name] for name in self._COUNTERS}
                entry.update(
                    candidates_evaluated=stats.evaluated,
                    compile_seconds=round(stats.compile_seconds, 6),
                    worker_seconds=round(stats.worker_seconds, 6),
                    artifact_hits=stats.artifact_hits,
                    artifact_misses=stats.artifact_misses,
                    tier2_hits=stats.artifact_store_hits,
                    mesh_hits=stats.artifact_mesh_hits,
                    database_hits=stats.database_hits,
                )
                out[tenant] = entry
            return out


class FairShareQueue:
    """The admission queue with least-consumed-tenant-first ordering.

    ``pop`` scans the queued jobs and picks the one whose tenant has the
    least accumulated :meth:`TenantAccounting.cost`, breaking ties by
    higher priority then arrival order.  The same ordering drives the
    generation turnstile in the service, so fairness holds *within* long
    jobs, not just between them.
    """

    def __init__(self, accounting: TenantAccounting) -> None:
        self._accounting = accounting
        self._lock = threading.Lock()
        self._queued: List[Job] = []

    def push(self, job: Job) -> int:
        """Enqueue; returns the number of jobs ahead of it right now."""
        with self._lock:
            self._queued.append(job)
            return len(self._queued) - 1

    def queued_for(self, tenant: str) -> int:
        with self._lock:
            return sum(1 for job in self._queued if job.spec.tenant == tenant)

    def __len__(self) -> int:
        with self._lock:
            return len(self._queued)

    def remove(self, job: Job) -> bool:
        with self._lock:
            try:
                self._queued.remove(job)
                return True
            except ValueError:
                return False

    def pop(self) -> Optional[Job]:
        with self._lock:
            if not self._queued:
                return None
            chosen = min(
                self._queued,
                key=lambda job: (
                    self._accounting.cost(job.spec.tenant),
                    -job.spec.priority,
                    job.submitted_seq,
                ),
            )
            self._queued.remove(chosen)
            return chosen

    def snapshot(self) -> List[Dict[str, object]]:
        with self._lock:
            return [job.status_row() for job in self._queued]


def stable_job_id(seq: int) -> str:
    return f"job-{seq:05d}"


__all__ = [
    "JOB_STATES",
    "TERMINAL_EVENTS",
    "AdmissionError",
    "AdmissionLimits",
    "JobBudget",
    "JobSpec",
    "validate_submission",
    "Job",
    "job_fingerprint",
    "TenantAccounting",
    "FairShareQueue",
    "stable_job_id",
]
