"""The distributed mapper: ``map(keys) -> results`` over remote workers.

:class:`DistributedMapper` implements the exact contract the
:class:`~repro.tuner.evaluation.EvaluationEngine` already depends on — one
result per key, in *submission* order — so the engine's bit-for-bit
reproducibility carries over to any number of workers on any number of
machines.  The mechanics:

* keys are numbered at submission; workers return ``(index, result)`` pairs
  and the mapper slots them back by index, so completion order (and
  therefore worker speed, count, or placement) never reorders anything;
* each dispatch round snapshots the live workers and deals the pending
  tasks over them, weighted by advertised slots;
* a worker that dies or times out mid-batch is discarded and its tasks
  return to the pending set — *bounded* re-dispatch (``max_dispatch_rounds``)
  so a poisonous batch that kills every worker it touches cannot loop
  forever;
* when no workers remain (or the re-dispatch budget is spent) the mapper
  falls back to evaluating the leftovers in-process with the same evaluator
  object it would have shipped — slower, never wrong, and deterministic
  because ordering is fixed by submission index, not by who evaluated what.

Remote evaluator exceptions (a worker's :class:`~repro.distrib.protocol.
BatchFailure`) propagate to the caller like every other mapper's programming
errors; they are deliberately *not* re-dispatched.
"""

from __future__ import annotations

import pickle
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.distrib.coordinator import Coordinator, WorkerHandle
from repro.distrib.errors import WorkerLost
from repro.tuner.evaluation import (
    CandidateEvaluator,
    CandidateResult,
    FlagKey,
    next_evaluator_id,
)

#: An indexed task: (submission index into the current ``map`` call, key).
IndexedTask = Tuple[int, FlagKey]


class DistributedMapper:
    """Maps candidate batches over a :class:`Coordinator`'s workers.

    One mapper serves one evaluator (one program of a campaign); the
    evaluator is pickled exactly once, and its id comes from the same
    monotonic counter the shared in-process pool draws from, so ids never
    alias across dispatch modes.  ``close`` tears the coordinator down only
    when this mapper created it (``own_coordinator=True``, the standalone
    ``executor="distributed"`` tuner path); a campaign's pool owns its
    coordinator and outlives every per-program mapper.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        evaluator: CandidateEvaluator,
        evaluator_id: Optional[int] = None,
        max_dispatch_rounds: int = 3,
        own_coordinator: bool = False,
    ) -> None:
        if max_dispatch_rounds < 1:
            raise ValueError(f"max_dispatch_rounds must be >= 1, got {max_dispatch_rounds}")
        self._coordinator = coordinator
        self._evaluator = evaluator
        self.evaluator_id = next_evaluator_id() if evaluator_id is None else evaluator_id
        self._blob = pickle.dumps(evaluator)
        self.max_dispatch_rounds = max_dispatch_rounds
        self._own_coordinator = own_coordinator
        #: Keys evaluated in-process because no worker (or no budget) was
        #: left — observability for tests and the demo.
        self.fallback_evaluations = 0

    @property
    def coordinator(self) -> Coordinator:
        return self._coordinator

    @property
    def workers(self) -> int:
        """Live worker count (1 when none: the in-process fallback lane)."""
        return max(1, self._coordinator.worker_count())

    # -- dispatch ---------------------------------------------------------------------

    @staticmethod
    def _assign(
        pending: Sequence[IndexedTask], handles: Sequence[WorkerHandle]
    ) -> List[Tuple[WorkerHandle, List[IndexedTask]]]:
        """Deal pending tasks over workers, weighted by advertised slots."""
        cycle: List[WorkerHandle] = [h for h in handles for _ in range(h.slots)]
        chunks: Dict[int, List[IndexedTask]] = {h.worker_id: [] for h in handles}
        for position, task in enumerate(pending):
            chunks[cycle[position % len(cycle)].worker_id].append(task)
        return [(h, chunks[h.worker_id]) for h in handles if chunks[h.worker_id]]

    def map(self, keys: Sequence[FlagKey]) -> List[CandidateResult]:
        if not keys:
            return []
        results: List[Optional[CandidateResult]] = [None] * len(keys)
        pending: List[IndexedTask] = list(enumerate(keys))
        rounds = 0
        while pending:
            handles = self._coordinator.workers()
            if not handles or rounds >= self.max_dispatch_rounds:
                self.fallback_evaluations += len(pending)
                for index, key in pending:
                    results[index] = self._evaluator(key)
                break
            rounds += 1
            lost: List[IndexedTask] = []
            errors: List[BaseException] = []
            collect = threading.Lock()

            def dispatch(handle: WorkerHandle, chunk: List[IndexedTask]) -> None:
                try:
                    delivered = self._coordinator.run_batch(
                        handle, self.evaluator_id, self._blob, chunk
                    )
                except WorkerLost:
                    self._coordinator.discard(handle)
                    with collect:
                        lost.extend(chunk)
                except BaseException as exc:  # remote evaluator error: propagate
                    with collect:
                        errors.append(exc)
                else:
                    for index, result in delivered:
                        results[index] = result

            threads = [
                threading.Thread(target=dispatch, args=(handle, chunk), daemon=True)
                for handle, chunk in self._assign(pending, handles)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            if errors:
                raise errors[0]
            # Re-dispatch in submission order: irrelevant to the results
            # (ordering is fixed by index) but it keeps logs readable.
            pending = sorted(lost)
        return results  # type: ignore[return-value]  # every slot is filled above

    def close(self) -> None:
        if self._own_coordinator:
            self._coordinator.close()
