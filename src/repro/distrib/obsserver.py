"""The HTTP observability server: ``/metrics`` and ``/status``.

A tiny stdlib ``http.server`` running in a daemon thread, loopback by
default, attached to the :class:`~repro.distrib.coordinator.Coordinator`
for distributed runs and owned by the campaign CLI for serial/process
runs.  Two endpoints:

* ``GET /metrics`` — the process-global sink's counters, gauges and
  histograms (plus any registered extra metrics sources, e.g. the
  coordinator's fleet-health gauges and the fleet-merged worker batch
  histogram) in the Prometheus text exposition format.
* ``GET /status`` — one JSON document assembled from named status sources
  (``campaign`` progress, ``fleet`` health rows) plus server-side stage
  latency quantiles, polled by ``python -m repro.telemetry tail`` and the
  campaign CLI's ``--live`` view.

The contract mirrors the telemetry plane's: the server *observes*, it can
never fail a batch.  Handlers read shared state only through the source
callables (which take their owners' locks), a handler exception returns
500 and bumps a counter, and a request racing campaign teardown gets a
clean 503 — never a traceback in the accept thread.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional

from repro.telemetry import get_sink
from repro.telemetry.live import (
    Histogram,
    merge_metric_snapshots,
    render_prometheus,
)

logger = logging.getLogger("repro.distrib.obsserver")

__all__ = ["ObservabilityServer"]

#: Histogram names surfaced as ``stages`` quantile rows in ``/status``
#: (dotted prefix match): the hot seams a tail view cares about.
_STATUS_LATENCY_PREFIXES = ("stage.", "coordinator.rpc", "worker.batch", "engine.generation")


class _Handler(BaseHTTPRequestHandler):
    """Routes ``GET`` to the owning :class:`ObservabilityServer`."""

    server_version = "repro-obs/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        obs: "ObservabilityServer" = self.server.obs  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if obs.closing:
                self._reply(503, "text/plain; charset=utf-8",
                            b"observability server shutting down\n")
                return
            if path == "/metrics":
                body = obs.metrics_text().encode("utf-8")
                self._reply(200, "text/plain; version=0.0.4; charset=utf-8", body)
            elif path in ("/", "/status"):
                body = json.dumps(obs.status(), default=str).encode("utf-8")
                self._reply(200, "application/json; charset=utf-8", body)
            else:
                self._reply(404, "text/plain; charset=utf-8", b"not found\n")
        except Exception as exc:
            # A broken source must cost the scraper one 500, never the run
            # anything.  If the race was with teardown, call it a 503.
            obs.record_error()
            logger.debug("observability handler failed for %s: %s", self.path, exc)
            try:
                if obs.closing:
                    self._reply(503, "text/plain; charset=utf-8",
                                b"observability server shutting down\n")
                else:
                    self._reply(500, "text/plain; charset=utf-8",
                                f"internal error: {exc}\n".encode("utf-8", "replace"))
            except OSError:
                pass  # client already gone

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        try:
            self.wfile.write(body)
        except (OSError, ValueError):
            pass  # client disconnected mid-reply

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        logger.debug("%s %s", self.address_string(), format % args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    # Teardown must never hang on a slow scraper holding the accept thread.
    request_queue_size = 16

    def handle_error(self, request, client_address) -> None:
        # The stock implementation prints a traceback to stderr; a dropped
        # connection during shutdown is routine, not an incident.
        logger.debug("request from %s failed", client_address, exc_info=True)


class ObservabilityServer:
    """Serves ``/metrics`` + ``/status`` from a daemon thread.

    Status *sources* are named callables returning JSON-safe values;
    metrics *sources* return registry snapshots (``counters`` / ``gauges``
    / ``histograms`` dicts) merged into the sink's own before rendering.
    Sources are polled per-request — the server holds no state of its own
    beyond the error counter.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._status_sources: Dict[str, Callable[[], object]] = {}
        self._metrics_sources: List[Callable[[], Dict[str, object]]] = []
        self._lock = threading.Lock()
        self._closing = False
        self._closed = False
        self.errors = 0
        self._httpd = _Server((host, port), _Handler)
        self._httpd.obs = self  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            name=f"obs-server:{self.port}",
            daemon=True,
        )
        self._thread.start()
        logger.info("observability server listening on http://%s:%d", self.host, self.port)

    # -- wiring -----------------------------------------------------------------------

    def url(self) -> str:
        host = self.host if self.host not in ("0.0.0.0", "::") else "127.0.0.1"
        return f"http://{host}:{self.port}"

    def add_source(self, name: str, source: Callable[[], object]) -> None:
        """Register a named ``/status`` section (e.g. ``campaign``, ``fleet``)."""
        with self._lock:
            self._status_sources[name] = source

    def remove_source(self, name: str) -> None:
        with self._lock:
            self._status_sources.pop(name, None)

    def add_metrics_source(self, source: Callable[[], Dict[str, object]]) -> None:
        """Register an extra registry snapshot merged into ``/metrics``."""
        with self._lock:
            self._metrics_sources.append(source)

    @property
    def closing(self) -> bool:
        return self._closing

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1
        get_sink().incr("obs.errors")

    # -- document assembly ------------------------------------------------------------

    def _snapshots(self) -> List[Dict[str, object]]:
        with self._lock:
            sources = list(self._metrics_sources)
        snapshots: List[Dict[str, object]] = []
        sink = get_sink()
        snapshot = getattr(sink, "metrics_snapshot", None)
        if callable(snapshot):
            snapshots.append(snapshot())
        for source in sources:
            try:
                snapshots.append(source())
            except Exception:
                self.record_error()
        return snapshots

    def metrics_text(self) -> str:
        merged = merge_metric_snapshots(self._snapshots())
        with self._lock:
            errors = self.errors
        # The error counter is always exported, even before the sink saw
        # any obs.errors increments (e.g. with the null sink installed).
        counters = merged.setdefault("counters", {})
        counters["obs.errors"] = max(float(counters.get("obs.errors", 0)), float(errors))
        return render_prometheus(merged)

    def status(self) -> Dict[str, object]:
        with self._lock:
            sources = dict(self._status_sources)
        document: Dict[str, object] = {
            "service": "repro-obs",
            "time": time.time(),
            "errors": self.errors,
        }
        for name, source in sources.items():
            try:
                document[name] = source()
            except Exception as exc:
                self.record_error()
                document[name] = {"error": f"{type(exc).__name__}: {exc}"}
        document["stages"] = self._stage_latencies()
        return document

    def _stage_latencies(self) -> Dict[str, Dict[str, object]]:
        """p50/p95/p99 for the hot latency seams, computed server-side so
        the tail client never needs bucket math."""
        merged = merge_metric_snapshots(self._snapshots())
        stages: Dict[str, Dict[str, object]] = {}
        for name, snapshot in (merged.get("histograms") or {}).items():
            if not name.endswith(".seconds"):
                continue
            base = name[: -len(".seconds")]
            if not any(base.startswith(prefix) or base == prefix.rstrip(".")
                       for prefix in _STATUS_LATENCY_PREFIXES):
                continue
            histogram = Histogram.from_snapshot(snapshot)
            if not histogram.count:
                continue
            row = histogram.percentiles()
            row["count"] = histogram.count
            stages[base] = row
        return stages

    # -- lifecycle --------------------------------------------------------------------

    def begin_shutdown(self) -> None:
        """Flip to draining: every request from now on gets a clean 503.

        Called first by :meth:`close`, and callable early by an owner whose
        backing state (campaign, coordinator registry) is being torn down
        before the server itself goes away.
        """
        self._closing = True

    def close(self, timeout: float = 2.0) -> None:
        """Stop serving and join the server thread with a bounded timeout."""
        self.begin_shutdown()
        with self._lock:
            if self._closed:
                return
            self._closed = True
        try:
            self._httpd.shutdown()
        except Exception:
            pass
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            logger.warning(
                "observability server thread did not exit within %.1fs", timeout
            )
        try:
            self._httpd.server_close()
        except OSError:
            pass

    def __enter__(self) -> "ObservabilityServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
