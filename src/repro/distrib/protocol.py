"""Wire protocol of the distributed evaluation service.

Every message is one *frame*: a 4-byte big-endian unsigned length followed by
that many bytes of pickle.  Length-prefixed framing over plain stream sockets
(instead of ``multiprocessing.connection``) keeps the transport inspectable —
per-message timeouts, bounded frame sizes, and an exact EOF story — without
any dependency beyond the stdlib.

The conversation is strictly request/response per worker:

* worker → coordinator: :class:`Hello` (capacity advertisement);
* coordinator → worker: :class:`Welcome` (the assigned worker id);
* coordinator → worker: :class:`EvalBatch` — an evaluator id, an optional
  pickle-once evaluator blob (sent only when the coordinator believes the
  worker does not hold that evaluator), and ``(index, FlagKey)`` tasks;
* worker → coordinator: :class:`BatchResult` (indexed results),
  :class:`BatchFailure` (the evaluator raised — a programming error, not a
  transport failure), or :class:`EvaluatorMissing` (the worker's bounded
  cache evicted that evaluator; the coordinator re-sends with the blob);
* coordinator → worker: :class:`Shutdown`.

Results travel with their submission *index*, never their completion order:
the mapper slots them back by index, which is what keeps distributed runs
bit-for-bit identical to serial ones.
"""

from __future__ import annotations

import hmac
import os
import pickle
import socket
import struct
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.distrib.errors import AuthenticationError, ConnectionClosed, ProtocolError

#: Corruption guard, not a budget: an evaluator blob (compiler + baseline
#: image + source) is tens of kilobytes, a batch of flag keys far less.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Hello:
    """Worker registration: how many evaluation slots it advertises."""

    slots: int = 1


@dataclass(frozen=True)
class Welcome:
    """Coordinator's handshake reply: the worker's assigned id."""

    worker_id: int


@dataclass(frozen=True)
class EvalBatch:
    """A slice of one generation: ``(submission index, flag key)`` tasks.

    ``blob`` is the pickled evaluator, included only when the coordinator
    believes this worker has never seen (or has evicted) ``evaluator_id``.
    """

    evaluator_id: int
    tasks: Tuple[Tuple[int, Tuple[str, ...]], ...]
    blob: Optional[bytes] = None


@dataclass(frozen=True)
class BatchResult:
    """Indexed :class:`~repro.tuner.evaluation.CandidateResult` objects."""

    evaluator_id: int
    results: Tuple[Tuple[int, object], ...]


@dataclass(frozen=True)
class BatchFailure:
    """The worker's evaluator raised — a programming error to propagate,
    never a reason to re-dispatch.  ``exception`` is the original exception
    when it survives pickling, else ``None`` (``message`` always survives)."""

    evaluator_id: int
    message: str
    exception: Optional[BaseException] = None


@dataclass(frozen=True)
class EvaluatorMissing:
    """The worker does not hold ``evaluator_id`` (bounded cache eviction)."""

    evaluator_id: int


@dataclass(frozen=True)
class Heartbeat:
    """Worker → coordinator, while a batch is evaluating: still alive.

    Each frame arrives inside the coordinator's per-recv timeout window and
    resets it, so a batch that legitimately outlives the nominal per-task
    budget (a pathological candidate, a slow machine) no longer reads as a
    dead worker — the worker only fails when it stops *sending*, not when it
    stops *finishing*.
    """

    worker_id: int = 0


@dataclass(frozen=True)
class Shutdown:
    """Coordinator → worker: drain and exit cleanly."""


MESSAGE_TYPES = (
    Hello, Welcome, EvalBatch, BatchResult, BatchFailure, EvaluatorMissing,
    Heartbeat, Shutdown,
)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def send_message(sock: socket.socket, message: object) -> None:
    """Pickle ``message`` and write it as one length-prefixed frame."""
    if not isinstance(message, MESSAGE_TYPES):
        raise ProtocolError(f"refusing to send non-protocol object {type(message).__name__}")
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"{type(message).__name__} frame of {len(payload)} bytes exceeds "
            f"the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as exc:
        raise ConnectionClosed(f"peer went away mid-send: {exc}") from exc


def recv_message(sock: socket.socket) -> object:
    """Read one frame and unpickle it; type-checked against the protocol."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame announces {length} bytes (limit {MAX_FRAME_BYTES}); "
            "the stream is corrupt or the peer speaks another protocol"
        )
    payload = _recv_exact(sock, length)
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(f"frame did not unpickle: {exc}") from exc
    if not isinstance(message, MESSAGE_TYPES):
        raise ProtocolError(f"unexpected message type {type(message).__name__}")
    return message


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except TimeoutError:
            raise  # the coordinator turns per-batch timeouts into WorkerLost
        except OSError as exc:
            raise ConnectionClosed(f"peer went away mid-frame: {exc}") from exc
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Authentication
# ---------------------------------------------------------------------------
#
# ``pickle.loads`` on attacker-controlled bytes is remote code execution, so
# a coordinator bound beyond loopback must never unpickle before the peer
# proves knowledge of the shared ``authkey``.  The handshake is a *mutual*
# HMAC-SHA256 challenge-response over raw (never pickled) frames — the same
# scheme as ``multiprocessing.connection``, both directions: the coordinator
# challenges the worker first, then the worker challenges the coordinator
# (a rogue "coordinator" must not be able to feed workers poisoned blobs).

#: Raw handshake frames are tiny; anything bigger is not our handshake.
_MAX_AUTH_FRAME = 256
_CHALLENGE_PREFIX = b"repro-distrib-challenge:"
_DIGEST_PREFIX = b"repro-distrib-digest:"
_AUTH_OK = b"repro-distrib-ok"


def _send_raw(sock: socket.socket, payload: bytes) -> None:
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as exc:
        raise ConnectionClosed(f"peer went away mid-handshake: {exc}") from exc


def _recv_raw(sock: socket.socket) -> bytes:
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > _MAX_AUTH_FRAME:
        raise AuthenticationError(
            f"handshake frame of {length} bytes (limit {_MAX_AUTH_FRAME}); "
            "peer is not speaking the authentication protocol"
        )
    return _recv_exact(sock, length)


def normalize_authkey(authkey: Union[str, bytes, None]) -> Optional[bytes]:
    if authkey is None:
        return None
    return authkey.encode() if isinstance(authkey, str) else bytes(authkey)


def _challenge(sock: socket.socket, authkey: bytes) -> None:
    """Challenge the peer; raises :class:`AuthenticationError` on mismatch."""
    nonce = os.urandom(32)
    _send_raw(sock, _CHALLENGE_PREFIX + nonce)
    reply = _recv_raw(sock)
    expected = _DIGEST_PREFIX + hmac.new(authkey, nonce, "sha256").digest()
    if not hmac.compare_digest(reply, expected):
        raise AuthenticationError("peer failed the authkey challenge")
    _send_raw(sock, _AUTH_OK)


def _respond(sock: socket.socket, authkey: bytes) -> None:
    """Answer the peer's challenge; raises on rejection."""
    frame = _recv_raw(sock)
    if not frame.startswith(_CHALLENGE_PREFIX):
        raise AuthenticationError("peer did not send an authkey challenge")
    nonce = frame[len(_CHALLENGE_PREFIX):]
    _send_raw(sock, _DIGEST_PREFIX + hmac.new(authkey, nonce, "sha256").digest())
    if _recv_raw(sock) != _AUTH_OK:
        raise AuthenticationError("peer rejected our authkey digest")


def authenticate(sock: socket.socket, authkey: bytes, server: bool) -> None:
    """Run the mutual handshake (coordinator passes ``server=True``)."""
    if server:
        _challenge(sock, authkey)
        _respond(sock, authkey)
    else:
        _respond(sock, authkey)
        _challenge(sock, authkey)


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------

def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; a bare ``":0"`` means loopback."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not port.lstrip("-").isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    number = int(port)
    if not 0 <= number <= 65535:
        raise ValueError(f"port {number} out of range in {address!r}")
    return (host or "127.0.0.1", number)


def format_address(host: str, port: int) -> str:
    return f"{host}:{port}"
