"""Wire protocol of the distributed evaluation service.

Every message is one *frame*: a 4-byte big-endian unsigned length followed by
that many bytes of pickle.  Length-prefixed framing over plain stream sockets
(instead of ``multiprocessing.connection``) keeps the transport inspectable —
per-message timeouts, bounded frame sizes, and an exact EOF story — without
any dependency beyond the stdlib.

The conversation is strictly request/response per worker:

* worker → coordinator: :class:`Hello` (capacity advertisement);
* coordinator → worker: :class:`Welcome` (the assigned worker id);
* coordinator → worker: :class:`EvalBatch` — an evaluator id, an optional
  pickle-once evaluator blob (sent only when the coordinator believes the
  worker does not hold that evaluator), and ``(index, FlagKey)`` tasks;
* worker → coordinator: :class:`BatchResult` (indexed results),
  :class:`BatchFailure` (the evaluator raised — a programming error, not a
  transport failure), or :class:`EvaluatorMissing` (the worker's bounded
  cache evicted that evaluator; the coordinator re-sends with the blob);
* coordinator → worker: :class:`Shutdown`.

Results travel with their submission *index*, never their completion order:
the mapper slots them back by index, which is what keeps distributed runs
bit-for-bit identical to serial ones.

The **artifact plane** rides inside the same conversation.  While a batch is
evaluating (the only time a worker has artifact traffic), the worker may
interleave mesh frames ahead of its batch reply, exactly like heartbeats:

* :class:`ArtifactFetch` (worker → coordinator) asks for one tier-2 entry;
  the coordinator answers with :class:`ArtifactData` frames — the entry's
  encoded payload, chunked so no frame approaches :data:`MAX_FRAME_BYTES`
  (``part_count == 0`` is a miss);
* :class:`ArtifactHave` (worker → coordinator) is the membership probe
  behind batched pushes: the worker only uploads entries the coordinator
  does not already hold, answered by :class:`ArtifactHaveReply`;
* :class:`ArtifactPush` (worker → coordinator) carries freshly produced
  entries, each as ``(key, part_index, part_count, chunk)`` quads using the
  same chunking, fire-and-forget (the stream is ordered, so every push is
  absorbed before the batch reply is parsed).

Payloads are :meth:`~repro.tuner.store.ArtifactStore.encode_entry` bytes —
digest plus embedded key — so every receiver re-verifies them on arrival
and on every later load: a corrupt, truncated, or aliased transfer reads as
a miss by construction, never as a wrong artifact.
"""

from __future__ import annotations

import hmac
import os
import pickle
import socket
import struct
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.distrib.errors import AuthenticationError, ConnectionClosed, ProtocolError

#: Corruption guard, not a budget: an evaluator blob (compiler + baseline
#: image + source) is tens of kilobytes, a batch of flag keys far less.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Hello:
    """Worker registration: how many evaluation slots it advertises.

    ``heartbeat_interval`` is the cadence (seconds) this worker promises
    :class:`Heartbeat` frames at, so the coordinator can derive its
    staleness windows per worker instead of guessing; ``0`` means the
    worker sends no heartbeats.  Defaulted for version skew: an older
    worker's Hello reads as the stock 15s cadence.
    """

    slots: int = 1
    heartbeat_interval: float = 15.0


@dataclass(frozen=True)
class Welcome:
    """Coordinator's handshake reply: the worker's assigned id.

    ``mesh`` advertises whether this coordinator serves the artifact plane;
    ``mesh_budget_bytes`` is the per-machine transfer budget it enforces
    (``None`` = unbounded).  ``telemetry`` advertises that this coordinator
    aggregates :class:`TelemetrySummary` frames.  Workers built against an
    older coordinator see the defaults and simply never send the
    corresponding frames.
    """

    worker_id: int
    mesh: bool = False
    mesh_budget_bytes: Optional[int] = None
    telemetry: bool = False


@dataclass(frozen=True)
class EvalBatch:
    """A slice of one generation: ``(submission index, flag key)`` tasks.

    ``blob`` is the pickled evaluator, included only when the coordinator
    believes this worker has never seen (or has evicted) ``evaluator_id``.
    """

    evaluator_id: int
    tasks: Tuple[Tuple[int, Tuple[str, ...]], ...]
    blob: Optional[bytes] = None


@dataclass(frozen=True)
class BatchResult:
    """Indexed :class:`~repro.tuner.evaluation.CandidateResult` objects."""

    evaluator_id: int
    results: Tuple[Tuple[int, object], ...]


@dataclass(frozen=True)
class BatchFailure:
    """The worker's evaluator raised — a programming error to propagate,
    never a reason to re-dispatch.  ``exception`` is the original exception
    when it survives pickling, else ``None`` (``message`` always survives)."""

    evaluator_id: int
    message: str
    exception: Optional[BaseException] = None


@dataclass(frozen=True)
class EvaluatorMissing:
    """The worker does not hold ``evaluator_id`` (bounded cache eviction)."""

    evaluator_id: int


@dataclass(frozen=True)
class Heartbeat:
    """Worker → coordinator, while a batch is evaluating: still alive.

    Each frame arrives inside the coordinator's per-recv timeout window and
    resets it, so a batch that legitimately outlives the nominal per-task
    budget (a pathological candidate, a slow machine) no longer reads as a
    dead worker — the worker only fails when it stops *sending*, not when it
    stops *finishing*.
    """

    worker_id: int = 0


@dataclass(frozen=True)
class TelemetrySummary:
    """Worker → coordinator, interleaved ahead of a batch reply: a compact
    snapshot of this session's utilization counters (slots, batches,
    candidates, busy seconds, per-stage seconds, cache-tier hits, mesh
    bytes).  Observe-only by construction — the coordinator records it for
    the fleet view and never acts on it.  Sent only when the
    :class:`Welcome` advertised ``telemetry=True``, so version skew in
    either direction degrades to "no fleet view", never to an error.
    """

    worker_id: int
    payload: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class Shutdown:
    """Coordinator → worker: drain and exit cleanly."""


# -- artifact plane ---------------------------------------------------------

#: Chunk size for artifact payload transfer.  Entries are split into parts of
#: at most this many bytes so a single artifact can never produce a frame
#: anywhere near :data:`MAX_FRAME_BYTES`, and a slow transfer keeps feeding
#: the receiver's per-recv timeout window frame by frame.
ARTIFACT_CHUNK_BYTES = 1 << 20


@dataclass(frozen=True)
class ArtifactHave:
    """Worker → coordinator: which of ``keys`` does the mesh already hold?

    Sent before a batched push so the worker only uploads entries the
    coordinator is missing — the mesh must never amplify traffic by
    re-sending artifacts every machine already has.
    """

    keys: Tuple[object, ...]


@dataclass(frozen=True)
class ArtifactHaveReply:
    """Coordinator → worker: membership bits, aligned with the probe's keys."""

    present: Tuple[bool, ...]


@dataclass(frozen=True)
class ArtifactFetch:
    """Worker → coordinator: serve one tier-2 entry from the mesh store."""

    key: object


@dataclass(frozen=True)
class ArtifactData:
    """Coordinator → worker: one chunk of a fetched entry's encoded payload.

    Parts arrive in order, ``part_index`` running ``0 .. part_count - 1``.
    ``part_count == 0`` (with empty ``data``) is a miss — the mesh does not
    hold the entry, or serving it would exceed the machine's byte budget.
    """

    key: object
    part_index: int
    part_count: int
    data: bytes


@dataclass(frozen=True)
class ArtifactPush:
    """Worker → coordinator: freshly produced entries, fire-and-forget.

    ``entries`` holds ``(key, part_index, part_count, chunk)`` quads; large
    payloads span consecutive quads (and may span consecutive pushes), small
    ones batch many-per-frame.  Receivers re-verify each reassembled payload
    before storing it, so a tampered push is dropped, never served.
    """

    entries: Tuple[Tuple[object, int, int, bytes], ...]


def chunk_payload(payload: bytes) -> Tuple[bytes, ...]:
    """Split an encoded entry into :data:`ARTIFACT_CHUNK_BYTES`-sized parts."""
    if not payload:
        return (b"",)
    return tuple(
        payload[offset:offset + ARTIFACT_CHUNK_BYTES]
        for offset in range(0, len(payload), ARTIFACT_CHUNK_BYTES)
    )


MESSAGE_TYPES = (
    Hello, Welcome, EvalBatch, BatchResult, BatchFailure, EvaluatorMissing,
    Heartbeat, TelemetrySummary, Shutdown,
    ArtifactHave, ArtifactHaveReply, ArtifactFetch, ArtifactData, ArtifactPush,
)


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def send_message(sock: socket.socket, message: object) -> None:
    """Pickle ``message`` and write it as one length-prefixed frame."""
    if not isinstance(message, MESSAGE_TYPES):
        raise ProtocolError(f"refusing to send non-protocol object {type(message).__name__}")
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"{type(message).__name__} frame of {len(payload)} bytes exceeds "
            f"the {MAX_FRAME_BYTES}-byte limit"
        )
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as exc:
        raise ConnectionClosed(f"peer went away mid-send: {exc}") from exc


def recv_message(sock: socket.socket) -> object:
    """Read one frame and unpickle it; type-checked against the protocol."""
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"incoming frame announces {length} bytes (limit {MAX_FRAME_BYTES}); "
            "the stream is corrupt or the peer speaks another protocol"
        )
    payload = _recv_exact(sock, length)
    try:
        message = pickle.loads(payload)
    except Exception as exc:
        raise ProtocolError(f"frame did not unpickle: {exc}") from exc
    if not isinstance(message, MESSAGE_TYPES):
        raise ProtocolError(f"unexpected message type {type(message).__name__}")
    return message


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except TimeoutError:
            raise  # the coordinator turns per-batch timeouts into WorkerLost
        except OSError as exc:
            raise ConnectionClosed(f"peer went away mid-frame: {exc}") from exc
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} of {count} bytes unread"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Authentication
# ---------------------------------------------------------------------------
#
# ``pickle.loads`` on attacker-controlled bytes is remote code execution, so
# a coordinator bound beyond loopback must never unpickle before the peer
# proves knowledge of the shared ``authkey``.  The handshake is a *mutual*
# HMAC-SHA256 challenge-response over raw (never pickled) frames — the same
# scheme as ``multiprocessing.connection``, both directions: the coordinator
# challenges the worker first, then the worker challenges the coordinator
# (a rogue "coordinator" must not be able to feed workers poisoned blobs).

#: Raw handshake frames are tiny; anything bigger is not our handshake.
_MAX_AUTH_FRAME = 256
_CHALLENGE_PREFIX = b"repro-distrib-challenge:"
_DIGEST_PREFIX = b"repro-distrib-digest:"
_AUTH_OK = b"repro-distrib-ok"


def _send_raw(sock: socket.socket, payload: bytes) -> None:
    try:
        sock.sendall(_HEADER.pack(len(payload)) + payload)
    except OSError as exc:
        raise ConnectionClosed(f"peer went away mid-handshake: {exc}") from exc


def _recv_raw(sock: socket.socket) -> bytes:
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > _MAX_AUTH_FRAME:
        raise AuthenticationError(
            f"handshake frame of {length} bytes (limit {_MAX_AUTH_FRAME}); "
            "peer is not speaking the authentication protocol"
        )
    return _recv_exact(sock, length)


def normalize_authkey(authkey: Union[str, bytes, None]) -> Optional[bytes]:
    if authkey is None:
        return None
    return authkey.encode() if isinstance(authkey, str) else bytes(authkey)


def _challenge(sock: socket.socket, authkey: bytes) -> None:
    """Challenge the peer; raises :class:`AuthenticationError` on mismatch."""
    nonce = os.urandom(32)
    _send_raw(sock, _CHALLENGE_PREFIX + nonce)
    reply = _recv_raw(sock)
    expected = _DIGEST_PREFIX + hmac.new(authkey, nonce, "sha256").digest()
    if not hmac.compare_digest(reply, expected):
        raise AuthenticationError("peer failed the authkey challenge")
    _send_raw(sock, _AUTH_OK)


def _respond(sock: socket.socket, authkey: bytes) -> None:
    """Answer the peer's challenge; raises on rejection."""
    frame = _recv_raw(sock)
    if not frame.startswith(_CHALLENGE_PREFIX):
        raise AuthenticationError("peer did not send an authkey challenge")
    nonce = frame[len(_CHALLENGE_PREFIX):]
    _send_raw(sock, _DIGEST_PREFIX + hmac.new(authkey, nonce, "sha256").digest())
    if _recv_raw(sock) != _AUTH_OK:
        raise AuthenticationError("peer rejected our authkey digest")


def authenticate(sock: socket.socket, authkey: bytes, server: bool) -> None:
    """Run the mutual handshake (coordinator passes ``server=True``)."""
    if server:
        _challenge(sock, authkey)
        _respond(sock, authkey)
    else:
        _respond(sock, authkey)
        _challenge(sock, authkey)


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------

def parse_address(address: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``; a bare ``":0"`` means loopback."""
    host, sep, port = str(address).rpartition(":")
    if not sep or not port.lstrip("-").isdigit():
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    number = int(port)
    if not 0 <= number <= 65535:
        raise ValueError(f"port {number} out of range in {address!r}")
    return (host or "127.0.0.1", number)


def format_address(host: str, port: int) -> str:
    return f"{host}:{port}"
