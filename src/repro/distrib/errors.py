"""Exceptions of the distributed evaluation service.

The hierarchy separates the failures the mapper *recovers from* (a worker
vanishing mid-batch triggers bounded re-dispatch) from the failures it
*propagates* (a malformed frame is a bug, a remote evaluator exception is the
same programming error it would be in-process).
"""

from __future__ import annotations


class DistribError(RuntimeError):
    """Base class for every distributed-evaluation failure."""


class ProtocolError(DistribError):
    """A malformed frame or an unexpected message type on the wire."""


class AuthenticationError(DistribError):
    """The peer failed (or skipped) the HMAC challenge handshake."""


class ConnectionClosed(DistribError, EOFError):
    """The peer hung up mid-conversation (also an :class:`EOFError`, so
    callers written against raw-socket semantics keep working)."""


class WorkerLost(DistribError):
    """A worker died or timed out while a batch was in flight.

    Internal to the coordinator/mapper pair: the mapper responds by
    discarding the worker and re-dispatching the lost keys, so this never
    escapes ``DistributedMapper.map`` unless re-dispatch itself is exhausted.
    """

    def __init__(self, message: str, worker_id: int = -1, pending: int = 0) -> None:
        super().__init__(message)
        self.worker_id = worker_id
        self.pending = pending


class RemoteEvaluationError(DistribError):
    """A worker's evaluator raised, and the original exception did not
    survive the pickle round-trip; the remote traceback text is preserved."""


class ServiceError(DistribError):
    """A client-plane failure with a stable machine-readable status code.

    The tuning service answers these as typed ``error`` frames (wire and
    admission failures alike), and the client raises them back to callers;
    ``code`` is the contract, ``message`` the human-readable detail.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
