"""Benchmark workload corpus.

The paper evaluates on SPEC CPU2006/CPU2017 integer benchmarks, Coreutils and
OpenSSL.  Those sources cannot be shipped or compiled here, so the corpus
contains one mini-C program per paper benchmark, written/generated to stress
the same code shapes the real benchmark stresses (see DESIGN.md §1):
tight numeric kernels for 462.libquantum, pointer/array chasing for 429.mcf,
huge switch dispatch for 445.gobmk, utility command dispatch for Coreutils,
block-cipher style bit mixing for OpenSSL, and so on.  Each workload also
carries the arguments used for the functional-correctness check.
"""

from repro.workloads.programs import (
    WorkloadProgram,
    generate_program,
    PROGRAM_BUILDERS,
)
from repro.workloads.suites import (
    SUITES,
    BENCHMARKS,
    benchmark,
    suite_benchmarks,
    all_benchmarks,
)

__all__ = [
    "WorkloadProgram",
    "generate_program",
    "PROGRAM_BUILDERS",
    "SUITES",
    "BENCHMARKS",
    "benchmark",
    "suite_benchmarks",
    "all_benchmarks",
]
