"""Mini-C workload programs and the parametric program generator.

Each builder returns a :class:`WorkloadProgram` whose source text stresses a
particular mix of code shapes.  The generator composes reusable source
fragments (numeric kernels, switch dispatchers, string utilities, recursive
search, crypto-style mixing) with a per-benchmark seed so every benchmark in
the corpus is a *different* program that nevertheless exercises every part of
the compiler — which is what makes the tuned flag sequences program-specific,
as the paper observes in §5.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence


@dataclass
class WorkloadProgram:
    """A compilable workload: source plus the inputs used for behaviour checks."""

    name: str
    source: str
    arguments: Sequence[int] = ()
    inputs: Sequence[int] = ()
    description: str = ""
    category: str = "generic"

    def line_count(self) -> int:
        return self.source.count("\n") + 1


# ---------------------------------------------------------------------------
# Reusable source fragments
# ---------------------------------------------------------------------------


def _numeric_kernel(rng: random.Random, index: int) -> str:
    """A libquantum-style kernel: array products, factor loops, reductions."""
    size = rng.choice([48, 64, 96])
    scale = rng.randrange(3, 23)
    return f"""
int nk_a{index}[{size}];
int nk_b{index}[{size}];
int nk_c{index}[{size}];
int numeric_kernel{index}(int n) {{
  int i;
  for (i = 0; i < n; i++) {{ nk_a{index}[i] = (i * {scale}) % 251; nk_b{index}[i] = (i * {scale + 7}) % 241; }}
  for (i = 0; i < n; i++) {{ nk_c{index}[i] = nk_a{index}[i] * nk_b{index}[i]; }}
  int acc = 0;
  for (i = 0; i < n; i++) {{ acc += nk_c{index}[i] / {rng.choice([3, 5, 7, 255])}; }}
  for (i = 1; i < n; i++) {{ nk_c{index}[i] = nk_c{index}[i] + nk_c{index}[i - 1]; }}
  return acc + nk_c{index}[n - 1];
}}
"""


def _switch_dispatcher(rng: random.Random, index: int) -> str:
    """A gobmk/coreutils-style dense + sparse switch dispatcher."""
    dense_cases = "\n".join(
        f"    case {value}: total += {rng.randrange(1, 90)}; break;" for value in range(rng.randrange(6, 12))
    )
    sparse_values = sorted(rng.sample(range(100, 4000), rng.randrange(5, 9)))
    sparse_cases = "\n".join(
        f"    case {value}: total -= {rng.randrange(1, 50)}; break;" for value in sparse_values
    )
    return f"""
int dispatch{index}(int op, int total) {{
  switch (op) {{
{dense_cases}
    default: total += 1;
  }}
  switch (op * 17 % 4096) {{
{sparse_cases}
    default: total -= 1;
  }}
  return total;
}}
"""


def _string_utility(rng: random.Random, index: int) -> str:
    """A coreutils-style buffer/string manipulation routine."""
    length = rng.choice([16, 24, 32])
    return f"""
int su_buf{index}[{length + 8}];
int string_utility{index}(int seed) {{
  int i;
  strcpy(su_buf{index}, "workload-{index}");
  int len = strlen(su_buf{index});
  for (i = 0; i < {length}; i++) {{
    su_buf{index}[i] = ((seed + i * {rng.randrange(3, 17)}) % 26) + 97;
  }}
  su_buf{index}[{length}] = 0;
  int hash = 5381;
  for (i = 0; i < {length}; i++) {{ hash = hash * 33 + su_buf{index}[i]; hash = hash % 1000003; }}
  return hash + len;
}}
"""


def _recursive_search(rng: random.Random, index: int) -> str:
    """An mcf/gobmk-style recursive exploration with memo table."""
    depth = rng.choice([10, 12, 14])
    return f"""
int memo{index}[64];
int explore{index}(int n) {{
  if (n < 2) return n;
  if (n < 64 && memo{index}[n] != 0) return memo{index}[n];
  int result = explore{index}(n - 1) + explore{index}(n - 2) % 9973;
  if (n < 64) memo{index}[n] = result;
  return result;
}}
int search_driver{index}(int limit) {{
  int i; int acc = 0;
  for (i = 1; i < limit && i < {depth}; i++) {{ acc += explore{index}(i) % 127; }}
  return acc;
}}
"""


def _crypto_mixer(rng: random.Random, index: int) -> str:
    """An OpenSSL-style ARX (add/rotate/xor) block mixer."""
    rounds = rng.choice([8, 12, 16])
    k1, k2, k3 = (rng.randrange(1, 1 << 15) for _ in range(3))
    return f"""
int ct_state{index}[16];
int crypto_mix{index}(int seed) {{
  int i; int r;
  for (i = 0; i < 16; i++) ct_state{index}[i] = seed + i * {k1};
  for (r = 0; r < {rounds}; r++) {{
    for (i = 0; i < 16; i++) {{
      int x = ct_state{index}[i];
      x = x ^ (x << 3); x = x + {k2}; x = x ^ (x >> 5); x = x * {k3 | 1};
      ct_state{index}[i] = x & 0xffffff;
      ct_state{index}[(i + 1) % 16] = ct_state{index}[(i + 1) % 16] ^ x;
    }}
  }}
  int digest = 0;
  for (i = 0; i < 16; i++) digest = (digest + ct_state{index}[i]) % 100000007;
  return digest;
}}
"""


def _branchy_logic(rng: random.Random, index: int) -> str:
    """bzip2/x264-style branchy decision code with ternaries and short-circuits."""
    threshold_a = rng.randrange(10, 200)
    threshold_b = rng.randrange(5, 100)
    return f"""
int decide{index}(int a, int b, int c) {{
  int verdict = 0;
  if (a > {threshold_a} && b < {threshold_b}) verdict = a - b;
  else if (a < b || c > {threshold_a}) verdict = b - a;
  else verdict = (c % 2 == 0) ? c / 2 : 3 * c + 1;
  int bonus = (verdict > 0) ? 1 : -1;
  while (verdict > {threshold_b}) {{ verdict = verdict / 2 + bonus; }}
  return verdict + bonus;
}}
"""


_FRAGMENTS: List[Callable[[random.Random, int], str]] = [
    _numeric_kernel,
    _switch_dispatcher,
    _string_utility,
    _recursive_search,
    _crypto_mixer,
    _branchy_logic,
]

_FRAGMENT_CALLS = {
    "_numeric_kernel": "numeric_kernel{i}(40)",
    "_switch_dispatcher": "dispatch{i}(step * 3 + 1, acc)",
    "_string_utility": "string_utility{i}(step)",
    "_recursive_search": "search_driver{i}(11)",
    "_crypto_mixer": "crypto_mix{i}(step + 13)",
    "_branchy_logic": "decide{i}(step * 7, step * 5 % 97, step)",
}


def generate_program(
    name: str,
    seed: int,
    emphasis: Sequence[str] = (),
    fragment_count: int = 5,
    steps: int = 12,
    category: str = "generic",
    description: str = "",
) -> WorkloadProgram:
    """Generate a workload program.

    ``emphasis`` lists fragment kinds (by function name, e.g.
    ``"_numeric_kernel"``) that should appear more often, steering the
    program toward the character of the corresponding real benchmark.
    """
    rng = random.Random(seed)
    weighted: List[Callable[[random.Random, int], str]] = []
    for fragment in _FRAGMENTS:
        weight = 3 if fragment.__name__ in emphasis else 1
        weighted.extend([fragment] * weight)
    chosen = [rng.choice(weighted) for _ in range(fragment_count)]
    pieces: List[str] = []
    calls: List[str] = []
    for index, fragment in enumerate(chosen):
        pieces.append(fragment(rng, index))
        calls.append(_FRAGMENT_CALLS[fragment.__name__].format(i=index))
    body_calls = "\n".join(f"    acc = (acc + {call}) % 1000000007;" for call in calls)
    main = f"""
int main() {{
  int acc = 0;
  int step;
  for (step = 0; step < {steps}; step++) {{
{body_calls}
  }}
  print_int(acc);
  return acc % 199;
}}
"""
    source = "\n".join(pieces) + main
    return WorkloadProgram(
        name=name,
        source=source,
        description=description or f"generated workload ({', '.join(e.strip('_') for e in emphasis) or 'mixed'})",
        category=category,
    )


#: Builders keyed by paper benchmark name; see :mod:`repro.workloads.suites`
#: for how they are grouped into SPEC/Coreutils/OpenSSL suites.
PROGRAM_BUILDERS: Dict[str, Callable[[], WorkloadProgram]] = {}


def _register(name: str, seed: int, emphasis: Sequence[str], category: str,
              description: str, fragment_count: int = 5, steps: int = 12) -> None:
    PROGRAM_BUILDERS[name] = lambda: generate_program(
        name, seed, emphasis, fragment_count=fragment_count, steps=steps,
        category=category, description=description,
    )


# SPECint 2006 stand-ins.
_register("400.perlbench", 400, ("_switch_dispatcher", "_string_utility"), "spec2006",
          "interpreter-style dispatch plus string handling", 6)
_register("401.bzip2", 401, ("_branchy_logic", "_numeric_kernel"), "spec2006",
          "compression-style branchy numeric code")
_register("429.mcf", 429, ("_recursive_search", "_branchy_logic"), "spec2006",
          "combinatorial optimization with pointer-ish traversal", 4, 10)
_register("445.gobmk", 445, ("_switch_dispatcher", "_recursive_search"), "spec2006",
          "game engine: huge dispatch tables and recursive search", 6)
_register("456.hmmer", 456, ("_numeric_kernel",), "spec2006",
          "profile HMM dynamic-programming kernels")
_register("458.sjeng", 458, ("_recursive_search", "_switch_dispatcher"), "spec2006",
          "chess search with move dispatch")
_register("462.libquantum", 462, ("_numeric_kernel", "_crypto_mixer"), "spec2006",
          "quantum simulation: factorization and vectorizable array products", 5, 14)
_register("464.h264ref", 464, ("_numeric_kernel", "_branchy_logic"), "spec2006",
          "video encoding: block transforms and mode decisions", 6)
_register("471.omnetpp", 471, ("_switch_dispatcher", "_string_utility"), "spec2006",
          "discrete event simulation dispatch")
_register("473.astar", 473, ("_recursive_search", "_numeric_kernel"), "spec2006",
          "path-finding over grids", 4)
_register("483.xalancbmk", 483, ("_string_utility", "_switch_dispatcher"), "spec2006",
          "XML transformation: string and dispatch heavy", 7)

# SPECspeed 2017 stand-ins.
_register("600.perlbench_s", 600, ("_switch_dispatcher", "_string_utility"), "spec2017",
          "perl interpreter workloads", 7)
_register("605.mcf_s", 605, ("_recursive_search", "_branchy_logic"), "spec2017",
          "vehicle scheduling network simplex", 4, 10)
_register("620.omnetpp_s", 620, ("_switch_dispatcher", "_string_utility"), "spec2017",
          "discrete event simulation", 6)
_register("623.xalancbmk_s", 623, ("_string_utility", "_switch_dispatcher"), "spec2017",
          "XSLT processor", 7)
_register("625.x264_s", 625, ("_numeric_kernel", "_branchy_logic"), "spec2017",
          "video encoder", 6)
_register("631.deepsjeng_s", 631, ("_recursive_search",), "spec2017",
          "alpha-beta tree search")
_register("641.leela_s", 641, ("_recursive_search", "_numeric_kernel"), "spec2017",
          "go engine with Monte-Carlo style search")
_register("648.exchange2_s", 648, ("_branchy_logic", "_recursive_search"), "spec2017",
          "puzzle generator")
_register("657.xz_s", 657, ("_branchy_logic", "_numeric_kernel"), "spec2017",
          "LZMA-style compression", 6)

# Utility suites.
_register("coreutils", 830, ("_string_utility", "_switch_dispatcher", "_branchy_logic"), "utils",
          "95 utilities statically linked into one binary (option dispatch + string code)", 8, 16)
_register("openssl", 111, ("_crypto_mixer", "_numeric_kernel"), "utils",
          "libcrypto-style cipher and big-number kernels", 7, 16)
