"""Benchmark suite registry.

Groups the workload corpus into the suites the paper reports on (Table 1,
Figure 5): SPECint 2006, SPECspeed 2017 Integer, Coreutils and OpenSSL.  The
paper drops five benchmarks with build errors (§5, footnote 2); the corpus
mirrors the per-compiler suite membership after those exclusions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.workloads.programs import PROGRAM_BUILDERS, WorkloadProgram

#: Suite name -> benchmark names (paper's dataset, §5 "Dataset").
SUITES: Dict[str, List[str]] = {
    "spec2006": [
        "400.perlbench",
        "401.bzip2",
        "429.mcf",
        "445.gobmk",
        "456.hmmer",
        "458.sjeng",
        "462.libquantum",
        "464.h264ref",
        "471.omnetpp",
        "473.astar",
        "483.xalancbmk",
    ],
    "spec2017": [
        "600.perlbench_s",
        "605.mcf_s",
        "620.omnetpp_s",
        "623.xalancbmk_s",
        "625.x264_s",
        "631.deepsjeng_s",
        "641.leela_s",
        "648.exchange2_s",
        "657.xz_s",
    ],
    "coreutils": ["coreutils"],
    "openssl": ["openssl"],
}

#: Benchmarks excluded per compiler because of build errors in the paper.
EXCLUDED: Dict[str, List[str]] = {
    "llvm": ["471.omnetpp"],
    "gcc": ["401.bzip2", "464.h264ref"],
}

BENCHMARKS: List[str] = [name for names in SUITES.values() for name in names]

_CACHE: Dict[str, WorkloadProgram] = {}


def benchmark(name: str) -> WorkloadProgram:
    """Build (and cache) the workload program for a benchmark name."""
    if name not in PROGRAM_BUILDERS:
        raise KeyError(f"unknown benchmark {name!r}")
    if name not in _CACHE:
        _CACHE[name] = PROGRAM_BUILDERS[name]()
    return _CACHE[name]


def suite_benchmarks(suite: str, compiler_family: str = "") -> List[WorkloadProgram]:
    """All workload programs of a suite, honouring per-compiler exclusions."""
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}")
    excluded = set(EXCLUDED.get(compiler_family, []))
    return [benchmark(name) for name in SUITES[suite] if name not in excluded]


def all_benchmarks(compiler_family: str = "") -> List[WorkloadProgram]:
    """The whole corpus for one compiler family."""
    out: List[WorkloadProgram] = []
    for suite in SUITES:
        out.extend(suite_benchmarks(suite, compiler_family))
    return out
