"""Binary diffing tools.

Re-implementations of the measurement side of the paper:

* :mod:`repro.difftools.ncd` — normalized compression distance, BinTuner's
  fitness function (§4.2);
* :mod:`repro.difftools.binhunt` — BinHunt's difference score (Appendix A),
  the paper's objective reference for Figures 5/6 and Tables 4/5/7/8;
* :mod:`repro.difftools.matchers` — the seven "prominent tools" compared in
  Figure 8 (Asm2Vec, INNEREYE, VulSeeker, IMF-SIM, CoP, Multi-MH, BinSlayer)
  plus a BinDiff-style statistical matcher;
* :mod:`repro.difftools.metrics` — Precision@1 and matched-ratio metrics.
"""

from repro.difftools.ncd import (
    ncd,
    ncd_images,
    compressed_size,
    JointCompressor,
    NCD_EXACT_ENV,
    NCDFitness,
    CachedNCDFitness,
)
from repro.difftools.binhunt import BinHunt, BinHuntResult
from repro.difftools.base import DiffTool, MatchResult
from repro.difftools.matchers import (
    BinDiffMatcher,
    BinSlayer,
    Asm2Vec,
    InnerEye,
    VulSeeker,
    IMFSim,
    CoP,
    MultiMH,
    ALL_TOOLS,
    make_tool,
)
from repro.difftools.metrics import precision_at_1, matched_ratios, MatchedRatios

__all__ = [
    "ncd",
    "ncd_images",
    "compressed_size",
    "JointCompressor",
    "NCD_EXACT_ENV",
    "NCDFitness",
    "CachedNCDFitness",
    "BinHunt",
    "BinHuntResult",
    "DiffTool",
    "MatchResult",
    "BinDiffMatcher",
    "BinSlayer",
    "Asm2Vec",
    "InnerEye",
    "VulSeeker",
    "IMFSim",
    "CoP",
    "MultiMH",
    "ALL_TOOLS",
    "make_tool",
    "precision_at_1",
    "matched_ratios",
    "MatchedRatios",
]
