"""Shared interface for binary diffing tools.

Every tool compares two recovered programs (typically a baseline ``-O0`` build
against an optimized/tuned build of the same source) and produces, for each
function of the source program, a ranked list of candidate functions in the
target program.  The evaluation harness turns those rankings into Precision@1
exactly as the paper does (§5.4): a function is counted as correctly matched
when its true counterpart (same symbol name, since both binaries come from the
same source) is the rank-1 candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.disassembler import RecoveredFunction, RecoveredProgram, disassemble
from repro.backend.binary import BinaryImage


@dataclass
class MatchResult:
    """Ranked candidates for every source function."""

    tool: str
    #: source function name -> list of (target function name, similarity score),
    #: sorted by decreasing similarity.
    rankings: Dict[str, List[Tuple[str, float]]] = field(default_factory=dict)

    def top_match(self, name: str) -> Optional[str]:
        candidates = self.rankings.get(name)
        if not candidates:
            return None
        return candidates[0][0]

    def matched_pairs(self) -> List[Tuple[str, str, float]]:
        out = []
        for name, candidates in self.rankings.items():
            if candidates:
                out.append((name, candidates[0][0], candidates[0][1]))
        return out


class DiffTool:
    """Base class for diffing tools."""

    name = "difftool"

    def compare(self, source: BinaryImage, target: BinaryImage) -> MatchResult:
        """Compare two binary images (convenience wrapper over programs)."""
        return self.compare_programs(disassemble(source), disassemble(target))

    def compare_programs(
        self, source: RecoveredProgram, target: RecoveredProgram
    ) -> MatchResult:
        result = MatchResult(tool=self.name)
        target_functions = list(target.functions.values())
        for name, function in source.functions.items():
            scored = [
                (candidate.name, self.function_similarity(function, candidate, source, target))
                for candidate in target_functions
            ]
            scored.sort(key=lambda item: (-item[1], item[0]))
            result.rankings[name] = scored
        return result

    def function_similarity(
        self,
        source_function: RecoveredFunction,
        target_function: RecoveredFunction,
        source: RecoveredProgram,
        target: RecoveredProgram,
    ) -> float:
        """Similarity in [0, 1]; higher means more similar.  Override me."""
        raise NotImplementedError
