"""BinHunt: semantic basic-block matching + graph matching difference score.

BinHunt (Gao et al., ICICS'08) matches functionally equivalent basic blocks
with symbolic execution and then finds the best CFG/call-graph correspondence
with a backtracking graph isomorphism.  The difference score (paper Appendix
A) is reproduced exactly:

1. basic-block matching score: 1.0 for functionally equivalent blocks using
   the same registers, 0.9 for equivalent blocks using different registers,
   0.0 otherwise;
2. CFG matching score: sum of matched block scores / min(|CFG1|, |CFG2|);
3. call-graph matching score: sum of matched CFG scores / min(|CG1|, |CG2|);
4. difference score: 1.0 - call-graph matching score.

Full symbolic equivalence checking is replaced by a *canonical semantic form*
of each block: the instruction sequence with literal register numbers either
kept (for the 1.0 tier) or abstracted away (for the 0.9 tier), and all
code-address operands dropped (they never survive relocation anyway).  This
captures what the optimization passes actually change — instruction selection,
scheduling and structure — which is the property the paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.disassembler import (
    RecoveredBlock,
    RecoveredFunction,
    RecoveredProgram,
    disassemble,
)
from repro.backend.binary import BinaryImage

#: Operand formats whose concrete values are code addresses / relative offsets.
_ADDRESS_OPERANDS = {"jmp": [0], "beqz": [1], "bnez": [1], "call": [0], "tcall": [0]}

#: Pure data-shuffling instructions that symbolic equivalence abstracts away:
#: stack-slot spills/reloads, register copies, frame management and padding.
#: Real BinHunt proves two blocks equivalent with symbolic execution, which is
#: insensitive to exactly this kind of instruction-selection noise.
_SHUFFLE_MNEMONICS = {"mov", "movis", "movi", "spadd", "nop", "leas"}

#: Mnemonics normalized to a common semantic operation so that different
#: instruction selections of the same computation still compare equal.
_OP_NORMALIZATION = {
    "addi": "add", "subi": "sub", "muli": "mul", "shli": "shl", "shri": "shr",
    "andi": "and", "ori": "or", "xori": "xor",
    "ldg": "ld", "stg": "st", "ldx": "ld", "stx": "st",
}


def canonical_block(block: RecoveredBlock, keep_registers: bool) -> Tuple:
    """The canonical semantic form of a basic block.

    The form keeps the block's *essential computation*: ALU operations,
    comparisons, non-stack memory traffic, calls and the terminator kind —
    dropping spills/reloads against the stack pointer, plain register copies
    and frame adjustments, which are artifacts of instruction selection rather
    than semantics.  With ``keep_registers`` the exact register numbers of the
    essential operations are preserved (BinHunt's 1.0 tier); without, registers
    are numbered by first appearance (the 0.9 tier).
    """
    canon: List[Tuple] = []
    register_alias: Dict[int, int] = {}

    def abstract_register(value: int) -> int:
        if keep_registers:
            return value
        if value not in register_alias:
            register_alias[value] = len(register_alias)
        return register_alias[value]

    for _, instr in block.instructions:
        if instr.name in _SHUFFLE_MNEMONICS:
            continue
        if instr.name in ("ld", "st") and 15 in instr.operands[:2]:
            # Stack-slot traffic (spills, local scalar slots) is register
            # allocation noise, not semantics.
            continue
        spec = instr.spec
        operands: List = []
        drop = _ADDRESS_OPERANDS.get(instr.name, [])
        for index, (fmt, operand) in enumerate(zip(spec.operands, instr.operands)):
            if index in drop:
                operands.append("@")
            elif fmt in ("r", "v"):
                operands.append(("reg", abstract_register(operand)))
            else:
                operands.append(("imm", operand))
        canon.append((_OP_NORMALIZATION.get(instr.name, instr.name), tuple(operands)))
    return tuple(canon)


def block_match_score(left: RecoveredBlock, right: RecoveredBlock) -> float:
    """BinHunt's per-block matching score (1.0 / 0.9 / 0.0)."""
    if canonical_block(left, keep_registers=True) == canonical_block(right, keep_registers=True):
        return 1.0
    if canonical_block(left, keep_registers=False) == canonical_block(right, keep_registers=False):
        return 0.9
    return 0.0


@dataclass
class FunctionMatch:
    """The block correspondence between two functions."""

    source: str
    target: str
    cfg_score: float
    block_pairs: List[Tuple[int, int, float]] = field(default_factory=list)

    @property
    def matched_block_count(self) -> int:
        return len(self.block_pairs)


@dataclass
class BinHuntResult:
    """The full comparison of two binaries."""

    difference_score: float
    call_graph_score: float
    function_matches: List[FunctionMatch] = field(default_factory=list)
    total_blocks: Tuple[int, int] = (0, 0)
    total_edges: Tuple[int, int] = (0, 0)
    total_functions: Tuple[int, int] = (0, 0)
    matched_blocks: int = 0
    matched_edges: int = 0
    matched_functions: int = 0

    def summary(self) -> Dict[str, float]:
        return {
            "difference": self.difference_score,
            "cg_score": self.call_graph_score,
            "matched_blocks": self.matched_blocks,
            "matched_edges": self.matched_edges,
            "matched_functions": self.matched_functions,
        }


class BinHunt:
    """Compute BinHunt difference scores between two binaries."""

    def __init__(self, function_match_threshold: float = 0.25, max_block_candidates: int = 512) -> None:
        self.function_match_threshold = function_match_threshold
        self.max_block_candidates = max_block_candidates
        # id(function) -> (function, (exact forms, abstract forms)); the
        # function reference pins the id against recycling.
        self._form_cache: Dict[int, Tuple["RecoveredFunction", Tuple]] = {}

    # -- block & CFG matching ---------------------------------------------------

    def _block_forms(self, function: RecoveredFunction):
        """Cached (exact form, abstract form) lists of a function's blocks.

        The cache entry keeps a strong reference to the function it was
        computed for: ``id()`` values are recycled once an object is garbage
        collected, so a bare ``id -> forms`` map can serve stale forms for a
        *different* function that happens to land on the same address.
        """
        key = id(function)
        cached = self._form_cache.get(key)
        if cached is not None and cached[0] is function:
            return cached[1]
        exact = [
            (start, canonical_block(block, keep_registers=True))
            for start, block in function.blocks.items()
        ]
        abstract = [
            (start, canonical_block(block, keep_registers=False))
            for start, block in function.blocks.items()
        ]
        forms = (exact, abstract)
        self._form_cache[key] = (function, forms)
        return forms

    def match_function_pair(
        self, source: RecoveredFunction, target: RecoveredFunction
    ) -> FunctionMatch:
        """Greedy block matching by canonical form (stand-in for the
        backtracking graph-isomorphism search): exact-register matches first
        (score 1.0), then register-abstracted matches (score 0.9)."""
        source_exact, source_abstract = self._block_forms(source)
        target_exact, target_abstract = self._block_forms(target)
        available_exact: Dict[Tuple, List[int]] = {}
        available_abstract: Dict[Tuple, List[int]] = {}
        for start, form in target_exact:
            available_exact.setdefault(form, []).append(start)
        for start, form in target_abstract:
            available_abstract.setdefault(form, []).append(start)
        used_target: set = set()
        pairs: List[Tuple[int, int, float]] = []
        total = 0.0
        abstract_by_start = dict(source_abstract)
        # Pass 1: exact matches (same computation, same registers).
        for start, form in source_exact:
            candidates = [t for t in available_exact.get(form, []) if t not in used_target]
            if candidates:
                chosen = candidates[0]
                used_target.add(chosen)
                pairs.append((start, chosen, 1.0))
                total += 1.0
        matched_sources = {start for start, _, _ in pairs}
        # Pass 2: register-abstracted matches.
        for start, form in source_abstract:
            if start in matched_sources:
                continue
            candidates = [t for t in available_abstract.get(form, []) if t not in used_target]
            if candidates:
                chosen = candidates[0]
                used_target.add(chosen)
                pairs.append((start, chosen, 0.9))
                total += 0.9
        denominator = min(len(source.blocks), len(target.blocks)) or 1
        cfg_score = min(total / denominator, 1.0)
        return FunctionMatch(
            source=source.name, target=target.name, cfg_score=cfg_score, block_pairs=pairs
        )

    def _matched_edges(
        self, source: RecoveredFunction, target: RecoveredFunction, match: FunctionMatch
    ) -> int:
        mapping = {s: t for s, t, _ in match.block_pairs}
        count = 0
        target_edges = {
            (start, successor)
            for start, block in target.blocks.items()
            for successor in block.successors
        }
        for start, block in source.blocks.items():
            for successor in block.successors:
                if (mapping.get(start), mapping.get(successor)) in target_edges:
                    count += 1
        return count

    # -- whole-binary comparison --------------------------------------------------

    def compare_programs(
        self, source: RecoveredProgram, target: RecoveredProgram
    ) -> BinHuntResult:
        # The form cache only pays off inside this call's O(n^2) pairing loop;
        # it is dropped on exit so the strong function references (which pin
        # ids against recycling) never outlive the comparison.
        try:
            return self._compare_programs(source, target)
        finally:
            self._form_cache.clear()

    def _compare_programs(
        self, source: RecoveredProgram, target: RecoveredProgram
    ) -> BinHuntResult:
        source_functions = list(source.functions.values())
        target_functions = list(target.functions.values())
        # Function pairing: evaluate candidate pairs, greedily keep the best.
        scored_pairs: List[Tuple[float, int, int, FunctionMatch]] = []
        for i, sfunc in enumerate(source_functions):
            for j, tfunc in enumerate(target_functions):
                # Cheap pre-filter: wildly different sizes rarely match.
                if max(sfunc.block_count, tfunc.block_count) > 4 * max(1, min(sfunc.block_count, tfunc.block_count)) + 8:
                    continue
                match = self.match_function_pair(sfunc, tfunc)
                if match.cfg_score > 0.0:
                    scored_pairs.append((match.cfg_score, i, j, match))
        scored_pairs.sort(key=lambda item: (-item[0], item[1], item[2]))
        used_source: set = set()
        used_target: set = set()
        matches: List[FunctionMatch] = []
        cg_total = 0.0
        matched_blocks = 0
        matched_edges = 0
        for score, i, j, match in scored_pairs:
            if i in used_source or j in used_target:
                continue
            used_source.add(i)
            used_target.add(j)
            matches.append(match)
            cg_total += score
            matched_blocks += match.matched_block_count
            matched_edges += self._matched_edges(source_functions[i], target_functions[j], match)
        denominator = min(len(source_functions), len(target_functions)) or 1
        cg_score = min(cg_total / denominator, 1.0)
        matched_functions = sum(
            1 for match in matches if match.cfg_score >= self.function_match_threshold
        )
        return BinHuntResult(
            difference_score=round(1.0 - cg_score, 6),
            call_graph_score=round(cg_score, 6),
            function_matches=matches,
            total_blocks=(source.total_blocks(), target.total_blocks()),
            total_edges=(source.total_edges(), target.total_edges()),
            total_functions=(len(source.functions), len(target.functions)),
            matched_blocks=matched_blocks,
            matched_edges=matched_edges,
            matched_functions=matched_functions,
        )

    def compare(self, source: BinaryImage, target: BinaryImage) -> BinHuntResult:
        return self.compare_programs(disassemble(source), disassemble(target))

    def difference(self, source: BinaryImage, target: BinaryImage) -> float:
        """Just the difference score (0.0 identical .. 1.0 unrelated)."""
        return self.compare(source, target).difference_score
