"""Evaluation metrics shared by the experiments.

* Precision@1 (§5.4): the fraction of source functions whose true counterpart
  (same symbol, since both binaries are built from the same source) is the
  rank-1 candidate reported by a diffing tool.
* Matched ratios (Tables 7/8): the fraction of basic blocks, CFG edges and
  functions that BinHunt still manages to match between two builds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.difftools.base import MatchResult
from repro.difftools.binhunt import BinHuntResult


def precision_at_1(
    result: MatchResult,
    ignore: Iterable[str] = (),
    min_candidates: int = 1,
) -> float:
    """Fraction of functions whose rank-1 candidate is the true counterpart."""
    ignored = set(ignore)
    total = 0
    correct = 0
    for name, candidates in result.rankings.items():
        if name in ignored or len(candidates) < min_candidates:
            continue
        total += 1
        if candidates and candidates[0][0] == name:
            correct += 1
    return correct / total if total else 0.0


def precision_at_k(result: MatchResult, k: int = 5, ignore: Iterable[str] = ()) -> float:
    """Fraction of functions whose true counterpart appears in the top-k."""
    ignored = set(ignore)
    total = 0
    hits = 0
    for name, candidates in result.rankings.items():
        if name in ignored:
            continue
        total += 1
        if name in {candidate for candidate, _ in candidates[:k]}:
            hits += 1
    return hits / total if total else 0.0


@dataclass
class MatchedRatios:
    """The (matched, total) ratios reported in the paper's Tables 7 and 8."""

    matched_blocks: int
    total_blocks: int
    matched_edges: int
    total_edges: int
    matched_functions: int
    total_functions: int

    @property
    def block_ratio(self) -> float:
        return self.matched_blocks / self.total_blocks if self.total_blocks else 0.0

    @property
    def edge_ratio(self) -> float:
        return self.matched_edges / self.total_edges if self.total_edges else 0.0

    @property
    def function_ratio(self) -> float:
        return self.matched_functions / self.total_functions if self.total_functions else 0.0

    def as_tuple_text(self) -> str:
        """The "(12K/30K, ...)" style cell used in the paper's appendix tables."""
        return (
            f"({self.matched_blocks}/{self.total_blocks}, "
            f"{self.matched_edges}/{self.total_edges}, "
            f"{self.matched_functions}/{self.total_functions})"
        )


def matched_ratios(result: BinHuntResult) -> MatchedRatios:
    """Extract Tables 7/8 style matched ratios from a BinHunt comparison."""
    total_blocks = max(result.total_blocks)
    total_edges = max(result.total_edges)
    total_functions = max(result.total_functions)
    return MatchedRatios(
        matched_blocks=result.matched_blocks,
        total_blocks=total_blocks,
        matched_edges=result.matched_edges,
        total_edges=total_edges,
        matched_functions=result.matched_functions,
        total_functions=total_functions,
    )
