"""The prominent binary diffing tools compared in the paper's Figure 8.

Each class re-implements the *core matching idea* of the corresponding tool on
top of the shared recovery substrate.  None of them looks at symbol names —
names are only used afterwards by the evaluation metrics as ground truth.

* :class:`BinDiffMatcher` — three-level statistical features (function, basic
  block, CFG/CG topology) with greedy matching, the industry-standard
  BinDiff approach (§2.3);
* :class:`BinSlayer`      — Hungarian-algorithm bipartite CFG matching over
  block features (Bourquin et al., PPREW'13);
* :class:`Asm2Vec`        — lexical embeddings of instruction token
  "sentences" per function (Ding et al., S&P'19), modelled with hashed
  token/bigram frequency vectors;
* :class:`InnerEye`       — basic-block embedding similarity (Zuo et al.,
  NDSS'19): functions match when their block embeddings align;
* :class:`VulSeeker`      — numeric CFG + DFG feature vectors per function
  (Gao et al., ASE'18);
* :class:`IMFSim`         — in-memory fuzzing: execute both functions on the
  same random arguments and compare observable results (Wang & Wu, ASE'17);
* :class:`CoP`            — basic-block semantic equivalence plus longest
  common subsequence of linearly independent paths (Luo et al., FSE'14);
* :class:`MultiMH`        — per-block input/output sampling signatures
  (Pewny et al., S&P'15), approximated by canonical block hashes.
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.analysis.disassembler import RecoveredBlock, RecoveredFunction, RecoveredProgram
from repro.analysis.emulator import EmulationError, run_function
from repro.analysis.features import extract_function_features, feature_distance
from repro.difftools.base import DiffTool, MatchResult
from repro.difftools.binhunt import block_match_score, canonical_block


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    denominator = float(np.linalg.norm(a) * np.linalg.norm(b))
    if denominator == 0.0:
        return 1.0 if np.array_equal(a, b) else 0.0
    return float(np.dot(a, b) / denominator)


# ---------------------------------------------------------------------------
# BinDiff-style statistical matcher
# ---------------------------------------------------------------------------


class BinDiffMatcher(DiffTool):
    """Three-level statistical feature matching in the style of BinDiff."""

    name = "bindiff"

    def function_similarity(self, source_function, target_function, source, target) -> float:
        sf = extract_function_features(source_function)
        tf = extract_function_features(target_function)
        # Primary signal: (blocks, edges, calls) triple, BinDiff's classic key.
        triple_s = (sf.values["blocks"], sf.values["edges"], sf.values["calls_out"])
        triple_t = (tf.values["blocks"], tf.values["edges"], tf.values["calls_out"])
        exact_bonus = 0.3 if triple_s == triple_t else 0.0
        similarity = 1.0 - feature_distance(sf, tf)
        return min(1.0, 0.7 * similarity + exact_bonus)


# ---------------------------------------------------------------------------
# BinSlayer
# ---------------------------------------------------------------------------


class BinSlayer(DiffTool):
    """Hungarian-algorithm bipartite matching of basic blocks."""

    name = "binslayer"

    def _block_vector(self, block: RecoveredBlock) -> np.ndarray:
        counts = Counter(instr.name for _, instr in block.instructions)
        keys = ["add", "sub", "mul", "ld", "st", "ldx", "stx", "call", "jmp", "beqz",
                "bnez", "cmpeq", "cmplt", "movi", "movis", "mov", "ret", "select", "syscall"]
        vector = np.array([counts.get(key, 0) for key in keys] + [len(block)], dtype=float)
        return vector

    def function_similarity(self, source_function, target_function, source, target) -> float:
        source_blocks = [self._block_vector(b) for b in source_function.blocks.values()]
        target_blocks = [self._block_vector(b) for b in target_function.blocks.values()]
        if not source_blocks or not target_blocks:
            return 0.0
        if len(source_blocks) * len(target_blocks) > 20000:
            # Guard against quadratic blowup on huge functions.
            source_blocks = source_blocks[:140]
            target_blocks = target_blocks[:140]
        cost = np.zeros((len(source_blocks), len(target_blocks)))
        for i, sv in enumerate(source_blocks):
            for j, tv in enumerate(target_blocks):
                cost[i, j] = 1.0 - _cosine(sv, tv)
        rows, cols = linear_sum_assignment(cost)
        matched_similarity = sum(1.0 - cost[r, c] for r, c in zip(rows, cols))
        # Normalize by the larger CFG so structural growth is penalized (graph
        # edit distance flavour).
        return matched_similarity / max(len(source_blocks), len(target_blocks))


# ---------------------------------------------------------------------------
# Asm2Vec
# ---------------------------------------------------------------------------


class Asm2Vec(DiffTool):
    """Lexical embedding of instruction token streams per function."""

    name = "asm2vec"
    dimensions = 128

    def _token_stream(self, function: RecoveredFunction) -> List[str]:
        tokens: List[str] = []
        for start in sorted(function.blocks):
            for _, instr in function.blocks[start].instructions:
                tokens.append(instr.name)
                for fmt, operand in zip(instr.spec.operands, instr.operands):
                    if fmt in ("r", "v"):
                        tokens.append(f"r{operand}")
                    elif abs(operand) < 4096:
                        tokens.append(f"#{operand}")
        return tokens

    def _embed(self, function: RecoveredFunction) -> np.ndarray:
        vector = np.zeros(self.dimensions)
        tokens = self._token_stream(function)
        for index, token in enumerate(tokens):
            slot = int(hashlib.blake2s(token.encode(), digest_size=4).hexdigest(), 16) % self.dimensions
            vector[slot] += 1.0
            if index + 1 < len(tokens):
                bigram = token + "|" + tokens[index + 1]
                slot = int(hashlib.blake2s(bigram.encode(), digest_size=4).hexdigest(), 16) % self.dimensions
                vector[slot] += 0.5
        return vector

    def function_similarity(self, source_function, target_function, source, target) -> float:
        return max(0.0, _cosine(self._embed(source_function), self._embed(target_function)))


# ---------------------------------------------------------------------------
# INNEREYE
# ---------------------------------------------------------------------------


class InnerEye(DiffTool):
    """Basic-block embedding alignment (neural machine translation analogy)."""

    name = "innereye"
    dimensions = 64

    def _block_embedding(self, block: RecoveredBlock) -> np.ndarray:
        vector = np.zeros(self.dimensions)
        for _, instr in block.instructions:
            token = instr.name
            slot = int(hashlib.blake2s(token.encode(), digest_size=4).hexdigest(), 16) % self.dimensions
            vector[slot] += 1.0
        return vector

    def function_similarity(self, source_function, target_function, source, target) -> float:
        source_blocks = [self._block_embedding(b) for b in source_function.blocks.values()]
        target_blocks = [self._block_embedding(b) for b in target_function.blocks.values()]
        if not source_blocks or not target_blocks:
            return 0.0
        total = 0.0
        for sv in source_blocks:
            total += max((_cosine(sv, tv) for tv in target_blocks), default=0.0)
        # Penalize block-count inflation (merged/split blocks lower the score).
        coverage = total / len(source_blocks)
        size_penalty = min(len(source_blocks), len(target_blocks)) / max(len(source_blocks), len(target_blocks))
        return coverage * (0.5 + 0.5 * size_penalty)


# ---------------------------------------------------------------------------
# VulSeeker
# ---------------------------------------------------------------------------


class VulSeeker(DiffTool):
    """CFG + data-flow numeric feature vectors per function."""

    name = "vulseeker"

    def _vector(self, function: RecoveredFunction) -> np.ndarray:
        features = extract_function_features(function)
        base = features.vector()
        # Add a crude data-flow dimension: counts of def-use instruction kinds.
        loads = features.values.get("mem", 0.0)
        moves = features.values.get("move", 0.0)
        arith = features.values.get("arith", 0.0)
        dfg = np.array([loads, moves, arith, loads + moves + arith])
        return np.concatenate([base, dfg])

    def function_similarity(self, source_function, target_function, source, target) -> float:
        return max(0.0, _cosine(self._vector(source_function), self._vector(target_function)))


# ---------------------------------------------------------------------------
# IMF-SIM
# ---------------------------------------------------------------------------


class IMFSim(DiffTool):
    """In-memory fuzzing: run both functions on shared random inputs."""

    name = "imf-sim"

    def __init__(self, samples: int = 6, seed: int = 1234, max_steps: int = 30_000) -> None:
        self.samples = samples
        self.seed = seed
        self.max_steps = max_steps
        self._behaviour_cache: Dict[Tuple[int, str], Tuple] = {}

    def compare_programs(self, source: RecoveredProgram, target: RecoveredProgram) -> MatchResult:
        # Pre-compute behaviour signatures once per function.
        self._behaviour_cache.clear()
        return super().compare_programs(source, target)

    def _argument_sets(self, arity_guess: int) -> List[List[int]]:
        rng = random.Random(self.seed)
        sets = []
        for _ in range(self.samples):
            sets.append([rng.randint(-64, 256) for _ in range(max(arity_guess, 1))])
        return sets

    def _behaviour(self, program: RecoveredProgram, function: RecoveredFunction) -> Tuple:
        key = (id(program), function.name)
        if key in self._behaviour_cache:
            return self._behaviour_cache[key]
        signature: List[Tuple] = []
        for args in self._argument_sets(3):
            try:
                result = run_function(program.image, function.name, args, max_steps=self.max_steps)
                signature.append((result.return_value % (1 << 32), len(result.output_text)))
            except EmulationError:
                signature.append(("fault", 0))
        behaviour = tuple(signature)
        self._behaviour_cache[key] = behaviour
        return behaviour

    def function_similarity(self, source_function, target_function, source, target) -> float:
        source_behaviour = self._behaviour(source, source_function)
        target_behaviour = self._behaviour(target, target_function)
        agreements = sum(1 for a, b in zip(source_behaviour, target_behaviour) if a == b)
        return agreements / max(len(source_behaviour), 1)


# ---------------------------------------------------------------------------
# CoP
# ---------------------------------------------------------------------------


class CoP(DiffTool):
    """Block-equivalence + longest common subsequence of block sequences."""

    name = "cop"

    def _block_sequence(self, function: RecoveredFunction) -> List[Tuple]:
        return [canonical_block(function.blocks[start], keep_registers=False)
                for start in sorted(function.blocks)]

    def function_similarity(self, source_function, target_function, source, target) -> float:
        left = self._block_sequence(source_function)
        right = self._block_sequence(target_function)
        if not left or not right:
            return 0.0
        if len(left) * len(right) > 40000:
            left, right = left[:200], right[:200]
        # Longest common subsequence over semantically equivalent blocks.
        previous = [0] * (len(right) + 1)
        for i in range(1, len(left) + 1):
            current = [0] * (len(right) + 1)
            for j in range(1, len(right) + 1):
                if left[i - 1] == right[j - 1]:
                    current[j] = previous[j - 1] + 1
                else:
                    current[j] = max(previous[j], current[j - 1])
            previous = current
        return previous[len(right)] / max(len(left), len(right))


# ---------------------------------------------------------------------------
# Multi-MH
# ---------------------------------------------------------------------------


class MultiMH(DiffTool):
    """Per-block I/O sampling signatures, approximated by canonical block hashes."""

    name = "multi-mh"

    def _signatures(self, function: RecoveredFunction) -> Counter:
        signatures: Counter = Counter()
        for block in function.blocks.values():
            digest = hashlib.blake2s(
                repr(canonical_block(block, keep_registers=False)).encode(), digest_size=8
            ).hexdigest()
            signatures[digest] += 1
        return signatures

    def function_similarity(self, source_function, target_function, source, target) -> float:
        source_signatures = self._signatures(source_function)
        target_signatures = self._signatures(target_function)
        if not source_signatures or not target_signatures:
            return 0.0
        intersection = sum((source_signatures & target_signatures).values())
        union = sum((source_signatures | target_signatures).values())
        return intersection / union if union else 0.0


#: Factory table used by the Figure 8 experiment.
ALL_TOOLS = {
    "BinDiff": BinDiffMatcher,
    "BinSlayer": BinSlayer,
    "Asm2Vec": Asm2Vec,
    "INNEREYE": InnerEye,
    "VulSeeker": VulSeeker,
    "IMF-SIM": IMFSim,
    "CoP": CoP,
    "Multi-MH": MultiMH,
}


def make_tool(name: str) -> DiffTool:
    """Instantiate a diffing tool by its display name."""
    try:
        return ALL_TOOLS[name]()
    except KeyError as exc:
        raise ValueError(f"unknown diffing tool {name!r}") from exc
