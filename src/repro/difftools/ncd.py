"""Normalized compression distance (NCD).

NCD(x, y) = (C(x·y) - min(C(x), C(y))) / max(C(x), C(y))

where C is the compressed length under a lossless compressor.  The paper uses
LZMA (§5, Experimental Setup); zlib and bz2 are provided for the compressor
ablation bench.  NCD over the ``.text`` sections of two binaries is BinTuner's
fitness function: cheap (no disassembly) yet correlated with BinHunt's
difference score (Appendix C).
"""

from __future__ import annotations

import bz2
import lzma
import zlib
from dataclasses import dataclass
from typing import Callable, Dict

from repro.backend.binary import BinaryImage

_COMPRESSORS: Dict[str, Callable[[bytes], bytes]] = {
    "lzma": lambda data: lzma.compress(data, preset=6),
    "zlib": lambda data: zlib.compress(data, 9),
    "bz2": lambda data: bz2.compress(data, 9),
}


def compressed_size(data: bytes, compressor: str = "lzma") -> int:
    """Length in bytes of ``data`` under the chosen compressor."""
    try:
        compress = _COMPRESSORS[compressor]
    except KeyError as exc:
        raise ValueError(f"unknown compressor {compressor!r}") from exc
    return len(compress(data))


def ncd(x: bytes, y: bytes, compressor: str = "lzma") -> float:
    """NCD between two byte strings (0.0 identical .. ~1.0 unrelated)."""
    if not x and not y:
        return 0.0
    c_x = compressed_size(x, compressor)
    c_y = compressed_size(y, compressor)
    c_xy = compressed_size(x + y, compressor)
    denominator = max(c_x, c_y)
    if denominator == 0:
        return 0.0
    value = (c_xy - min(c_x, c_y)) / denominator
    return max(0.0, min(value, 1.0))


def ncd_images(left: BinaryImage, right: BinaryImage, compressor: str = "lzma") -> float:
    """NCD over the code (.text) sections of two binaries."""
    return ncd(left.text, right.text, compressor)


@dataclass
class NCDFitness:
    """BinTuner fitness function: distance of a candidate from the baseline.

    The baseline is normally the ``-O0`` build (the paper measures every
    candidate against O0, §5.1).  Higher is fitter.
    """

    baseline: BinaryImage
    compressor: str = "lzma"

    def __call__(self, candidate: BinaryImage) -> float:
        return ncd_images(self.baseline, candidate, self.compressor)

    def name(self) -> str:
        return f"ncd-{self.compressor}"
