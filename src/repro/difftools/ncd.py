"""Normalized compression distance (NCD).

NCD(x, y) = (C(x·y) - min(C(x), C(y))) / max(C(x), C(y))

where C is the compressed length under a lossless compressor.  The paper uses
LZMA (§5, Experimental Setup); zlib and bz2 are provided for the compressor
ablation bench.  NCD over the ``.text`` sections of two binaries is BinTuner's
fitness function: cheap (no disassembly) yet correlated with BinHunt's
difference score (Appendix C).
"""

from __future__ import annotations

import bz2
import hashlib
import lzma
import os
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.backend.binary import BinaryImage

_COMPRESSORS: Dict[str, Callable[[bytes], bytes]] = {
    "lzma": lambda data: lzma.compress(data, preset=6),
    "zlib": lambda data: zlib.compress(data, 9),
    "bz2": lambda data: bz2.compress(data, 9),
}

#: Environment knob forcing every joint compression through the exact
#: one-shot ``C(prefix + suffix)`` path, disabling the incremental lane.
NCD_EXACT_ENV = "REPRO_NCD_EXACT"


def _exact_forced() -> bool:
    return os.environ.get(NCD_EXACT_ENV, "").strip().lower() in {"1", "true", "yes", "on"}


class JointCompressor:
    """``len(C(prefix + suffix))`` without recompressing ``prefix`` per call.

    Every joint compression of a tuning campaign shares the same prefix (the
    O0 baseline ``.text``), so the prefix's compression work is a loop
    invariant.  For **zlib**, deflate output is a pure function of the input
    byte stream and the compression parameters — chunk boundaries between
    ``compress()`` calls leave no trace in the output — so priming one
    ``zlib.compressobj`` with the prefix and ``copy()``-ing it per candidate
    yields totals byte-identical to ``zlib.compress(prefix + suffix, 9)``
    while paying only the suffix's compression.  **lzma** and **bz2** fall
    back to the exact one-shot path: CPython's ``lzma`` module exposes
    neither a compressor ``copy()`` nor a preset-dictionary filter, and
    ``bz2`` has no streaming-state clone either, so an incremental lane
    cannot be made bit-exact for them (and fingerprints embed these sizes
    via fitness values, so bit-exact is non-negotiable).

    :data:`NCD_EXACT_ENV` (``REPRO_NCD_EXACT=1``) forces the one-shot path
    for every compressor — the differential-testing escape hatch.
    """

    __slots__ = (
        "prefix",
        "compressor",
        "incremental_available",
        "incremental_joints",
        "exact_joints",
        "_compress",
        "_primed",
        "_primed_length",
    )

    def __init__(self, prefix: bytes, compressor: str = "lzma") -> None:
        try:
            self._compress = _COMPRESSORS[compressor]
        except KeyError as exc:
            raise ValueError(f"unknown compressor {compressor!r}") from exc
        self.prefix = prefix
        self.compressor = compressor
        self.incremental_joints = 0
        self.exact_joints = 0
        self._primed = None
        self._primed_length = 0
        if compressor == "zlib":
            primed = zlib.compressobj(9)
            self._primed_length = len(primed.compress(prefix))
            self._primed = primed
        self.incremental_available = self._primed is not None

    def joint_size(self, suffix: bytes) -> int:
        """Length of the joint compression ``C(prefix + suffix)``."""
        primed = self._primed
        if primed is not None and not _exact_forced():
            # compressobj.copy() snapshots the primed deflate state; the
            # clone is private to this call, so concurrent scorers only
            # contend on the (internally locked) copy itself.
            clone = primed.copy()
            self.incremental_joints += 1
            return self._primed_length + len(clone.compress(suffix)) + len(clone.flush())
        self.exact_joints += 1
        return len(self._compress(self.prefix + suffix))


def compressed_size(data: bytes, compressor: str = "lzma") -> int:
    """Length in bytes of ``data`` under the chosen compressor."""
    try:
        compress = _COMPRESSORS[compressor]
    except KeyError as exc:
        raise ValueError(f"unknown compressor {compressor!r}") from exc
    return len(compress(data))


def _ncd_from_sizes(c_x: int, c_y: int, c_xy: int) -> float:
    """The NCD formula over precomputed compressed sizes, clamped to [0, 1]."""
    denominator = max(c_x, c_y)
    if denominator == 0:
        return 0.0
    value = (c_xy - min(c_x, c_y)) / denominator
    return max(0.0, min(value, 1.0))


def ncd(x: bytes, y: bytes, compressor: str = "lzma") -> float:
    """NCD between two byte strings (0.0 identical .. ~1.0 unrelated)."""
    if not x and not y:
        return 0.0
    c_x = compressed_size(x, compressor)
    c_y = compressed_size(y, compressor)
    c_xy = compressed_size(x + y, compressor)
    return _ncd_from_sizes(c_x, c_y, c_xy)


def ncd_images(left: BinaryImage, right: BinaryImage, compressor: str = "lzma") -> float:
    """NCD over the code (.text) sections of two binaries."""
    return ncd(left.text, right.text, compressor)


@dataclass
class NCDFitness:
    """BinTuner fitness function: distance of a candidate from the baseline.

    The baseline is normally the ``-O0`` build (the paper measures every
    candidate against O0, §5.1).  Higher is fitter.
    """

    baseline: BinaryImage
    compressor: str = "lzma"

    def __call__(self, candidate: BinaryImage) -> float:
        return ncd_images(self.baseline, candidate, self.compressor)

    def name(self) -> str:
        return f"ncd-{self.compressor}"


@dataclass
class CachedNCDFitness:
    """Drop-in :class:`NCDFitness` that never recompresses the baseline.

    In a tuning run every candidate is measured against the *same* O0
    baseline, so ``C(baseline)`` is a constant that plain :func:`ncd`
    recomputes on every call.  This variant compresses the baseline ``.text``
    once, resolves the compressor callable once, routes the joint
    ``C(baseline || candidate)`` through a :class:`JointCompressor` (so under
    zlib only the candidate suffix is compressed), and keeps an LRU of
    results keyed by the candidate ``.text`` fingerprint — search strategies
    revisit binaries that map to identical code far more often than flag
    vectors repeat.  Returned values are bit-identical to
    :class:`NCDFitness`.
    """

    baseline: BinaryImage
    compressor: str = "lzma"
    max_entries: int = 4096
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self._materialize()

    def _materialize(self) -> None:
        try:
            self._compress = _COMPRESSORS[self.compressor]
        except KeyError as exc:
            raise ValueError(f"unknown compressor {self.compressor!r}") from exc
        self._baseline_text = self.baseline.text
        self._baseline_size = len(self._compress(self._baseline_text))
        self._joint = JointCompressor(self._baseline_text, self.compressor)
        self._cache: "OrderedDict[str, float]" = OrderedDict()
        # Thread mappers share one fitness across workers; the LRU's
        # get/move_to_end/popitem sequence is not atomic without this (a
        # concurrent eviction between get and move_to_end raises KeyError,
        # routinely so on free-threaded builds).  Compression itself runs
        # outside the lock.
        self._cache_lock = threading.Lock()

    # The resolved compressor is a module-level lambda and the cache is
    # per-process state; rebuild both after unpickling (e.g. in pool workers).
    def __getstate__(self):
        return {
            "baseline": self.baseline,
            "compressor": self.compressor,
            "max_entries": self.max_entries,
        }

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.hits = 0
        self.misses = 0
        self._materialize()

    def __call__(self, candidate: BinaryImage) -> float:
        return self.score_artifact(candidate)

    def score_artifact(
        self, candidate: BinaryImage, compressed_size: Optional[int] = None
    ) -> float:
        """Score ``candidate``, reusing a precomputed ``C(candidate .text)``.

        The staged pipeline's compile stage computes the candidate's own
        compressed size on its lane (and caches it with the image artifact),
        so scoring only pays the *joint* compression here.  Passing ``None``
        is the plain :meth:`__call__` path.  Values are bit-identical either
        way — the precomputed size is exactly what :meth:`_score` would have
        recomputed.
        """
        text = candidate.text
        key = hashlib.sha256(text).hexdigest()
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
        value = self._score(text, compressed_size)
        with self._cache_lock:
            self._cache[key] = value
            while len(self._cache) > self.max_entries:
                self._cache.popitem(last=False)
        return value

    def _score(self, text: bytes, compressed_size: Optional[int] = None) -> float:
        # Same contract as ncd(), with C(baseline) precomputed.
        if not self._baseline_text and not text:
            return 0.0
        c_y = len(self._compress(text)) if compressed_size is None else compressed_size
        c_xy = self._joint.joint_size(text)
        return _ncd_from_sizes(self._baseline_size, c_y, c_xy)

    @property
    def cache_hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def name(self) -> str:
        return f"ncd-{self.compressor}-cached"
