"""Optimization passes and the flag registry.

This package is the simulated analogue of GCC/LLVM's middle end.  Every pass
is gated by one or more named optimization flags (see :mod:`repro.opt.flags`);
the pass manager (:mod:`repro.opt.pass_manager`) turns a flag vector into a
concrete pass pipeline plus codegen options.  BinTuner's search space is the
space of these flag vectors.
"""

from repro.opt.flags import (
    Flag,
    FlagRegistry,
    FlagVector,
    GCC_FLAGS,
    LLVM_FLAGS,
    build_gcc_registry,
    build_llvm_registry,
)
from repro.opt.pass_manager import PassManager, PassPipeline, optimization_report
from repro.opt.scalar import (
    constant_fold_function,
    propagate_copies_function,
    eliminate_dead_code,
    common_subexpression_elimination,
    simplify_cfg,
    reorder_blocks,
)
from repro.opt.inline import inline_functions, tail_call_optimization
from repro.opt.loops import (
    unroll_loops,
    peel_loops,
    hoist_loop_invariants,
    vectorize_loops,
)
from repro.opt.ifconvert import if_convert
from repro.opt.strength import strength_reduce, expand_builtins, merge_constants

__all__ = [
    "Flag",
    "FlagRegistry",
    "FlagVector",
    "GCC_FLAGS",
    "LLVM_FLAGS",
    "build_gcc_registry",
    "build_llvm_registry",
    "PassManager",
    "PassPipeline",
    "optimization_report",
    "constant_fold_function",
    "propagate_copies_function",
    "eliminate_dead_code",
    "common_subexpression_elimination",
    "simplify_cfg",
    "reorder_blocks",
    "inline_functions",
    "tail_call_optimization",
    "unroll_loops",
    "peel_loops",
    "hoist_loop_invariants",
    "vectorize_loops",
    "if_convert",
    "strength_reduce",
    "expand_builtins",
    "merge_constants",
]
