"""Optimization flag registry, presets and constraints.

The registry is the *search space* BinTuner explores.  Each simulated compiler
(SimGCC, SimLLVM) exposes its own flag set; flag names follow the real
compilers where the simulated pass has a faithful counterpart (these are the
names that show up in the paper's Figure 7 potency tables).  Flags marked
``effect="none"`` are accepted but have no effect on the generated code — a
deliberate property of real flag spaces that the genetic algorithm must learn
to ignore.

Constraints come in two forms, mirroring §4.1 ("Constraints Verification"):

* ``requires``: flag A only has meaning when flag B is on (e.g. GCC's
  ``-fpartial-inlining`` requires ``-finline-functions``);
* ``conflicts``: flags A and B must not both be enabled.

The constraint engine that enforces these lives in
:mod:`repro.tuner.constraints`; this module only *declares* them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Flag:
    """One boolean optimization flag."""

    name: str
    description: str
    #: What the flag does in the simulated pipeline.  One of the pass keys
    #: understood by :class:`repro.opt.pass_manager.PassManager`, or "none".
    effect: str = "none"
    #: Optional parameter passed to the pass (e.g. an unroll factor).
    parameter: Optional[int] = None


@dataclass
class FlagRegistry:
    """All flags of one compiler plus presets and constraints."""

    compiler: str
    flags: List[Flag] = field(default_factory=list)
    #: (dependent, prerequisite) pairs: dependent requires prerequisite.
    requires: List[Tuple[str, str]] = field(default_factory=list)
    #: (a, b) pairs that must not be enabled together.
    conflicts: List[Tuple[str, str]] = field(default_factory=list)
    presets: Dict[str, FrozenSet[str]] = field(default_factory=dict)

    def flag_names(self) -> List[str]:
        return [flag.name for flag in self.flags]

    def flag(self, name: str) -> Flag:
        for flag in self.flags:
            if flag.name == name:
                return flag
        raise KeyError(name)

    def __len__(self) -> int:
        return len(self.flags)

    def preset(self, level: str) -> "FlagVector":
        if level not in self.presets:
            raise KeyError(f"unknown optimization level {level!r}")
        return FlagVector(self, frozenset(self.presets[level]))

    def effects(self, enabled: Iterable[str]) -> Dict[str, Optional[int]]:
        """Map of effect-key -> parameter for the enabled flags.

        Flags are visited in sorted order: ``enabled`` is usually a frozenset,
        and iterating it directly would make the last-writer-wins parameter
        resolution depend on the interpreter's hash seed — compiles must be
        identical across processes for parallel evaluation to be reproducible.
        """
        out: Dict[str, Optional[int]] = {}
        for name in sorted(enabled):
            flag = self.flag(name)
            if flag.effect != "none":
                out[flag.effect] = flag.parameter if flag.parameter is not None else out.get(flag.effect)
        return out


@dataclass(frozen=True)
class FlagVector:
    """An immutable selection of enabled flags over a registry."""

    registry: FlagRegistry
    enabled: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        unknown = self.enabled - set(self.registry.flag_names())
        if unknown:
            raise ValueError(f"unknown flags for {self.registry.compiler}: {sorted(unknown)}")

    def __contains__(self, name: str) -> bool:
        return name in self.enabled

    def __len__(self) -> int:
        return len(self.enabled)

    def with_flag(self, name: str, value: bool = True) -> "FlagVector":
        enabled = set(self.enabled)
        if value:
            enabled.add(name)
        else:
            enabled.discard(name)
        return FlagVector(self.registry, frozenset(enabled))

    def without(self, name: str) -> "FlagVector":
        return self.with_flag(name, False)

    def to_bits(self) -> List[int]:
        """Chromosome encoding: one bit per registry flag, in registry order."""
        return [1 if name in self.enabled else 0 for name in self.registry.flag_names()]

    @classmethod
    def from_bits(cls, registry: FlagRegistry, bits: Sequence[int]) -> "FlagVector":
        names = registry.flag_names()
        if len(bits) != len(names):
            raise ValueError(f"expected {len(names)} bits, got {len(bits)}")
        return cls(registry, frozenset(name for name, bit in zip(names, bits) if bit))

    def jaccard(self, other: "FlagVector") -> float:
        """Jaccard index |A ∩ B| / |A ∪ B| (used in the paper's Figure 7)."""
        union = self.enabled | other.enabled
        if not union:
            return 1.0
        return len(self.enabled & other.enabled) / len(union)

    def sorted_names(self) -> List[str]:
        return sorted(self.enabled)

    def __str__(self) -> str:
        return " ".join(self.sorted_names()) or "<no flags>"


# ---------------------------------------------------------------------------
# SimGCC flag set
# ---------------------------------------------------------------------------

GCC_FLAGS: List[Flag] = [
    # Codegen quality / register allocation.
    Flag("-fregister-allocation", "keep temporaries in registers instead of stack slots", "regalloc"),
    Flag("-fomit-frame-pointer", "do not keep a frame pointer (minor layout change)", "none"),
    Flag("-fcombine-stack-adjustments", "merge consecutive stack pointer adjustments", "peephole2"),
    # Scalar optimizations.
    Flag("-ftree-ccp", "conditional constant propagation", "constfold"),
    Flag("-ftree-dce", "dead code elimination", "dce"),
    Flag("-fforward-propagate", "forward copy/constant propagation", "copyprop"),
    Flag("-fgcse", "global (block-local here) common subexpression elimination", "cse"),
    Flag("-fcse-follow-jumps", "extend CSE across jumps", "cse"),
    Flag("-fthread-jumps", "thread trivial jump chains", "simplifycfg"),
    Flag("-fcrossjumping", "merge identical code across jumps", "simplifycfg"),
    Flag("-fexpensive-optimizations", "enable the costlier scalar rewrites", "strength"),
    Flag("-fstrength-reduce", "rewrite multiplications into shift/add sequences", "strength"),
    Flag("-fpeephole2", "machine-level peephole optimization", "peephole2"),
    # Inlining family.
    Flag("-finline-functions", "inline any sufficiently small function", "inline"),
    Flag("-finline-small-functions", "inline only very small functions", "inline_small"),
    Flag("-fpartial-inlining", "inline parts of functions (modelled as extra inlining)", "inline"),
    Flag("-findirect-inlining", "inline indirect calls discovered by analysis", "none"),
    Flag("-fipa-cp", "interprocedural constant propagation", "constfold"),
    Flag("-fipa-icf", "identical code folding", "none"),
    Flag("-foptimize-sibling-calls", "turn tail calls into jumps", "tailcall"),
    # Loop family.
    Flag("-fmove-loop-invariants", "hoist loop-invariant code", "licm"),
    Flag("-funroll-loops", "unroll loops", "unroll"),
    Flag("-funroll-all-loops", "unroll every loop, even with unknown trip count", "unroll_aggressive"),
    Flag("-floop-unroll-and-jam", "unroll outer loops and fuse the copies", "unroll_aggressive"),
    Flag("-fpeel-loops", "peel the first iterations of loops", "peel"),
    Flag("-funswitch-loops", "move invariant conditionals out of loops", "peel"),
    Flag("-ftree-loop-distribute-patterns", "turn loop patterns into library calls / stores", "builtin_expand"),
    Flag("-ftree-vectorize", "auto-vectorize loops", "vectorize"),
    Flag("-ftree-loop-vectorize", "loop vectorization (part of tree-vectorize)", "vectorize"),
    Flag("-ftree-slp-vectorize", "superword-level parallelism vectorization", "vectorize"),
    Flag("-fsplit-loops", "split loops on invariant conditions", "peel"),
    Flag("-fbranch-count-reg", "use counter registers for loop branches", "none"),
    Flag("-fivopts", "induction variable optimizations", "none"),
    # Control-flow / layout family.
    Flag("-fif-conversion", "convert branches into branch-free code", "ifconvert"),
    Flag("-fif-conversion2", "second if-conversion sweep", "ifconvert"),
    Flag("-fjump-tables", "lower dense switches through jump tables", "jump_tables"),
    Flag("-freorder-blocks", "reorder basic blocks for locality", "reorder_blocks"),
    Flag("-freorder-blocks-and-partition", "split hot/cold blocks into sections", "reorder_blocks_cold"),
    Flag("-freorder-functions", "reorder functions in the image", "reorder_functions"),
    Flag("-fguess-branch-probability", "static branch probability estimation", "reorder_blocks"),
    Flag("-falign-functions", "align function entry points", "align_functions"),
    Flag("-falign-loops", "align loop headers", "align_loops"),
    Flag("-falign-jumps", "align branch targets", "align_loops"),
    Flag("-falign-labels", "align all labels", "align_loops"),
    # Data / builtin family.
    Flag("-fmerge-constants", "merge identical constants", "merge_constants"),
    Flag("-fmerge-all-constants", "merge identical constants and variables", "merge_constants"),
    Flag("-fbuiltin", "expand library builtins inline", "builtin_expand"),
    Flag("-fdelete-null-pointer-checks", "assume dereferenced pointers are non-null", "none"),
    Flag("-fwrapv", "assume signed overflow wraps", "none"),
    Flag("-fstrict-aliasing", "enable type-based alias analysis", "none"),
    Flag("-fdefer-pop", "defer popping call arguments", "none"),
    Flag("-fconserve-stack", "minimize stack usage at the cost of speed", "none"),
    Flag("-fcaller-saves", "save registers around calls when profitable", "none"),
    Flag("-fsched-pressure", "register-pressure-aware scheduling", "none"),
    Flag("-fshrink-wrap", "emit prologues only on paths that need them", "none"),
    Flag("-fhoist-adjacent-loads", "hoist adjacent loads above branches", "ifconvert"),
    Flag("-fsplit-wide-types", "split wide types into independent registers", "none"),
    Flag("-ftree-ter", "temporary expression replacement", "copyprop"),
    Flag("-ftree-sra", "scalar replacement of aggregates", "none"),
    Flag("-ftree-pre", "partial redundancy elimination", "cse"),
    Flag("-ftree-switch-conversion", "convert switches into linear expressions", "jump_tables"),
    # Flags outside every -Ox preset (the paper stresses that -O3 covers less
    # than half of the available option space).
    Flag("-frename-registers", "rename registers after allocation", "none"),
    Flag("-flive-range-shrinkage", "shrink live ranges before allocation", "none"),
    Flag("-ftracer", "tail-duplicate hot paths", "peel"),
    Flag("-fgcse-after-reload", "run CSE again after register allocation", "cse"),
    Flag("-fsched2-use-superblocks", "schedule across basic blocks", "reorder_blocks"),
    Flag("-fipa-pta", "interprocedural points-to analysis", "none"),
    Flag("-fsection-anchors", "access data through section anchors", "none"),
    Flag("-fdata-sections", "place each datum in its own section", "none"),
    Flag("-ffunction-sections", "place each function in its own section", "reorder_functions"),
    Flag("-fsplit-paths", "split paths leading to loop back edges", "peel"),
    Flag("-fvariable-expansion-in-unroller", "expand accumulators while unrolling", "none"),
    Flag("-fprefetch-loop-arrays", "emit prefetches for array loops", "none"),
]

GCC_REQUIRES = [
    ("-fpartial-inlining", "-finline-functions"),
    ("-funroll-all-loops", "-funroll-loops"),
    ("-floop-unroll-and-jam", "-funroll-loops"),
    ("-ftree-loop-vectorize", "-ftree-vectorize"),
    ("-ftree-slp-vectorize", "-ftree-vectorize"),
    ("-freorder-blocks-and-partition", "-freorder-blocks"),
    ("-fif-conversion2", "-fif-conversion"),
    ("-fcse-follow-jumps", "-fgcse"),
    ("-fmerge-all-constants", "-fmerge-constants"),
    ("-fipa-cp", "-ftree-ccp"),
    ("-findirect-inlining", "-finline-functions"),
]

GCC_CONFLICTS = [
    ("-fconserve-stack", "-falign-functions"),
    ("-fconserve-stack", "-falign-loops"),
    ("-fconserve-stack", "-funroll-all-loops"),
    ("-freorder-blocks-and-partition", "-falign-labels"),
    ("-fwrapv", "-fstrict-aliasing"),
]

_GCC_O1 = {
    "-fregister-allocation",
    "-ftree-ccp",
    "-ftree-dce",
    "-fforward-propagate",
    "-fthread-jumps",
    "-ftree-ter",
    "-fcombine-stack-adjustments",
    "-fomit-frame-pointer",
    "-fdefer-pop",
    "-fguess-branch-probability",
    "-fif-conversion",
    "-fif-conversion2",
}
_GCC_O2 = _GCC_O1 | {
    "-fgcse",
    "-fcse-follow-jumps",
    "-fcrossjumping",
    "-fexpensive-optimizations",
    "-fstrength-reduce",
    "-fpeephole2",
    "-finline-small-functions",
    "-foptimize-sibling-calls",
    "-fmove-loop-invariants",
    "-freorder-blocks",
    "-freorder-functions",
    "-fjump-tables",
    "-falign-functions",
    "-falign-loops",
    "-falign-jumps",
    "-fmerge-constants",
    "-ftree-pre",
    "-ftree-switch-conversion",
    "-fipa-cp",
    "-fivopts",
    "-fstrict-aliasing",
    "-fbuiltin",
    "-fhoist-adjacent-loads",
    "-fcaller-saves",
    "-fshrink-wrap",
}
_GCC_O3 = _GCC_O2 | {
    "-finline-functions",
    "-fpartial-inlining",
    "-ftree-vectorize",
    "-ftree-loop-vectorize",
    "-ftree-slp-vectorize",
    "-ftree-loop-distribute-patterns",
    "-fpeel-loops",
    "-funswitch-loops",
    "-fsplit-loops",
}
_GCC_OS = (_GCC_O2 - {"-falign-functions", "-falign-loops", "-falign-jumps"}) | {
    "-fconserve-stack",
}

GCC_PRESETS = {
    "O0": frozenset(),
    "O1": frozenset(_GCC_O1),
    "O2": frozenset(_GCC_O2),
    "O3": frozenset(_GCC_O3),
    "Os": frozenset(_GCC_OS),
}


# ---------------------------------------------------------------------------
# SimLLVM flag set
# ---------------------------------------------------------------------------

LLVM_FLAGS: List[Flag] = [
    Flag("-mem2reg", "promote stack slots to registers", "regalloc"),
    Flag("-sccp", "sparse conditional constant propagation", "constfold"),
    Flag("-adce", "aggressive dead code elimination", "dce"),
    Flag("-dce", "dead code elimination", "dce"),
    Flag("-instcombine", "combine and simplify instructions", "copyprop"),
    Flag("-early-cse", "early common subexpression elimination", "cse"),
    Flag("-gvn", "global value numbering", "cse"),
    Flag("-reassociate", "reassociate expressions", "constfold"),
    Flag("-simplifycfg", "simplify the control-flow graph", "simplifycfg"),
    Flag("-jump-threading", "thread conditional jumps", "simplifycfg"),
    Flag("-peephole", "machine-level peephole optimization", "peephole2"),
    Flag("-finline-functions", "inline any sufficiently small function", "inline"),
    Flag("-finline-hint-functions", "inline functions marked inline", "inline_small"),
    Flag("-fpartial-inlining", "partial inlining", "inline"),
    Flag("-fno-escaping-block-tail-calls", "allow tail-call lowering of block tails", "tailcall"),
    Flag("-tailcallelim", "eliminate tail calls", "tailcall"),
    Flag("-licm", "loop-invariant code motion", "licm"),
    Flag("-loop-rotate", "rotate loops into do-while form", "peel"),
    Flag("-loop-unswitch", "unswitch loops on invariant conditions", "peel"),
    Flag("-funroll-loops", "unroll loops", "unroll"),
    Flag("-loop-unroll-and-jam", "unroll outer loops and fuse the copies", "unroll_aggressive"),
    Flag("-floop-unroll-full", "fully unroll loops with constant trip counts", "unroll_aggressive"),
    Flag("-fvectorize", "loop vectorization", "vectorize"),
    Flag("-ftree-vectorize", "auto-vectorization umbrella flag", "vectorize"),
    Flag("-fslp-vectorize", "superword-level parallelism vectorization", "vectorize"),
    Flag("-fjump-tables", "lower dense switches through jump tables", "jump_tables"),
    Flag("-switch-to-lookup", "convert switches into lookup tables", "jump_tables"),
    Flag("-fif-convert", "convert branches into select instructions", "ifconvert"),
    Flag("-speculate-cmov", "speculate conditional moves", "ifconvert"),
    Flag("-fstrength-reduce", "strength-reduce multiplications", "strength"),
    Flag("-fexpand-builtins", "expand library builtins inline", "builtin_expand"),
    Flag("-fmerge-all-constants", "merge identical constants and variables", "merge_constants"),
    Flag("-fmerge-constants", "merge identical constants", "merge_constants"),
    Flag("-freorder-blocks", "reorder basic blocks", "reorder_blocks"),
    Flag("-block-placement", "machine block placement", "reorder_blocks_cold"),
    Flag("-freorder-functions", "reorder functions in the image", "reorder_functions"),
    Flag("-falign-functions", "align function entry points", "align_functions"),
    Flag("-falign-loops", "align loop headers", "align_loops"),
    Flag("-mlong-calls", "use register-indirect long call sequences", "none"),
    Flag("-mstackrealign", "realign the stack in every prologue", "stack_realign"),
    Flag("-fwrapv", "assume signed overflow wraps", "none"),
    Flag("-freg-struct-return", "return small structs in registers", "none"),
    Flag("-fpcc-struct-return", "return structs in memory (PCC-compatible)", "none"),
    Flag("-fstrict-return", "assume functions always return through a return", "none"),
    Flag("-fomit-frame-pointer", "do not keep a frame pointer", "none"),
    Flag("-fstrict-aliasing", "enable type-based alias analysis", "none"),
    Flag("-fstack-protector-off", "disable stack canaries", "none"),
    Flag("-fassociative-math", "allow reassociation of arithmetic", "constfold"),
    Flag("-memcpyopt", "optimize memcpy/memset patterns", "builtin_expand"),
    Flag("-sink", "sink instructions closer to their uses", "none"),
    Flag("-lower-expect", "lower llvm.expect intrinsics", "none"),
    Flag("-indvars", "canonicalize induction variables", "none"),
]

LLVM_REQUIRES = [
    ("-fpartial-inlining", "-finline-functions"),
    ("-loop-unroll-and-jam", "-funroll-loops"),
    ("-floop-unroll-full", "-funroll-loops"),
    ("-fslp-vectorize", "-fvectorize"),
    ("-ftree-vectorize", "-fvectorize"),
    ("-switch-to-lookup", "-fjump-tables"),
    ("-speculate-cmov", "-fif-convert"),
    ("-gvn", "-early-cse"),
    ("-block-placement", "-freorder-blocks"),
    ("-fmerge-all-constants", "-fmerge-constants"),
]

LLVM_CONFLICTS = [
    ("-freg-struct-return", "-fpcc-struct-return"),
    ("-fwrapv", "-fstrict-aliasing"),
    ("-mstackrealign", "-fomit-frame-pointer"),
    ("-fassociative-math", "-fwrapv"),
]

_LLVM_O1 = {
    "-mem2reg",
    "-sccp",
    "-dce",
    "-instcombine",
    "-simplifycfg",
    "-early-cse",
    "-fomit-frame-pointer",
    "-lower-expect",
}
_LLVM_O2 = _LLVM_O1 | {
    "-gvn",
    "-adce",
    "-reassociate",
    "-jump-threading",
    "-peephole",
    "-finline-hint-functions",
    "-tailcallelim",
    "-licm",
    "-loop-rotate",
    "-indvars",
    "-fjump-tables",
    "-switch-to-lookup",
    "-fif-convert",
    "-fstrength-reduce",
    "-fmerge-constants",
    "-freorder-blocks",
    "-block-placement",
    "-falign-functions",
    "-fstrict-aliasing",
    "-fvectorize",
    "-fslp-vectorize",
    "-memcpyopt",
    "-sink",
}
_LLVM_O3 = _LLVM_O2 | {
    "-finline-functions",
    "-fpartial-inlining",
    "-funroll-loops",
    "-floop-unroll-full",
    "-ftree-vectorize",
    "-loop-unswitch",
    "-falign-loops",
}
_LLVM_OS = (_LLVM_O2 - {"-falign-functions", "-funroll-loops"}) | set()

LLVM_PRESETS = {
    "O0": frozenset(),
    "O1": frozenset(_LLVM_O1),
    "O2": frozenset(_LLVM_O2),
    "O3": frozenset(_LLVM_O3),
    "Os": frozenset(_LLVM_OS),
}


def build_gcc_registry() -> FlagRegistry:
    """The SimGCC 10.2 flag space."""
    return FlagRegistry(
        compiler="simgcc-10.2",
        flags=list(GCC_FLAGS),
        requires=list(GCC_REQUIRES),
        conflicts=list(GCC_CONFLICTS),
        presets=dict(GCC_PRESETS),
    )


def build_llvm_registry() -> FlagRegistry:
    """The SimLLVM 11.0 flag space."""
    return FlagRegistry(
        compiler="simllvm-11.0",
        flags=list(LLVM_FLAGS),
        requires=list(LLVM_REQUIRES),
        conflicts=list(LLVM_CONFLICTS),
        presets=dict(LLVM_PRESETS),
    )
