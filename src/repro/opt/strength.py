"""Strength reduction, builtin expansion, constant merging.

These passes change the *semantic-level* appearance of code (paper §3.2):

* multiplication by constants is decomposed into shift/add sequences (the
  "Hacker's Delight" style rewrites both GCC and LLVM apply);
* calls to ``strcpy``/``strlen``/``memset`` with constant arguments are
  expanded inline into store sequences (GCC's builtin expansion, Fig. 3(d));
* identical constant global objects are merged (``-fmerge-all-constants``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import BinOp, Call, Move, StoreIndex
from repro.ir.values import ConstInt, SymbolRef, Temp, Value  # noqa: F401  (Temp/Value used in resolve helpers)


def _shift_add_decomposition(constant: int) -> Optional[List[Tuple[str, int]]]:
    """Decompose multiplication by ``constant`` into at most three shift terms.

    Returns a list of (op, shift) where op is "add" or "sub"; e.g. ``10`` ->
    ``[("add", 3), ("add", 1)]`` meaning ``(x << 3) + (x << 1)``, and ``15`` ->
    ``[("add", 4), ("sub", 0)]`` meaning ``(x << 4) - x``.
    """
    if constant <= 0:
        return None
    # Plain power of two.
    if constant & (constant - 1) == 0:
        return [("add", constant.bit_length() - 1)]
    set_bits = [i for i in range(constant.bit_length()) if constant >> i & 1]
    if len(set_bits) <= 3:
        return [("add", shift) for shift in reversed(set_bits)]
    # 2^k - 2^j form (e.g. 15 = 16 - 1, 24 = 32 - 8).
    for high in range(constant.bit_length(), constant.bit_length() + 2):
        difference = (1 << high) - constant
        if difference > 0 and difference & (difference - 1) == 0:
            return [("add", high), ("sub", difference.bit_length() - 1)]
    return None


def strength_reduce(function: IRFunction) -> int:
    """Rewrite multiplications by constants into shift/add sequences."""
    rewrites = 0
    for block in function.blocks.values():
        new_instructions = []
        for instr in block.instructions:
            if (
                isinstance(instr, BinOp)
                and instr.op == "mul"
                and isinstance(instr.rhs, ConstInt)
                and instr.rhs.value > 2
            ):
                decomposition = _shift_add_decomposition(instr.rhs.value)
                if decomposition is not None and len(decomposition) >= 1:
                    rewrites += 1
                    source = instr.lhs
                    accumulator: Optional[Temp] = None
                    for op, shift in decomposition:
                        shifted = function.new_temp("sr")
                        new_instructions.append(BinOp(shifted, "shl", source, ConstInt(shift)))
                        if accumulator is None:
                            accumulator = shifted
                        else:
                            combined = function.new_temp("sr")
                            new_instructions.append(BinOp(combined, op, accumulator, shifted))
                            accumulator = combined
                    new_instructions.append(Move(instr.dest, accumulator))
                    continue
            new_instructions.append(instr)
        block.instructions = new_instructions
    return rewrites


def expand_builtins(module: IRModule, max_expansion: int = 32) -> int:
    """Expand ``strcpy``/``strlen``/``memset`` calls with constant arguments.

    ``strcpy(buf, "...")`` becomes a sequence of per-character stores and
    ``strlen("...")`` becomes a constant, mirroring GCC's builtin handling.
    """
    expanded = 0
    string_globals = {
        name: data for name, data in module.globals.items() if data.is_string
    }
    for function in module.functions.values():
        # String literals reach calls through a Move of the symbol into a temp;
        # resolve those copies so constant arguments are recognized.
        symbol_copies: Dict[str, SymbolRef] = {}
        for instr in function.instructions():
            if isinstance(instr, Move) and isinstance(instr.src, SymbolRef):
                symbol_copies[instr.dest.name] = instr.src

        def resolve(value: Value) -> Value:
            if isinstance(value, Temp) and value.name in symbol_copies:
                return symbol_copies[value.name]
            return value

        for block in function.blocks.values():
            new_instructions = []
            for instr in block.instructions:
                if isinstance(instr, Call) and instr.callee == "strcpy" and len(instr.args) == 2:
                    destination, source = instr.args[0], resolve(instr.args[1])
                    if isinstance(source, SymbolRef) and source.name in string_globals:
                        data = string_globals[source.name]
                        if len(data.init) <= max_expansion:
                            for index, char in enumerate(data.init):
                                new_instructions.append(
                                    StoreIndex(destination, ConstInt(index), ConstInt(char))
                                )
                            if instr.dest is not None:
                                new_instructions.append(Move(instr.dest, destination))
                            expanded += 1
                            continue
                if isinstance(instr, Call) and instr.callee == "strlen" and len(instr.args) == 1:
                    source = resolve(instr.args[0])
                    if isinstance(source, SymbolRef) and source.name in string_globals:
                        length = max(len(string_globals[source.name].init) - 1, 0)
                        if instr.dest is not None:
                            new_instructions.append(Move(instr.dest, ConstInt(length)))
                        expanded += 1
                        continue
                if (
                    isinstance(instr, Call)
                    and instr.callee == "memset"
                    and len(instr.args) == 3
                    and isinstance(instr.args[2], ConstInt)
                    and 0 < instr.args[2].value <= max_expansion
                ):
                    destination, value, count = instr.args
                    for index in range(count.value):
                        new_instructions.append(StoreIndex(destination, ConstInt(index), value))
                    if instr.dest is not None:
                        new_instructions.append(Move(instr.dest, destination))
                    expanded += 1
                    continue
                new_instructions.append(instr)
            block.instructions = new_instructions
    return expanded


def merge_constants(module: IRModule) -> int:
    """Merge identical constant globals and rewrite references."""
    merged = 0
    canonical: Dict[Tuple, str] = {}
    replacements: Dict[str, str] = {}
    for name, data in list(module.globals.items()):
        if not data.is_const:
            continue
        key = (tuple(data.init), data.size)
        if key in canonical:
            replacements[name] = canonical[key]
            del module.globals[name]
            merged += 1
        else:
            canonical[key] = name
    if not replacements:
        return 0
    substitution = {SymbolRef(old): SymbolRef(new) for old, new in replacements.items()}
    for function in module.functions.values():
        for block in function.blocks.values():
            for instr in block.instructions:
                instr.replace_uses(substitution)
                if hasattr(instr, "var") and getattr(instr, "var") in replacements:
                    instr.var = replacements[instr.var]  # type: ignore[attr-defined]
    return merged


def reorder_functions(module: IRModule, strategy: str = "size") -> int:
    """Reorder function layout (``-freorder-functions``)."""
    names = list(module.functions)
    if strategy == "size":
        order = sorted(names, key=lambda n: module.functions[n].instruction_count())
    elif strategy == "callees_first":
        # Leaf functions first, then callers (approximate bottom-up order).
        order = sorted(
            names,
            key=lambda n: (len(module.functions[n].called_functions()), names.index(n)),
        )
    else:
        order = list(reversed(names))
    if order == names:
        return 0
    module.reorder_functions(order)
    return 1


def align_loop_headers(module: IRModule, alignment: int = 8) -> int:
    """Request byte alignment on loop header blocks (``-falign-loops``)."""
    from repro.ir import cfg as _cfg

    aligned = 0
    for function in module.functions.values():
        for loop in _cfg.natural_loops(function):
            block = function.blocks.get(loop.header)
            if block is not None and block.align < alignment:
                block.align = alignment
                aligned += 1
    return aligned
