"""Pass manager: flag vector -> concrete optimization pipeline.

The :class:`PassManager` interprets an enabled-flag set against the fixed
phase ordering below (inter-procedural passes first, then loop passes, then
scalar cleanup and layout), runs the IR passes over a module clone, and
derives the :class:`repro.backend.codegen.CodegenOptions` that the backend
should use.  It is shared by both simulated compilers; the compiler drivers
only differ in their flag registries, default thresholds and a few codegen
personality knobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.backend.codegen import CodegenOptions
from repro.ir.function import IRModule
from repro.ir.verifier import verify_module
from repro.opt.flags import FlagRegistry, FlagVector
from repro.opt.ifconvert import if_convert_module
from repro.opt.inline import inline_functions, tail_call_optimization
from repro.opt.loops import (
    hoist_loop_invariants,
    module_loop_pass,
    peel_loops,
    unroll_loops,
    vectorize_loops,
)
from repro.opt.scalar import (
    common_subexpression_elimination,
    constant_fold_function,
    eliminate_dead_code,
    propagate_copies_function,
    reorder_blocks,
    simplify_cfg,
)
from repro.opt.strength import (
    align_loop_headers,
    expand_builtins,
    merge_constants,
    reorder_functions,
    strength_reduce,
)


@dataclass
class PassPipeline:
    """The resolved plan: which IR passes run, and with what codegen options."""

    ir_passes: List[str] = field(default_factory=list)
    codegen: CodegenOptions = field(default_factory=CodegenOptions)
    pass_statistics: Dict[str, int] = field(default_factory=dict)


def _per_function(module: IRModule, fn) -> int:
    return sum(fn(function) for function in module.functions.values())


class PassManager:
    """Applies the pipeline implied by a flag vector to an IR module."""

    def __init__(
        self,
        registry: FlagRegistry,
        inline_threshold: int = 120,
        small_inline_threshold: int = 30,
        unroll_full_threshold: int = 8,
        unroll_factor: int = 2,
        verify_each_stage: bool = False,
    ) -> None:
        self.registry = registry
        self.inline_threshold = inline_threshold
        self.small_inline_threshold = small_inline_threshold
        self.unroll_full_threshold = unroll_full_threshold
        self.unroll_factor = unroll_factor
        self.verify_each_stage = verify_each_stage

    # -- plan -----------------------------------------------------------------

    def plan(self, flags: FlagVector) -> PassPipeline:
        """Resolve a flag vector into a pipeline description (no execution)."""
        effects = self.registry.effects(flags.enabled)
        pipeline = PassPipeline()
        order = [
            "builtin_expand",
            "inline",
            "inline_small",
            "constfold",
            "copyprop",
            "cse",
            "dce",
            "tailcall",
            "licm",
            "peel",
            "unroll",
            "unroll_aggressive",
            "vectorize",
            "ifconvert",
            "strength",
            "simplifycfg",
            "merge_constants",
            "reorder_blocks",
            "reorder_blocks_cold",
            "align_loops",
            "reorder_functions",
        ]
        pipeline.ir_passes = [key for key in order if key in effects]
        pipeline.codegen = self._codegen_options(effects)
        return pipeline

    def _codegen_options(self, effects: Dict[str, Optional[int]]) -> CodegenOptions:
        options = CodegenOptions(
            regalloc="regalloc" in effects,
            short_immediates="regalloc" in effects,
            offset_addressing="regalloc" in effects,
            use_jump_tables="jump_tables" in effects,
            switch_binary_search=True,
            machine_peephole="peephole2" in effects,
            align_functions=16 if "align_functions" in effects else 1,
            align_loop_headers="align_loops" in effects,
            enable_tail_calls="tailcall" in effects,
        )
        if "stack_realign" in effects:
            options.align_functions = max(options.align_functions, 8)
        return options

    # -- run -------------------------------------------------------------------

    def run(self, module: IRModule, flags: FlagVector, clone: bool = True) -> IRModule:
        """Apply the IR pipeline for ``flags`` to ``module`` (clone by default)."""
        target = module.clone() if clone else module
        effects = self.registry.effects(flags.enabled)
        statistics: Dict[str, int] = {}

        def record(name: str, count: int) -> None:
            if count:
                statistics[name] = statistics.get(name, 0) + count
            if self.verify_each_stage:
                verify_module(target)

        if "builtin_expand" in effects:
            record("builtin_expand", expand_builtins(target))
        if "inline" in effects:
            record(
                "inline",
                inline_functions(target, max_instructions=self.inline_threshold),
            )
        elif "inline_small" in effects:
            record(
                "inline_small",
                inline_functions(
                    target,
                    small_only=True,
                    small_threshold=self.small_inline_threshold,
                ),
            )
        if "constfold" in effects:
            record("constfold", _per_function(target, constant_fold_function))
        if "copyprop" in effects:
            record("copyprop", _per_function(target, propagate_copies_function))
            record("constfold", _per_function(target, constant_fold_function))
        if "cse" in effects:
            record("cse", _per_function(target, common_subexpression_elimination))
        if "dce" in effects:
            record("dce", _per_function(target, eliminate_dead_code))
        if "tailcall" in effects:
            record("tailcall", tail_call_optimization(target))
        if "licm" in effects:
            record("licm", module_loop_pass(target, hoist_loop_invariants))
        if "peel" in effects:
            record("peel", module_loop_pass(target, peel_loops))
        if "unroll" in effects or "unroll_aggressive" in effects:
            aggressive = "unroll_aggressive" in effects
            record(
                "unroll",
                module_loop_pass(
                    target,
                    unroll_loops,
                    full_threshold=self.unroll_full_threshold * (2 if aggressive else 1),
                    partial_factor=self.unroll_factor * (2 if aggressive else 1),
                    allow_partial=True,
                ),
            )
        if "vectorize" in effects:
            record("vectorize", module_loop_pass(target, vectorize_loops))
        if "ifconvert" in effects:
            record("ifconvert", if_convert_module(target))
        if "strength" in effects:
            record("strength", _per_function(target, strength_reduce))
        # Cleanup after the structural passes so dead remnants do not linger.
        if "dce" in effects or "constfold" in effects:
            record("cleanup_fold", _per_function(target, constant_fold_function))
            record("cleanup_dce", _per_function(target, eliminate_dead_code))
        if "simplifycfg" in effects:
            record("simplifycfg", _per_function(target, simplify_cfg))
        if "merge_constants" in effects:
            record("merge_constants", merge_constants(target))
        if "reorder_blocks_cold" in effects:
            record(
                "reorder_blocks_cold",
                _per_function(target, lambda fn: reorder_blocks(fn, "cold_last")),
            )
        elif "reorder_blocks" in effects:
            record("reorder_blocks", _per_function(target, lambda fn: reorder_blocks(fn, "rpo")))
        if "align_loops" in effects:
            record("align_loops", align_loop_headers(target))
        if "reorder_functions" in effects:
            record("reorder_functions", reorder_functions(target))

        verify_module(target)
        target_pipeline = self.plan(flags)
        target_pipeline.pass_statistics = statistics
        # Stash the statistics on the module for callers that want a report.
        setattr(target, "_last_pass_statistics", statistics)
        return target

    def codegen_options(self, flags: FlagVector) -> CodegenOptions:
        return self._codegen_options(self.registry.effects(flags.enabled))


def optimization_report(module: IRModule) -> Dict[str, int]:
    """Pass statistics recorded by the most recent PassManager.run call."""
    return dict(getattr(module, "_last_pass_statistics", {}))
