"""Loop transformations: unrolling, peeling, invariant hoisting, vectorization.

All passes operate on the canonical loop shape produced by the frontend's
``for``/``while`` lowering:

* a *header* (condition) block of the form
  ``t = load i; c = cmp t, bound; br c, body, exit``
* a single *body* block ending in a jump to the *step* block (or directly back
  to the header for ``while`` loops),
* an optional *step* block ``i = i (+|-)= constant`` jumping back to the header.

Loops that already lost this shape (because earlier passes rewrote them) are
left untouched, which mirrors how real loop passes bail out on non-canonical
regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir import cfg
from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import (
    BinOp,
    Branch,
    Call,
    Jump,
    LoadIndex,
    LoadVar,
    Move,
    StoreIndex,
    StoreVar,
    VecBinOp,
    VecLoad,
    VecStore,
)
from repro.ir.values import ConstInt, Temp, Value
from repro.opt.cloning import clone_blocks


@dataclass
class CountedLoop:
    """A recognized counted loop ``for (i = start; i <cmp> bound; i += step)``."""

    header: str
    body: str
    step_block: Optional[str]
    exit: str
    counter: str
    compare_op: str
    bound: Value
    step: int
    start: Optional[int]  # known constant initial value, if any
    #: scalar variable the bound was loaded from in the header, if any
    bound_var: Optional[str] = None


def _single_body_loops(function: IRFunction) -> List[CountedLoop]:
    """Find canonical counted loops with a single body block."""
    loops: List[CountedLoop] = []
    preds = cfg.predecessors_map(function)
    for loop in cfg.natural_loops(function):
        header = function.blocks.get(loop.header)
        if header is None:
            continue
        # Header: load counter, [load bound,] compare, conditional branch.
        instructions = header.instructions
        bound_var: Optional[str] = None
        if len(instructions) == 3:
            load, compare, branch = instructions
        elif len(instructions) == 4:
            load, bound_load, compare, branch = instructions
            if not (
                isinstance(bound_load, LoadVar)
                and isinstance(compare, BinOp)
                and isinstance(compare.rhs, Temp)
                and compare.rhs.name == bound_load.dest.name
            ):
                continue
            bound_var = bound_load.var
        else:
            continue
        if not (isinstance(load, LoadVar) and isinstance(compare, BinOp) and isinstance(branch, Branch)):
            continue
        if compare.op not in ("lt", "le", "gt", "ge", "ne"):
            continue
        if not (isinstance(compare.lhs, Temp) and compare.lhs.name == load.dest.name):
            continue
        body_label = branch.true_label
        exit_label = branch.false_label
        if body_label not in loop.blocks or exit_label in loop.blocks:
            continue
        loop_members = loop.blocks - {loop.header}
        if len(loop_members) == 1:
            body_label_only = next(iter(loop_members))
            body = function.blocks[body_label_only]
            step_label: Optional[str] = None
            step_value = None
            # while-style: body jumps straight back to the header and the
            # counter update lives inside the body.
            terminator = body.terminator
            if not isinstance(terminator, Jump) or terminator.label != loop.header:
                continue
            step_value, counter_ok = _trailing_counter_update(body, load.var)
            if not counter_ok:
                continue
            loops.append(
                CountedLoop(
                    header=loop.header,
                    body=body_label_only,
                    step_block=None,
                    exit=exit_label,
                    counter=load.var,
                    compare_op=compare.op,
                    bound=compare.rhs,
                    step=step_value,
                    start=_constant_initial_value(function, loop.header, load.var, preds, loop),
                    bound_var=bound_var,
                )
            )
        elif len(loop_members) == 2:
            # for-style: body -> step -> header.
            body_label2 = branch.true_label
            if body_label2 not in loop_members:
                continue
            body = function.blocks[body_label2]
            terminator = body.terminator
            if not isinstance(terminator, Jump):
                continue
            step_label = terminator.label
            if step_label not in loop_members or step_label == body_label2:
                continue
            step_block = function.blocks[step_label]
            step_terminator = step_block.terminator
            if not isinstance(step_terminator, Jump) or step_terminator.label != loop.header:
                continue
            step_value, counter_ok = _trailing_counter_update(step_block, load.var)
            if not counter_ok:
                continue
            loops.append(
                CountedLoop(
                    header=loop.header,
                    body=body_label2,
                    step_block=step_label,
                    exit=exit_label,
                    counter=load.var,
                    compare_op=compare.op,
                    bound=compare.rhs,
                    step=step_value,
                    start=_constant_initial_value(function, loop.header, load.var, preds, loop),
                    bound_var=bound_var,
                )
            )
    return loops


def _trailing_counter_update(block, counter: str) -> Tuple[int, bool]:
    """Check the block updates ``counter`` by a constant exactly once."""
    update = 0
    count = 0
    instructions = block.body
    for index, instr in enumerate(instructions):
        if isinstance(instr, StoreVar) and instr.var == counter:
            count += 1
            # Expect: t1 = load counter ; t2 = add t1, C ; store counter, t2
            if index >= 1 and isinstance(instructions[index - 1], BinOp):
                binop = instructions[index - 1]
                if (
                    binop.op in ("add", "sub")
                    and isinstance(binop.rhs, ConstInt)
                    and isinstance(instr.value, Temp)
                    and instr.value.name == binop.dest.name
                ):
                    delta = binop.rhs.value if binop.op == "add" else -binop.rhs.value
                    update = delta
                    continue
            return 0, False
    if count != 1 or update == 0:
        return 0, False
    return update, True


def _constant_initial_value(function, header, counter, preds, loop) -> Optional[int]:
    """The counter's constant value on loop entry, if provable."""
    entries = [p for p in preds.get(header, []) if p not in loop.blocks]
    if len(entries) != 1:
        return None
    block = function.blocks[entries[0]]
    value: Optional[int] = None
    for instr in block.instructions:
        if isinstance(instr, StoreVar) and instr.var == counter:
            value = instr.value.value if isinstance(instr.value, ConstInt) else None
    return value


def _trip_count(loop: CountedLoop) -> Optional[int]:
    if loop.start is None or not isinstance(loop.bound, ConstInt):
        return None
    bound = loop.bound.value
    start = loop.start
    step = loop.step
    if step == 0:
        return None
    if loop.compare_op == "lt" and step > 0:
        count = max(0, -(-(bound - start) // step)) if bound > start else 0
    elif loop.compare_op == "le" and step > 0:
        count = max(0, (bound - start) // step + 1) if bound >= start else 0
    elif loop.compare_op == "gt" and step < 0:
        count = max(0, -(-(start - bound) // -step)) if start > bound else 0
    elif loop.compare_op == "ge" and step < 0:
        count = max(0, (start - bound) // -step + 1) if start >= bound else 0
    else:
        return None
    return count


# ---------------------------------------------------------------------------
# Unrolling and peeling
# ---------------------------------------------------------------------------


def unroll_loops(
    function: IRFunction,
    full_threshold: int = 8,
    partial_factor: int = 2,
    max_body_instructions: int = 40,
    allow_partial: bool = True,
) -> int:
    """Fully unroll small constant-trip-count loops; otherwise duplicate the
    body ``partial_factor`` times inside the loop (keeping intermediate exit
    tests, so the transformation is always safe).  Returns #loops changed."""
    changed = 0
    for loop in _single_body_loops(function):
        body = function.blocks.get(loop.body)
        header = function.blocks.get(loop.header)
        if body is None or header is None:
            continue
        if len(body.instructions) > max_body_instructions:
            continue
        trip = _trip_count(loop)
        if trip is not None and 0 < trip <= full_threshold:
            _fully_unroll(function, loop, trip)
            changed += 1
        elif allow_partial and partial_factor > 1:
            if _partially_unroll(function, loop, partial_factor):
                changed += 1
    return changed


def _loop_body_labels(loop: CountedLoop) -> List[str]:
    labels = [loop.body]
    if loop.step_block:
        labels.append(loop.step_block)
    return labels


def _fully_unroll(function: IRFunction, loop: CountedLoop, trip: int) -> None:
    """Replace the whole loop with ``trip`` chained copies of its body."""
    labels = _loop_body_labels(loop)
    chain_entry: Optional[str] = None
    previous_tail: Optional[str] = None
    for iteration in range(trip):
        label_map, new_blocks = clone_blocks(function, labels, f"unroll{iteration}")
        first = label_map[labels[0]]
        last_label = label_map[labels[-1]]
        last_block = function.blocks[last_label]
        # The copy's jump back to the header becomes a fallthrough to the next
        # copy (patched on the following iteration) or to the exit.
        if isinstance(last_block.terminator, Jump):
            last_block.instructions[-1] = Jump(loop.exit)
        if chain_entry is None:
            chain_entry = first
        if previous_tail is not None:
            tail_block = function.blocks[previous_tail]
            if isinstance(tail_block.terminator, Jump):
                tail_block.instructions[-1] = Jump(first)
        previous_tail = last_label
    # Redirect every entry into the old header to the first copy; the header's
    # original compare is no longer needed.
    header_block = function.blocks[loop.header]
    header_block.instructions = [Jump(chain_entry if chain_entry else loop.exit)]
    # Remove the original body/step blocks (now unreachable).
    for label in labels:
        if label in function.blocks:
            function.remove_block(label)


def _partially_unroll(function: IRFunction, loop: CountedLoop, factor: int) -> bool:
    """Duplicate header+body inside the loop ``factor-1`` extra times."""
    labels = [loop.header] + _loop_body_labels(loop)
    previous_back_source = function.blocks[_loop_body_labels(loop)[-1]]
    for copy in range(factor - 1):
        label_map, _ = clone_blocks(function, labels, f"pu{copy}")
        # Previous copy's back edge now targets the cloned header.
        if isinstance(previous_back_source.terminator, Jump):
            previous_back_source.instructions[-1] = Jump(label_map[loop.header])
        else:
            return False
        cloned_tail_label = label_map[_loop_body_labels(loop)[-1]]
        previous_back_source = function.blocks[cloned_tail_label]
    # Close the loop: the last copy branches back to the original header.
    if isinstance(previous_back_source.terminator, Jump):
        previous_back_source.instructions[-1] = Jump(loop.header)
    return True


def peel_loops(function: IRFunction, iterations: int = 1) -> int:
    """Peel the first iteration(s) of canonical loops (``-fpeel-loops``)."""
    changed = 0
    for loop in _single_body_loops(function):
        preds = cfg.predecessors_map(function)
        entries = [p for p in preds.get(loop.header, []) if p not in (_loop_body_labels(loop) + [loop.header])]
        if len(entries) != 1:
            continue
        entry_block = function.blocks[entries[0]]
        labels = [loop.header] + _loop_body_labels(loop)
        label_map, new_blocks = clone_blocks(function, labels, "peel")
        # The peeled copy's back edge continues into the original loop header.
        tail = function.blocks[label_map[labels[-1]]]
        if isinstance(tail.terminator, Jump):
            tail.instructions[-1] = Jump(loop.header)
        # Entry now flows into the peeled header copy.
        terminator = entry_block.terminator
        if terminator is not None:
            terminator.retarget({loop.header: label_map[loop.header]})
        changed += 1
    return changed


# ---------------------------------------------------------------------------
# Loop-invariant code motion
# ---------------------------------------------------------------------------


def hoist_loop_invariants(function: IRFunction) -> int:
    """Hoist pure, loop-invariant computations into a preheader block."""
    hoisted = 0
    for loop in _single_body_loops(function):
        body = function.blocks.get(loop.body)
        if body is None:
            continue
        preds = cfg.predecessors_map(function)
        entries = [p for p in preds.get(loop.header, []) if p not in (_loop_body_labels(loop) + [loop.header])]
        if len(entries) != 1:
            continue
        stored_vars = {
            instr.var
            for label in [loop.body] + ([loop.step_block] if loop.step_block else [])
            for instr in function.blocks[label].instructions
            if isinstance(instr, StoreVar)
        }
        has_calls = any(
            isinstance(instr, Call) for instr in body.instructions
        )
        invariant: List = []
        invariant_temps = set()
        for instr in body.body:
            if isinstance(instr, LoadVar) and instr.var not in stored_vars and not has_calls:
                if instr.var in function.locals or not has_calls:
                    invariant.append(instr)
                    invariant_temps.add(instr.dest.name)
                    continue
            if isinstance(instr, (BinOp, Move)) and not instr.has_side_effects:
                if isinstance(instr, BinOp) and instr.op in ("div", "mod"):
                    # Hoisting a division could trap on a zero divisor that the
                    # loop guard was protecting against.
                    continue
                operands = instr.uses()
                if all(
                    isinstance(op, ConstInt)
                    or (isinstance(op, Temp) and op.name in invariant_temps)
                    for op in operands
                ):
                    invariant.append(instr)
                    for temp in instr.defs():
                        invariant_temps.add(temp.name)
        if not invariant:
            continue
        # Create a preheader between the entry and the loop header.
        preheader_label = function.new_label(f"{loop.header}.pre")
        preheader = function.blocks.get(preheader_label)
        if preheader is None:
            preheader = function.add_block(preheader_label)
        for instr in invariant:
            body.instructions.remove(instr)
            preheader.append(instr)
        preheader.append(Jump(loop.header))
        entry_terminator = function.blocks[entries[0]].terminator
        if entry_terminator is not None:
            entry_terminator.retarget({loop.header: preheader_label})
        hoisted += len(invariant)
    return hoisted


# ---------------------------------------------------------------------------
# Loop vectorization
# ---------------------------------------------------------------------------


def vectorize_loops(function: IRFunction, width: int = 4) -> int:
    """Vectorize element-wise array loops: ``c[i] = a[i] OP b[i]``.

    The loop is rewritten into a vector loop processing ``width`` elements per
    iteration followed by the original scalar loop as the remainder handler —
    the classic strip-mining shape, and exactly the kind of transformation
    shown in the paper's Figure 3(c).
    """
    vectorized = 0
    for loop in _single_body_loops(function):
        if loop.step != 1 or loop.compare_op != "lt":
            continue
        if isinstance(loop.bound, Temp) and loop.bound_var is None:
            # The bound temporary is defined inside the header and would not
            # dominate the new vector header; bail out.
            continue
        body = function.blocks.get(loop.body)
        header = function.blocks.get(loop.header)
        if body is None or header is None:
            continue
        pattern = _match_elementwise_body(body, loop)
        if pattern is None:
            continue
        load_a, load_b, binop, store_c = pattern
        if binop.op not in ("add", "sub", "mul"):
            continue
        preds = cfg.predecessors_map(function)
        entries = [p for p in preds.get(loop.header, []) if p not in (_loop_body_labels(loop) + [loop.header])]
        if len(entries) != 1:
            continue
        entry_block = function.blocks[entries[0]]

        vheader_label = function.new_label("vec.cond")
        vbody_label = function.new_label("vec.body")
        vheader = function.add_block(vheader_label)
        vbody = function.add_block(vbody_label)

        # Vector header: continue while i + width <= bound.
        counter_temp = function.new_temp("vi")
        limit_temp = function.new_temp("vl")
        cond_temp = function.new_temp("vc")
        vheader.append(LoadVar(counter_temp, loop.counter))
        vheader.append(BinOp(limit_temp, "add", counter_temp, ConstInt(width)))
        bound_value = loop.bound
        if isinstance(loop.bound, Temp) and loop.bound_var is not None:
            bound_value = function.new_temp("vbnd")
            vheader.append(LoadVar(bound_value, loop.bound_var))
        vheader.append(BinOp(cond_temp, "le", limit_temp, bound_value))
        vheader.append(Branch(cond_temp, vbody_label, loop.header))

        # Vector body: vload, vop, vstore, i += width.
        index_temp = function.new_temp("vx")
        vec_a = function.new_temp("va")
        vec_b = function.new_temp("vb")
        vec_r = function.new_temp("vr")
        next_temp = function.new_temp("vn")
        vbody.append(LoadVar(index_temp, loop.counter))
        base_a = _rematerialize_base(function, vbody, body, load_a.base)
        vbody.append(VecLoad(vec_a, base_a, index_temp, width))
        base_b = _rematerialize_base(function, vbody, body, load_b.base)
        vbody.append(VecLoad(vec_b, base_b, index_temp, width))
        vbody.append(VecBinOp(vec_r, binop.op, vec_a, vec_b, width))
        base_c = _rematerialize_base(function, vbody, body, store_c.base)
        vbody.append(VecStore(base_c, index_temp, vec_r, width))
        vbody.append(BinOp(next_temp, "add", index_temp, ConstInt(width)))
        vbody.append(StoreVar(loop.counter, next_temp))
        vbody.append(Jump(vheader_label))

        # Entry flows into the vector loop; its exit is the scalar loop header.
        entry_terminator = entry_block.terminator
        if entry_terminator is not None:
            entry_terminator.retarget({loop.header: vheader_label})
        vectorized += 1
    return vectorized


def _match_elementwise_body(body, loop: CountedLoop):
    """Match a body of the exact shape a[i] OP b[i] -> c[i] (plus counter update)."""
    loads: List[LoadIndex] = []
    stores: List[StoreIndex] = []
    binops: List[BinOp] = []
    index_temps = set()
    for instr in body.body:
        if isinstance(instr, LoadVar) and instr.var == loop.counter:
            index_temps.add(instr.dest.name)
        elif isinstance(instr, LoadVar):
            return None
        elif isinstance(instr, LoadIndex):
            loads.append(instr)
        elif isinstance(instr, StoreIndex):
            stores.append(instr)
        elif isinstance(instr, BinOp):
            binops.append(instr)
        elif isinstance(instr, StoreVar):
            if instr.var != loop.counter:
                return None
        elif isinstance(instr, Move):
            continue
        elif type(instr).__name__ == "AddrOf":
            continue
        elif isinstance(instr, (Jump, Branch)):
            continue
        else:
            return None
    if len(loads) != 2 or len(stores) != 1:
        return None
    # Apart from the matched element-wise operation, the only arithmetic
    # allowed is the counter update (a BinOp with a constant operand).
    for candidate in binops:
        if isinstance(candidate.rhs, ConstInt) or isinstance(candidate.lhs, ConstInt):
            continue
        if not (
            isinstance(candidate.lhs, Temp)
            and isinstance(candidate.rhs, Temp)
            and candidate.lhs.name in {loads[0].dest.name, loads[1].dest.name}
            and candidate.rhs.name in {loads[0].dest.name, loads[1].dest.name}
        ):
            return None
    arithmetic = [b for b in binops if b.op in ("add", "sub", "mul")
                  and isinstance(b.lhs, Temp) and isinstance(b.rhs, Temp)
                  and b.lhs.name in {loads[0].dest.name, loads[1].dest.name}
                  and b.rhs.name in {loads[0].dest.name, loads[1].dest.name}]
    if len(arithmetic) != 1:
        return None
    binop = arithmetic[0]
    store = stores[0]
    if not (isinstance(store.value, Temp) and store.value.name == binop.dest.name):
        return None
    # All indices must be the loop counter.
    def uses_counter(value: Value) -> bool:
        return isinstance(value, Temp) and value.name in index_temps

    if not (uses_counter(loads[0].index) and uses_counter(loads[1].index) and uses_counter(store.index)):
        return None
    return loads[0], loads[1], binop, store


def _rematerialize_base(function: IRFunction, target_block, source_block, base: Value) -> Value:
    """Recompute an array base address inside the vector body."""
    if not isinstance(base, Temp):
        return base
    for instr in source_block.instructions:
        if instr.defs() and instr.defs()[0].name == base.name:
            clone = instr.clone()
            new_temp = function.new_temp("vbase")
            clone.dest = new_temp  # type: ignore[attr-defined]
            target_block.append(clone)
            return new_temp
    return base


def module_loop_pass(module: IRModule, pass_fn, **kwargs) -> int:
    """Apply a per-function loop pass across a module."""
    return sum(pass_fn(fn, **kwargs) for fn in module.functions.values())
