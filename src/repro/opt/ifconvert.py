"""If-conversion: turn small branches into branch-free ``Select`` code.

This implements the "branch-free code" family of optimizations the paper
illustrates in Figure 2(b): diamonds (and half-diamonds) whose arms only store
one value into one scalar slot collapse into a conditional-move, merging three
or four basic blocks into one and erasing a CFG edge pair — exactly the effect
that breaks 1-to-1 basic-block matching in CoP/Multi-MH-style tools.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir import cfg
from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import Branch, Jump, LoadVar, Select, StoreVar
from repro.ir.values import Value


def _arm_single_store(function: IRFunction, label: str, join: str) -> Optional[Tuple[str, Value, int]]:
    """If ``label`` is a block that only stores one scalar then jumps to ``join``,
    return (variable, value, instruction count)."""
    block = function.blocks.get(label)
    if block is None:
        return None
    terminator = block.terminator
    if not isinstance(terminator, Jump) or terminator.label != join:
        return None
    body = block.body
    stores = [instr for instr in body if isinstance(instr, StoreVar)]
    if len(stores) != 1:
        return None
    store = stores[0]
    # Any other instructions must be pure value computations feeding the store.
    # Divisions are excluded: they become speculative after conversion and a
    # zero divisor the branch was guarding against would then trap.
    from repro.ir.instructions import BinOp

    for instr in body:
        if instr is store:
            continue
        if instr.has_side_effects or instr.is_terminator:
            return None
        if isinstance(instr, BinOp) and instr.op in ("div", "mod"):
            return None
    return store.var, store.value, len(body)


def if_convert(function: IRFunction, max_arm_instructions: int = 6) -> int:
    """Convert diamond/triangle branches over a single scalar into ``Select``."""
    converted = 0
    changed = True
    while changed:
        changed = False
        preds = cfg.predecessors_map(function)
        for label in list(function.blocks):
            block = function.blocks.get(label)
            if block is None:
                continue
            terminator = block.terminator
            if not isinstance(terminator, Branch):
                continue
            true_label, false_label = terminator.true_label, terminator.false_label
            if true_label == false_label:
                continue
            # Full diamond: both arms store the same variable and meet at a join.
            for join_candidate in _join_candidates(function, true_label, false_label):
                true_arm = _arm_single_store(function, true_label, join_candidate)
                false_arm = _arm_single_store(function, false_label, join_candidate)
                if true_arm is None or false_arm is None:
                    continue
                true_var, true_value, true_size = true_arm
                false_var, false_value, false_size = false_arm
                if true_var != false_var:
                    continue
                if true_size > max_arm_instructions or false_size > max_arm_instructions:
                    continue
                if len(preds.get(true_label, [])) != 1 or len(preds.get(false_label, [])) != 1:
                    continue
                # Move the arms' computations into the predecessor, then select.
                self_contained = _arms_self_contained(function, true_label, false_label)
                if not self_contained:
                    continue
                for arm_label in (true_label, false_label):
                    arm_block = function.blocks[arm_label]
                    for instr in arm_block.body:
                        if not isinstance(instr, StoreVar):
                            block.instructions.insert(len(block.instructions) - 1, instr)
                select_temp = function.new_temp("ifc")
                select = Select(select_temp, terminator.cond, true_value, false_value)
                store = StoreVar(true_var, select_temp)
                block.instructions = block.instructions[:-1] + [select, store, Jump(join_candidate)]
                function.remove_block(true_label)
                function.remove_block(false_label)
                converted += 1
                changed = True
                break
            if changed:
                break
    return converted


def _join_candidates(function: IRFunction, true_label: str, false_label: str) -> List[str]:
    true_block = function.blocks.get(true_label)
    false_block = function.blocks.get(false_label)
    candidates: List[str] = []
    for candidate_block in (true_block, false_block):
        if candidate_block is None:
            continue
        terminator = candidate_block.terminator
        if isinstance(terminator, Jump) and terminator.label not in candidates:
            candidates.append(terminator.label)
    return candidates


def _arms_self_contained(function: IRFunction, true_label: str, false_label: str) -> bool:
    """The arm computations must not depend on temps defined in the other arm."""
    for label in (true_label, false_label):
        block = function.blocks[label]
        defined = {t.name for instr in block.instructions for t in instr.defs()}
        other = function.blocks[false_label if label == true_label else true_label]
        other_defined = {t.name for instr in other.instructions for t in instr.defs()}
        for instr in block.instructions:
            for value in instr.uses():
                if hasattr(value, "name") and value.name in other_defined and value.name not in defined:
                    return False
    return True


def if_convert_module(module: IRModule, max_arm_instructions: int = 6) -> int:
    return sum(if_convert(fn, max_arm_instructions) for fn in module.functions.values())
