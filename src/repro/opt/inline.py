"""Inter-procedural passes: function inlining and tail-call optimization.

These are the two transformations the paper singles out as breaking binary
*function* integrity (§3.1.1): inlining makes the callee's code disappear into
callers, and tail calls replace ``call``/``ret`` pairs with plain jumps so
static tools mis-attribute the callee's body.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import Call, Jump, Ret, StoreVar
from repro.ir.values import ConstInt, Temp, Value
from repro.opt.cloning import CloneNamer, rename_instruction
from repro.minic.semantic import BUILTIN_FUNCTIONS


def _is_recursive(module: IRModule, name: str) -> bool:
    function = module.functions[name]
    return name in function.called_functions()


def _inline_candidates(
    module: IRModule,
    max_instructions: int,
    small_only: bool,
    small_threshold: int,
) -> Set[str]:
    candidates: Set[str] = set()
    for name, function in module.functions.items():
        if name == "main" or _is_recursive(module, name):
            continue
        size = function.instruction_count()
        if small_only:
            if size <= small_threshold:
                candidates.add(name)
        elif size <= max_instructions:
            candidates.add(name)
    return candidates


def inline_functions(
    module: IRModule,
    max_instructions: int = 120,
    small_only: bool = False,
    small_threshold: int = 30,
    max_call_sites: int = 64,
) -> int:
    """Inline calls to non-recursive module functions.

    ``small_only`` models ``-finline-small-functions``; the generic form
    models ``-finline-functions``.  Returns the number of call sites inlined.
    """
    candidates = _inline_candidates(module, max_instructions, small_only, small_threshold)
    if not candidates:
        return 0
    inlined = 0
    for caller in list(module.functions.values()):
        sites = 0
        changed = True
        while changed and sites < max_call_sites:
            changed = False
            for label in list(caller.block_order()):
                block = caller.blocks.get(label)
                if block is None:
                    continue
                for index, instr in enumerate(block.instructions):
                    if (
                        isinstance(instr, Call)
                        and instr.callee in candidates
                        and instr.callee != caller.name
                        and instr.callee in module.functions
                    ):
                        _inline_call_site(caller, module.functions[instr.callee], label, index)
                        inlined += 1
                        sites += 1
                        changed = True
                        break
                if changed:
                    break
    return inlined


def _inline_call_site(
    caller: IRFunction, callee: IRFunction, label: str, index: int
) -> None:
    """Splice ``callee``'s body in place of the call at (label, index)."""
    block = caller.blocks[label]
    call = block.instructions[index]
    assert isinstance(call, Call)
    tag = caller.new_label("inl").replace(".", "_")

    # 1. Split the calling block: everything after the call moves to a new
    #    continuation block.
    continuation_label = caller.new_label(f"{label}.cont")
    continuation = caller.add_block(continuation_label)
    continuation.instructions = block.instructions[index + 1 :]
    block.instructions = block.instructions[:index]

    # 2. Map callee locals (params included) onto fresh caller slots.
    var_map: Dict[str, str] = {}
    for name, local in callee.locals.items():
        new_name = f"{name}@{tag}"
        var_map[name] = new_name
        caller.declare_local(new_name, local.size, local.is_array)

    # 3. Clone callee blocks into the caller with renamed temps/labels/slots.
    namer = CloneNamer(caller, tag)
    callee_instructions = [i for blk in callee.blocks.values() for i in blk.instructions]
    temp_map = namer.temp_map(callee_instructions)
    label_map = namer.label_map(list(callee.blocks.keys()))
    result_slot: Optional[str] = None
    if call.dest is not None:
        result_slot = f"__ret@{tag}"
        caller.declare_local(result_slot, 1, False)
    for old_label, old_block in callee.blocks.items():
        new_block = caller.add_block(label_map[old_label])
        new_block.align = old_block.align
        for instr in old_block.instructions:
            if isinstance(instr, Ret):
                if result_slot is not None:
                    value: Value = instr.value if instr.value is not None else ConstInt(0)
                    mapped = rename_instruction(StoreVar(result_slot, value), temp_map, None, var_map)
                    new_block.append(mapped)
                new_block.append(Jump(continuation_label))
            else:
                new_block.append(rename_instruction(instr, temp_map, label_map, var_map))

    # 4. Pass arguments by storing into the renamed parameter slots.
    for param, argument in zip(callee.params, call.args):
        block.append(StoreVar(var_map[param], argument))
    block.append(Jump(label_map[callee.entry]))

    # 5. The call's result is read back from the result slot.
    if call.dest is not None and result_slot is not None:
        from repro.ir.instructions import LoadVar

        continuation.instructions.insert(0, LoadVar(call.dest, result_slot))
    # The continuation inherits the original block's terminator (the call was
    # never the last instruction of a well-formed block); ensure_terminated()
    # is a safety net for malformed inputs.
    caller.ensure_terminated()


def tail_call_optimization(module: IRModule) -> int:
    """Mark calls in tail position (``call f(); ret f()``) as tail calls.

    The code generator then emits a frame-teardown + ``tcall`` instead of a
    ``call``/``ret`` pair.  Returns the number of calls marked.
    """
    marked = 0
    for function in module.functions.values():
        for block in function.blocks.values():
            instructions = block.instructions
            if len(instructions) < 2:
                continue
            call = instructions[-2]
            ret = instructions[-1]
            if not isinstance(call, Call) or not isinstance(ret, Ret):
                continue
            if call.callee in BUILTIN_FUNCTIONS or call.callee not in module.functions:
                continue
            returns_call_value = (
                isinstance(ret.value, Temp)
                and call.dest is not None
                and ret.value.name == call.dest.name
            )
            returns_nothing = ret.value is None and call.dest is None
            # A call whose value is ignored followed by `ret <const>` is not a
            # tail call (the constant must be materialized after the call).
            if returns_call_value or returns_nothing:
                if not call.is_tail:
                    call.is_tail = True
                    marked += 1
    return marked
