"""Scalar and CFG cleanup passes.

* constant folding and block-local constant/copy propagation,
* dead code elimination (unused temps, unreachable blocks, dead local stores),
* block-local common subexpression elimination,
* CFG simplification (jump threading, straight-line block merging),
* basic-block layout reordering (the ``-freorder-blocks`` analog).

Every entry point takes an :class:`IRFunction` (or module) and mutates it in
place, returning the number of rewrites so callers (and tests) can observe
whether anything happened.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import cfg
from repro.ir.function import IRFunction, IRModule
from repro.ir.instructions import (
    AddrOf,
    BinOp,
    Branch,
    Call,
    Jump,
    LoadIndex,
    LoadVar,
    Move,
    Nop,
    Ret,
    Select,
    StoreIndex,
    StoreVar,
    Switch,
    UnOp,
)
from repro.ir.values import ConstInt, SymbolRef, Temp, Value, wrap64


def _fold_binop(op: str, left: int, right: int) -> Optional[int]:
    try:
        if op == "add":
            return wrap64(left + right)
        if op == "sub":
            return wrap64(left - right)
        if op == "mul":
            return wrap64(left * right)
        if op == "div":
            if right == 0:
                return None
            quotient = abs(left) // abs(right)
            return wrap64(-quotient if (left < 0) != (right < 0) else quotient)
        if op == "mod":
            if right == 0:
                return None
            quotient = abs(left) // abs(right)
            quotient = -quotient if (left < 0) != (right < 0) else quotient
            return wrap64(left - quotient * right)
        if op == "and":
            return wrap64(left & right)
        if op == "or":
            return wrap64(left | right)
        if op == "xor":
            return wrap64(left ^ right)
        if op == "shl":
            return wrap64(left << (right & 63))
        if op == "shr":
            return wrap64(left >> (right & 63))
        if op == "eq":
            return int(left == right)
        if op == "ne":
            return int(left != right)
        if op == "lt":
            return int(left < right)
        if op == "le":
            return int(left <= right)
        if op == "gt":
            return int(left > right)
        if op == "ge":
            return int(left >= right)
    except OverflowError:  # pragma: no cover - wrap64 prevents this
        return None
    return None


_IDENTITY_RULES = {
    ("add", 0): "lhs",
    ("sub", 0): "lhs",
    ("mul", 1): "lhs",
    ("div", 1): "lhs",
    ("shl", 0): "lhs",
    ("shr", 0): "lhs",
    ("or", 0): "lhs",
    ("xor", 0): "lhs",
    ("and", 0): "zero",
    ("mul", 0): "zero",
}


def constant_fold_function(function: IRFunction) -> int:
    """Fold constant expressions and algebraic identities.  Returns #rewrites."""
    rewrites = 0
    known: Dict[str, Value]
    for block in function.blocks.values():
        known = {}
        new_instructions = []
        for instr in block.instructions:
            # Substitute temps already known to be constants/copies.
            if known:
                instr.replace_uses({Temp(name): value for name, value in known.items()})
            replacement = instr
            if isinstance(instr, BinOp):
                lhs, rhs = instr.lhs, instr.rhs
                if isinstance(lhs, ConstInt) and isinstance(rhs, ConstInt):
                    folded = _fold_binop(instr.op, lhs.value, rhs.value)
                    if folded is not None:
                        replacement = Move(instr.dest, ConstInt(folded))
                        rewrites += 1
                elif isinstance(rhs, ConstInt):
                    rule = _IDENTITY_RULES.get((instr.op, rhs.value))
                    if rule == "lhs":
                        replacement = Move(instr.dest, lhs)
                        rewrites += 1
                    elif rule == "zero":
                        replacement = Move(instr.dest, ConstInt(0))
                        rewrites += 1
            elif isinstance(instr, UnOp) and isinstance(instr.operand, ConstInt):
                value = instr.operand.value
                if instr.op == "neg":
                    replacement = Move(instr.dest, ConstInt(wrap64(-value)))
                elif instr.op == "bnot":
                    replacement = Move(instr.dest, ConstInt(wrap64(~value)))
                elif instr.op == "not":
                    replacement = Move(instr.dest, ConstInt(int(value == 0)))
                rewrites += 1
            elif isinstance(instr, Select) and isinstance(instr.cond, ConstInt):
                chosen = instr.if_true if instr.cond.value != 0 else instr.if_false
                replacement = Move(instr.dest, chosen)
                rewrites += 1
            elif isinstance(instr, Branch) and isinstance(instr.cond, ConstInt):
                target = instr.true_label if instr.cond.value != 0 else instr.false_label
                replacement = Jump(target)
                rewrites += 1
            # Track constants and copies for in-block propagation.
            if isinstance(replacement, Move) and isinstance(replacement.src, (ConstInt, SymbolRef)):
                known[replacement.dest.name] = replacement.src
            elif isinstance(replacement, Move) and isinstance(replacement.src, Temp):
                known[replacement.dest.name] = replacement.src
            new_instructions.append(replacement)
        block.instructions = new_instructions
    return rewrites


def propagate_copies_function(function: IRFunction) -> int:
    """Block-local store-to-load forwarding for scalar variable slots."""
    rewrites = 0
    address_taken = {
        instr.var for instr in function.instructions() if isinstance(instr, AddrOf)
    }
    for block in function.blocks.values():
        last_store: Dict[str, Value] = {}
        new_instructions = []
        for instr in block.instructions:
            if isinstance(instr, LoadVar) and instr.var in last_store and instr.var not in address_taken:
                new_instructions.append(Move(instr.dest, last_store[instr.var]))
                rewrites += 1
                continue
            if isinstance(instr, StoreVar):
                last_store[instr.var] = instr.value
            elif isinstance(instr, Call):
                # A call may modify globals; forget knowledge about globals.
                last_store = {
                    var: value for var, value in last_store.items() if var in function.locals
                }
            new_instructions.append(instr)
        block.instructions = new_instructions
    return rewrites


def eliminate_dead_code(function: IRFunction) -> int:
    """Remove unused pure temps, dead local stores and unreachable blocks."""
    removed = 0
    # Unreachable blocks.
    reachable = cfg.reachable_blocks(function)
    for label in list(function.blocks):
        if label not in reachable:
            removed += len(function.blocks[label].instructions)
            function.remove_block(label)

    changed = True
    while changed:
        changed = False
        uses: Dict[str, int] = {}
        for instr in function.instructions():
            for value in instr.uses():
                if isinstance(value, Temp):
                    uses[value.name] = uses.get(value.name, 0) + 1
        loaded_vars: Set[str] = set()
        address_taken: Set[str] = set()
        for instr in function.instructions():
            if isinstance(instr, LoadVar):
                loaded_vars.add(instr.var)
            elif isinstance(instr, AddrOf):
                address_taken.add(instr.var)
        for block in function.blocks.values():
            kept = []
            for instr in block.instructions:
                if (
                    not instr.has_side_effects
                    and not instr.is_terminator
                    and instr.defs()
                    and all(temp.name not in uses for temp in instr.defs())
                ):
                    removed += 1
                    changed = True
                    continue
                if (
                    isinstance(instr, StoreVar)
                    and instr.var in function.locals
                    and instr.var not in loaded_vars
                    and instr.var not in address_taken
                ):
                    removed += 1
                    changed = True
                    continue
                kept.append(instr)
            block.instructions = kept
    return removed


def common_subexpression_elimination(function: IRFunction) -> int:
    """Block-local CSE over pure binary/unary operations."""
    rewrites = 0
    for block in function.blocks.values():
        available: Dict[Tuple, Temp] = {}
        substitution: Dict[Value, Value] = {}
        for instr in block.instructions:
            if substitution:
                instr.replace_uses(substitution)
            key = None
            if isinstance(instr, BinOp):
                key = ("bin", instr.op, str(instr.lhs), str(instr.rhs))
            elif isinstance(instr, UnOp):
                key = ("un", instr.op, str(instr.operand))
            elif isinstance(instr, LoadIndex):
                # Loads are not safely reusable across stores; invalidate below.
                key = ("ldx", str(instr.base), str(instr.index))
            if isinstance(instr, (StoreIndex, Call, StoreVar)):
                available = {k: v for k, v in available.items() if k[0] != "ldx"}
            if key is not None:
                if key in available:
                    substitution[instr.defs()[0]] = available[key]
                    rewrites += 1
                else:
                    available[key] = instr.defs()[0]
        if substitution:
            # Remove instructions whose result was replaced.
            replaced = {temp.name for temp in substitution if isinstance(temp, Temp)}
            block.instructions = [
                instr
                for instr in block.instructions
                if not (instr.defs() and instr.defs()[0].name in replaced)
            ]
    return rewrites


def simplify_cfg(function: IRFunction) -> int:
    """Thread trivial jumps and merge straight-line block pairs."""
    rewrites = 0
    changed = True
    while changed:
        changed = False
        # Jump threading: a block containing only `jmp X` can be bypassed.
        trivial: Dict[str, str] = {}
        for label, block in function.blocks.items():
            if label == function.entry:
                continue
            if len(block.instructions) == 1 and isinstance(block.instructions[0], Jump):
                target = block.instructions[0].label
                if target != label:
                    trivial[label] = target
        # Resolve chains a->b->c.
        def resolve(label: str, seen=None) -> str:
            seen = seen or set()
            while label in trivial and label not in seen:
                seen.add(label)
                label = trivial[label]
            return label

        if trivial:
            mapping = {label: resolve(label) for label in trivial}
            for block in function.blocks.values():
                terminator = block.terminator
                if terminator is not None:
                    before = terminator.targets()
                    terminator.retarget(mapping)
                    if before != terminator.targets():
                        changed = True
                        rewrites += 1
        # Drop now-unreachable trivial blocks.
        reachable = cfg.reachable_blocks(function)
        for label in list(function.blocks):
            if label not in reachable:
                function.remove_block(label)
                changed = True
        # Merge A -> B when A's only successor is B and B's only predecessor is A.
        preds = cfg.predecessors_map(function)
        for label in list(function.blocks):
            if label not in function.blocks:
                continue
            block = function.blocks[label]
            terminator = block.terminator
            if not isinstance(terminator, Jump):
                continue
            target = terminator.label
            if target == label or target == function.entry:
                continue
            if len(preds.get(target, [])) != 1:
                continue
            successor = function.blocks[target]
            block.instructions = block.instructions[:-1] + successor.instructions
            function.remove_block(target)
            preds = cfg.predecessors_map(function)
            changed = True
            rewrites += 1
    return rewrites


def reorder_blocks(function: IRFunction, strategy: str = "rpo") -> int:
    """Change the block layout order (``-freorder-blocks`` analog).

    ``rpo`` lays blocks out in reverse postorder; ``cold_last`` additionally
    sinks blocks that terminate in a plain return of a constant (error/exit
    paths) to the end of the function.
    """
    original = function.block_order()
    order = [label for label in cfg.reverse_postorder(function) if label in function.blocks]
    remaining = [label for label in original if label not in order]
    order.extend(remaining)
    if strategy == "cold_last":
        hot, cold = [], []
        for label in order:
            block = function.blocks[label]
            terminator = block.terminator
            is_cold = (
                isinstance(terminator, Ret)
                and len(block.instructions) <= 2
                and label != function.entry
            )
            (cold if is_cold else hot).append(label)
        order = hot + cold
    if order == original:
        return 0
    function.reorder_blocks(order)
    return 1


def run_scalar_cleanups(function: IRFunction) -> int:
    """The standard cleanup bundle run between major transformations."""
    total = 0
    total += constant_fold_function(function)
    total += propagate_copies_function(function)
    total += constant_fold_function(function)
    total += eliminate_dead_code(function)
    return total


def module_scalar_cleanups(module: IRModule) -> int:
    return sum(run_scalar_cleanups(fn) for fn in module.functions.values())
