"""Helpers for duplicating IR fragments (inlining, unrolling, peeling).

Both function inlining and loop unrolling need to copy sets of basic blocks
while renaming temporaries (to preserve single assignment), block labels, and
optionally local variable slots.  This module centralizes that machinery.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.function import BasicBlock, IRFunction
from repro.ir.instructions import (
    AddrOf,
    Instruction,
    LoadVar,
    StoreVar,
)
from repro.ir.values import Temp, Value


class CloneNamer:
    """Generates fresh, collision-free names for cloned entities."""

    def __init__(self, function: IRFunction, tag: str) -> None:
        self.function = function
        self.tag = tag

    def temp_map(self, instructions: Iterable[Instruction]) -> Dict[str, Temp]:
        mapping: Dict[str, Temp] = {}
        for instr in instructions:
            for temp in instr.defs():
                if temp.name not in mapping:
                    mapping[temp.name] = self.function.new_temp(f"{self.tag}_")
        return mapping

    def label_map(self, labels: Iterable[str]) -> Dict[str, str]:
        return {label: self.function.new_label(f"{label}.{self.tag}") for label in labels}


def rename_instruction(
    instr: Instruction,
    temp_map: Dict[str, Temp],
    label_map: Optional[Dict[str, str]] = None,
    var_map: Optional[Dict[str, str]] = None,
) -> Instruction:
    """Clone ``instr`` applying temp, label and variable-slot renamings."""
    clone = instr.clone()
    # Rewrite defined temps.
    for attr in ("dest",):
        current = getattr(clone, attr, None)
        if isinstance(current, Temp) and current.name in temp_map:
            setattr(clone, attr, temp_map[current.name])
    # Rewrite used temps.
    substitution: Dict[Value, Value] = {
        Temp(old): new for old, new in temp_map.items()
    }
    clone.replace_uses(substitution)
    if label_map:
        clone.retarget(label_map)
    if var_map:
        if isinstance(clone, (LoadVar, AddrOf)) and clone.var in var_map:
            clone.var = var_map[clone.var]
        elif isinstance(clone, StoreVar) and clone.var in var_map:
            clone.var = var_map[clone.var]
    return clone


def clone_blocks(
    function: IRFunction,
    labels: List[str],
    tag: str,
    var_map: Optional[Dict[str, str]] = None,
    exit_retarget: Optional[Dict[str, str]] = None,
) -> Tuple[Dict[str, str], List[BasicBlock]]:
    """Clone the blocks named by ``labels`` inside ``function``.

    Returns the label mapping (old -> new) and the new blocks (already added
    to the function).  Branches to labels *outside* the cloned set are left
    unchanged unless ``exit_retarget`` supplies a mapping for them.
    """
    namer = CloneNamer(function, tag)
    all_instructions = [
        instr for label in labels for instr in function.blocks[label].instructions
    ]
    temp_map = namer.temp_map(all_instructions)
    label_map = namer.label_map(labels)
    effective_label_map = dict(label_map)
    if exit_retarget:
        for old, new in exit_retarget.items():
            effective_label_map.setdefault(old, new)
    new_blocks: List[BasicBlock] = []
    for label in labels:
        source = function.blocks[label]
        block = function.add_block(label_map[label])
        block.align = source.align
        for instr in source.instructions:
            block.append(rename_instruction(instr, temp_map, effective_label_map, var_map))
        new_blocks.append(block)
    return label_map, new_blocks
