"""Live metrics: histograms, the metrics registry and the campaign tail.

PR 7's telemetry plane is post-hoc — spans and counters land in JSONL and
become readable only after the run.  This module is the *live* half of the
observability plane:

* :class:`Histogram` — fixed log-spaced buckets shared by every histogram
  in the process, so snapshots taken on different machines merge
  bucket-for-bucket.  Latency seams (``stage.compile``, ``coordinator.rpc``,
  ``worker.batch``) and size seams (mesh transfer bytes) both fit in the
  common ``1e-6 .. 1e9`` span.  Quantiles are estimated by linear
  interpolation inside the target bucket — good to a bucket width (~78%
  relative), which is what operational p95s need.
* :class:`MetricsRegistry` — the thread-safe counter/gauge/histogram store
  behind every sink's ``incr``/``gauge``/``observe``.
* :class:`MetricsSink` — a registry-only sink for runs that want live
  ``/metrics`` without a JSONL run directory; span durations feed
  ``{span.name}.seconds`` histograms, nothing touches disk.
* :func:`render_prometheus` — the text exposition format a Prometheus
  scraper parses from ``GET /metrics``.
* :func:`render_status` / :func:`tail` — the in-place refreshing progress
  view behind ``python -m repro.telemetry tail HOST:PORT`` and the campaign
  CLI's ``--live``.

This module imports only the stdlib: ``repro.telemetry`` imports *from* it,
and the observability server must be loadable on a worker that never pulls
in the campaign stack.
"""

from __future__ import annotations

import bisect
import json
import re
import sys
import threading
import time
import urllib.error
import urllib.request
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "BUCKET_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "MetricsSink",
    "fetch_status",
    "merge_metric_snapshots",
    "render_prometheus",
    "render_status",
    "sanitize_metric_name",
    "tail",
]

#: Shared bucket upper bounds: four log-spaced buckets per decade from
#: 1e-6 to 1e9, plus an implicit +Inf overflow.  Every histogram uses the
#: same bounds, which is what makes snapshots from any process (worker,
#: coordinator, serial run) mergeable without resampling.
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    float(f"{10.0 ** (exponent / 4.0):.6g}") for exponent in range(-24, 37)
)


class Histogram:
    """Counts over the fixed log-spaced buckets, plus an exact sum/count.

    ``observe`` is a bisect plus two adds — cheap enough for per-candidate
    seams.  Not thread-safe on its own; :class:`MetricsRegistry` serializes
    access.  ``snapshot``/``merge`` round-trip through a sparse dict so a
    worker can ship its batch-duration distribution inside a telemetry
    frame and the coordinator can fold it into the fleet-wide histogram.
    """

    __slots__ = ("counts", "sum", "count")

    def __init__(self) -> None:
        # One slot per bound plus the +Inf overflow bucket.
        self.counts: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(BUCKET_BOUNDS, value)
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> Dict[str, object]:
        """Sparse, JSON-safe form: only non-empty buckets are listed."""
        return {
            "count": self.count,
            "sum": self.sum,
            "buckets": {
                str(index): count
                for index, count in enumerate(self.counts)
                if count
            },
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` (possibly from another process) in."""
        if not isinstance(snapshot, dict):
            return
        buckets = snapshot.get("buckets")
        if isinstance(buckets, dict):
            for raw_index, raw_count in buckets.items():
                try:
                    index, count = int(raw_index), int(raw_count)
                except (TypeError, ValueError):
                    continue
                if 0 <= index < len(self.counts) and count > 0:
                    self.counts[index] += count
                    self.count += count
        try:
            self.sum += float(snapshot.get("sum", 0.0))
        except (TypeError, ValueError):
            pass

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "Histogram":
        histogram = cls()
        histogram.merge(snapshot)
        return histogram

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) by interpolating
        linearly inside the bucket the target rank falls in."""
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        target = q * self.count
        cumulative = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            cumulative += count
            if cumulative >= target:
                upper = (
                    BUCKET_BOUNDS[index]
                    if index < len(BUCKET_BOUNDS)
                    else BUCKET_BOUNDS[-1]
                )
                lower = BUCKET_BOUNDS[index - 1] if index > 0 else 0.0
                # Position of the target rank inside this bucket.
                into = (target - (cumulative - count)) / count
                return lower + (upper - lower) * min(1.0, max(0.0, into))
        return BUCKET_BOUNDS[-1]

    def percentiles(self) -> Dict[str, float]:
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.sum:.6g})"


class MetricsRegistry:
    """The thread-safe counter/gauge/histogram store behind a sink."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def incr(self, name: str, value: float = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def merge_histogram(self, name: str, snapshot: Dict[str, object]) -> None:
        """Fold a remote histogram snapshot into the named histogram."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.merge(snapshot)

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._gauges)

    def histogram(self, name: str) -> Optional[Histogram]:
        """A copy of the named histogram (safe to read without the lock)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                return None
            return Histogram.from_snapshot(histogram.snapshot())

    def histogram_snapshots(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {name: hist.snapshot() for name, hist in self._histograms.items()}

    def snapshot(self) -> Dict[str, object]:
        """One JSON-safe dict carrying all three metric families."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: hist.snapshot() for name, hist in self._histograms.items()
                },
            }


class _TimerSpan:
    """The registry-only span: times the block, observes the duration.

    :class:`MetricsSink` cannot reuse :class:`repro.telemetry.Span` (that
    would be a circular import), and does not need to — without a JSONL
    file there is no span *record*, only the duration histogram.
    """

    __slots__ = ("_registry", "_metric", "_started")

    def __init__(self, registry: MetricsRegistry, metric: str) -> None:
        self._registry = registry
        self._metric = metric

    def __enter__(self) -> "_TimerSpan":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._registry.observe(self._metric, time.perf_counter() - self._started)
        return False

    def set(self, **attrs) -> None:
        pass


class MetricsSink:
    """A registry-only sink: live metrics with no run directory.

    Installed by the campaign CLI when ``--obs-port``/``--live`` is given
    without ``--telemetry-dir``: every instrumented seam lights up the
    registry (counters, gauges, span-duration histograms) and the
    observability server renders it, but nothing is written to disk.
    """

    enabled = True

    def __init__(self) -> None:
        self.registry = MetricsRegistry()

    def span(self, name: str, **attrs) -> _TimerSpan:
        return _TimerSpan(self.registry, f"{name}.seconds")

    def event(self, name: str, **attrs) -> None:
        pass

    def incr(self, name: str, value: float = 1) -> None:
        self.registry.incr(name, value)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(name, value)

    def counters(self) -> Dict[str, float]:
        return self.registry.counters()

    def metrics_snapshot(self) -> Dict[str, object]:
        return self.registry.snapshot()

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus name grammar
    (``stage.compile.seconds`` -> ``stage_compile_seconds``)."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _format_value(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return f"{bound:.6g}"


def merge_metric_snapshots(snapshots: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Fold registry snapshots (sink + extra sources) into one: counters
    add, gauges last-write-wins, histograms merge bucket-for-bucket."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Histogram] = {}
    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        for name, value in (snapshot.get("counters") or {}).items():
            try:
                counters[name] = counters.get(name, 0) + float(value)
            except (TypeError, ValueError):
                continue
        for name, value in (snapshot.get("gauges") or {}).items():
            try:
                gauges[name] = float(value)
            except (TypeError, ValueError):
                continue
        for name, hist_snapshot in (snapshot.get("histograms") or {}).items():
            histogram = histograms.get(name)
            if histogram is None:
                histogram = histograms[name] = Histogram()
            histogram.merge(hist_snapshot)
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": {name: hist.snapshot() for name, hist in histograms.items()},
    }


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a registry snapshot in the Prometheus text exposition format.

    Counters become ``<name>_total``, gauges keep their name, histograms
    expand into cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``.  Families are emitted name-sorted so successive scrapes
    diff cleanly.
    """
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    for name in sorted(counters):
        metric = sanitize_metric_name(name)
        if not metric.endswith("_total"):
            metric += "_total"
        lines.append(f"# HELP {metric} Counter {name!r} from the repro telemetry registry.")
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    gauges = snapshot.get("gauges") or {}
    for name in sorted(gauges):
        metric = sanitize_metric_name(name)
        lines.append(f"# HELP {metric} Gauge {name!r} from the repro telemetry registry.")
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    histograms = snapshot.get("histograms") or {}
    for name in sorted(histograms):
        metric = sanitize_metric_name(name)
        histogram = Histogram.from_snapshot(histograms[name])
        lines.append(f"# HELP {metric} Histogram {name!r} from the repro telemetry registry.")
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for index, bound in enumerate(BUCKET_BOUNDS):
            cumulative += histogram.counts[index]
            lines.append(
                f'{metric}_bucket{{le="{_format_bound(bound)}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{metric}_sum {repr(float(histogram.sum))}")
        lines.append(f"{metric}_count {histogram.count}")
    return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# The live tail
# ---------------------------------------------------------------------------


def fetch_status(url: str, timeout: float = 5.0) -> Dict[str, object]:
    """``GET`` the ``/status`` document; raises ``URLError`` on failure."""
    with urllib.request.urlopen(url, timeout=timeout) as response:
        payload = json.loads(response.read().decode("utf-8", "replace"))
    if not isinstance(payload, dict):
        raise ValueError(f"{url} returned {type(payload).__name__}, expected a JSON object")
    return payload


def _format_seconds(value: float) -> str:
    if value < 1e-3:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def render_status(
    status: Dict[str, object],
    previous: Optional[Dict[str, object]] = None,
    elapsed: Optional[float] = None,
) -> str:
    """Render one ``/status`` document as the multi-line progress view.

    ``previous``/``elapsed`` (the last poll and the seconds since it) turn
    the cumulative generation counter into a generations/sec rate.
    """
    lines: List[str] = []
    campaign = status.get("campaign")
    if isinstance(campaign, dict):
        parts = [f"campaign {campaign.get('name', '?')}:"]
        total = campaign.get("jobs_total")
        if total:
            parts.append(f"job {campaign.get('jobs_completed', 0)}/{total}")
        current = campaign.get("current")
        if isinstance(current, dict):
            parts.append(f"{current.get('family', '?')}/{current.get('program', '?')}")
            parts.append(f"gen {current.get('generation', 0)}")
            best = current.get("best_fitness")
            if isinstance(best, (int, float)):
                parts.append(f"best {best:.4f}")
        generations = campaign.get("generations_total")
        if (
            isinstance(generations, (int, float))
            and isinstance(previous, dict)
            and elapsed
        ):
            prev_campaign = previous.get("campaign")
            if isinstance(prev_campaign, dict):
                prev_generations = prev_campaign.get("generations_total")
                if isinstance(prev_generations, (int, float)) and elapsed > 0:
                    rate = (generations - prev_generations) / elapsed
                    parts.append(f"({rate:.2f} gen/s)")
        if campaign.get("state") == "finished":
            parts.append("[finished]")
        lines.append(" ".join(parts))
    stages = status.get("stages")
    if isinstance(stages, dict) and stages:
        parts = []
        for name in sorted(stages):
            row = stages[name]
            if not isinstance(row, dict) or not row.get("count"):
                continue
            p95 = row.get("p95")
            if isinstance(p95, (int, float)):
                parts.append(f"{name} p95 {_format_seconds(float(p95))}")
        if parts:
            lines.append("latency: " + "  ".join(parts))
    fleet = status.get("fleet")
    if isinstance(fleet, list):
        for row in fleet:
            if not isinstance(row, dict):
                continue
            health = str(row.get("health", "?"))
            marks = {"healthy": "+", "stale": "~", "lost": "x"}
            parts = [
                f"[{marks.get(health, '?')}]",
                f"worker {row.get('worker_id', '?')}",
                str(row.get("peer", "")),
                health,
            ]
            if row.get("straggler"):
                parts.append("STRAGGLER")
            slots = row.get("slots")
            if slots:
                parts.append(f"slots {slots}")
            batches = row.get("batches")
            if isinstance(batches, (int, float)):
                parts.append(f"batches {int(batches)}")
            busy = row.get("busy_ratio")
            if isinstance(busy, (int, float)):
                parts.append(f"busy {100.0 * float(busy):.0f}%")
            lines.append(" ".join(part for part in parts if part))
    if not lines:
        lines.append("(no status yet)")
    return "\n".join(lines)


class _InPlaceWriter:
    """Rewrites a block of lines in place on a terminal stream.

    Falls back to plain appends when the stream is not a TTY, so piping
    the tail to a file stays readable.
    """

    def __init__(self, stream) -> None:
        self.stream = stream
        self._last_lines = 0
        self._tty = bool(getattr(stream, "isatty", lambda: False)())

    def write(self, block: str) -> None:
        if self._tty and self._last_lines:
            # Move up over the previous block and clear each stale line.
            self.stream.write(f"\x1b[{self._last_lines}F\x1b[J")
        self.stream.write(block + "\n")
        self.stream.flush()
        self._last_lines = block.count("\n") + 1


def tail(
    address: str,
    interval: float = 1.0,
    stream=None,
    stop: Optional[threading.Event] = None,
    max_polls: Optional[int] = None,
    fetch: Callable[[str], Dict[str, object]] = fetch_status,
) -> int:
    """Poll ``/status`` at ``address`` (``HOST:PORT`` or a full URL) and
    render the in-place progress view until the server goes away.

    Returns 0 when the run finished (server shut down or campaign reported
    finished), 1 when the endpoint never answered at all.
    """
    stream = stream if stream is not None else sys.stderr
    if "//" not in address:
        address = f"http://{address}"
    url = address.rstrip("/") + "/status"
    writer = _InPlaceWriter(stream)
    previous: Optional[Dict[str, object]] = None
    previous_at: Optional[float] = None
    ever_connected = False
    polls = 0
    while not (stop is not None and stop.is_set()):
        if max_polls is not None and polls >= max_polls:
            break
        polls += 1
        try:
            status = fetch(url)
        except (urllib.error.URLError, OSError, ValueError) as exc:
            if ever_connected:
                writer.write(f"(observability endpoint gone: {exc}; run over?)")
                return 0
            writer.write(f"(waiting for {url}: {exc})")
        else:
            ever_connected = True
            now = time.monotonic()
            elapsed = (now - previous_at) if previous_at is not None else None
            writer.write(render_status(status, previous, elapsed))
            previous, previous_at = status, now
            campaign = status.get("campaign")
            if isinstance(campaign, dict) and campaign.get("state") == "finished":
                return 0
        if stop is not None:
            if stop.wait(interval):
                break
        else:
            time.sleep(interval)
    return 0 if ever_connected else 1
