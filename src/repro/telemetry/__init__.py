"""Structured telemetry: spans, counters and gauges over bounded JSONL.

The substrate spans processes and machines (engine -> staged pipeline ->
two-tier store -> coordinator/worker fleet -> artifact mesh), and until now
it was blind at runtime: per-stage timings existed only as scattered
``perf_counter`` deltas folded into end-of-run aggregates.  This package is
the observability plane those layers share:

* a :class:`TelemetrySink` records **spans** (monotonic start + duration,
  hierarchical parent ids per thread), **events** (point-in-time facts),
  **counters** (a metrics registry behind the ad-hoc hit/miss tallies) and
  **gauges** (sampled values);
* the default sink is :data:`NULL_SINK`, whose every operation is a no-op
  method call on a shared singleton — instrumented code pays essentially
  nothing until a campaign installs a real sink;
* :class:`JsonlSink` writes newline-delimited JSON to one file per process
  under a run directory.  Appends are buffered and flushed as a single
  ``os.write`` to an ``O_APPEND`` descriptor, so concurrent processes
  sharing a directory (orchestrator + local workers) never interleave
  partial lines.  The log is **bounded**: past ``max_events`` records are
  counted as dropped, never written — telemetry must not be able to fill a
  disk;
* ``python -m repro.telemetry report RUN_DIR`` renders the per-stage time
  breakdown, cache-tier hit ratios over time and the worker utilization
  table from those files, and ``--chrome-trace out.json`` exports every
  span in Chrome/Perfetto trace-event format (:mod:`repro.telemetry.report`).

The hard invariant: telemetry *observes*, it never participates.  Nothing a
sink records flows back into fingerprints, checkpoints or recorded results,
so a campaign is bit-for-bit identical with telemetry on or off.
"""

from __future__ import annotations

import itertools
import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.telemetry.live import (
    BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
    MetricsSink,
)

SCHEMA_VERSION = 1

#: Default cap on records written per sink (meta and the final metrics
#: snapshot are exempt — they are the lines that make a truncated log
#: interpretable).
DEFAULT_MAX_EVENTS = 200_000

#: Buffered records per flush: one ``os.write`` per this many events keeps
#: the append atomic (whole lines only) without a syscall per span.
FLUSH_EVERY = 128


class NullSpan:
    """The shared no-op span: reentrant, stateless, free to hand out."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = NullSpan()


class NullSink:
    """The zero-cost default: every operation is a no-op method call."""

    enabled = False

    def span(self, name: str, **attrs) -> NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def incr(self, name: str, value: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counters(self) -> Dict[str, float]:
        return {}

    def metrics_snapshot(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


NULL_SINK = NullSink()


class Span:
    """One timed operation: enters the thread's span stack, records on exit.

    ``set`` attaches attributes discovered *during* the operation (a cache
    tier, an outcome count) — they land in the record alongside the attrs
    the span was opened with.  Exceptions mark the span (``error``) and
    propagate untouched.
    """

    __slots__ = ("_sink", "name", "attrs", "_started", "span_id", "parent_id")

    def __init__(self, sink: "JsonlSink", name: str, attrs: Dict[str, object]) -> None:
        self._sink = sink
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._sink._span_stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = next(self._sink._span_ids)
        stack.append(self.span_id)
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._started
        stack = self._sink._span_stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._sink._record_span(self, duration)
        return False


class JsonlSink:
    """Thread-safe sink writing one bounded JSONL file per process.

    The file is ``{label}-{pid}.jsonl`` under ``directory``; a ``meta``
    record written at open carries the pid, host and the wall-clock epoch
    every monotonic timestamp in the file is relative to, so a reader can
    place events from many processes on one timeline.  ``close`` flushes
    the buffer and appends a ``metrics`` snapshot of the counter/gauge
    registry (plus the dropped-record count).
    """

    enabled = True

    def __init__(
        self,
        directory,
        label: str = "events",
        max_events: int = DEFAULT_MAX_EVENTS,
        flush_every: int = FLUSH_EVERY,
    ) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.label = label
        self.path = self.directory / f"{label}-{os.getpid()}.jsonl"
        self.max_events = max_events
        self.dropped = 0
        self._flush_every = max(1, flush_every)
        self._written = 0
        self._buffer: list = []
        self._lock = threading.Lock()
        #: Counters, gauges and histograms live in the shared registry (its
        #: own lock), so the live observability server can snapshot metrics
        #: without contending on the append buffer.
        self._registry = MetricsRegistry()
        self._span_ids = itertools.count(1)
        self._locals = threading.local()
        self._closed = False
        # The wall-clock epoch is recorded once; every event timestamp is
        # perf_counter-relative to it, immune to clock steps mid-run.
        self._wall_epoch = time.time()
        self._perf_epoch = time.perf_counter()
        self._fd = os.open(str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        self._write_lines([{
            "type": "meta",
            "version": SCHEMA_VERSION,
            "pid": os.getpid(),
            "host": socket.gethostname(),
            "label": label,
            "wall_epoch": self._wall_epoch,
        }])

    # -- recording --------------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._perf_epoch

    def _span_stack(self) -> list:
        stack = getattr(self._locals, "stack", None)
        if stack is None:
            stack = self._locals.stack = []
        return stack

    def span(self, name: str, **attrs) -> Span:
        return Span(self, name, attrs)

    def _record_span(self, span: Span, duration: float) -> None:
        record = {
            "type": "span",
            "name": span.name,
            "ts": round(span._started - self._perf_epoch, 6),
            "dur": round(duration, 6),
            "id": span.span_id,
            "tid": threading.get_ident(),
        }
        if span.parent_id is not None:
            record["parent"] = span.parent_id
        if span.attrs:
            record["attrs"] = span.attrs
        # Span durations are the latency seams worth percentiles
        # (stage.compile, coordinator.rpc, worker.batch, ...): every span
        # feeds a `{name}.seconds` histogram, so /metrics serves live
        # quantiles without a second timer at each call site.
        self._registry.observe(f"{span.name}.seconds", duration)
        self._append(record)

    def event(self, name: str, **attrs) -> None:
        record = {
            "type": "event",
            "name": name,
            "ts": round(self._now(), 6),
            "tid": threading.get_ident(),
        }
        if attrs:
            record["attrs"] = attrs
        self._append(record)

    def incr(self, name: str, value: int = 1) -> None:
        """Registry-only counter bump: cheap enough for per-lookup seams."""
        self._registry.incr(name, value)

    def gauge(self, name: str, value: float) -> None:
        self._registry.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the named log-bucketed histogram."""
        self._registry.observe(name, value)

    def counters(self) -> Dict[str, float]:
        return self._registry.counters()

    def metrics_snapshot(self) -> Dict[str, object]:
        """Counters, gauges and histogram snapshots for ``/metrics``."""
        return self._registry.snapshot()

    # -- the bounded buffer -----------------------------------------------------------

    def _append(self, record: Dict[str, object]) -> None:
        with self._lock:
            if self._closed:
                return
            if self._written + len(self._buffer) >= self.max_events:
                self.dropped += 1
                return
            self._buffer.append(record)
            if len(self._buffer) >= self._flush_every:
                self._flush_locked()

    def _write_lines(self, records) -> None:
        """Serialize ``records`` and append them in one ``os.write``.

        A single write to an ``O_APPEND`` descriptor lands at the file's
        end atomically, so sinks in different processes sharing one
        directory (or one inherited file) never interleave partial lines.
        """
        data = "".join(
            json.dumps(record, separators=(",", ":"), default=str) + "\n"
            for record in records
        ).encode()
        if data:
            os.write(self._fd, data)

    def _flush_locked(self) -> None:
        buffer, self._buffer = self._buffer, []
        self._written += len(buffer)
        self._write_lines(buffer)

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._flush_locked()

    @property
    def events_written(self) -> int:
        with self._lock:
            return self._written + len(self._buffer)

    def close(self) -> None:
        """Flush, append the metrics snapshot, release the descriptor."""
        with self._lock:
            if self._closed:
                return
            self._flush_locked()
            registry = self._registry.snapshot()
            snapshot = {
                "type": "metrics",
                "ts": round(self._now(), 6),
                "counters": registry["counters"],
                "gauges": registry["gauges"],
                "histograms": registry["histograms"],
                "events": self._written,
                "dropped": self.dropped,
            }
            self._write_lines([snapshot])
            self._closed = True
            os.close(self._fd)

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# The process-global sink
# ---------------------------------------------------------------------------
#
# Instrumented seams read the sink at call time via get_sink(), so a
# campaign installing a JsonlSink lights up every layer below it — engine,
# stages, caches, coordinator — without threading a sink argument through
# each constructor.  The default is the null sink; nothing writes until
# something opts in.

_SINK_LOCK = threading.Lock()
_SINK: NullSink = NULL_SINK


def get_sink():
    """The process-global sink (the null sink unless one was installed)."""
    return _SINK


def set_sink(sink) -> object:
    """Install ``sink`` (``None`` restores the null sink); returns the
    previous sink so callers can restore it in a ``finally``."""
    global _SINK
    with _SINK_LOCK:
        previous = _SINK
        _SINK = sink if sink is not None else NULL_SINK
        return previous


__all__ = [
    "BUCKET_BOUNDS",
    "DEFAULT_MAX_EVENTS",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsSink",
    "NULL_SINK",
    "NullSink",
    "SCHEMA_VERSION",
    "Span",
    "get_sink",
    "set_sink",
]
