"""Consume telemetry JSONL: the report tables and the chrome-trace export.

``python -m repro.telemetry report RUN_DIR`` reads every ``*.jsonl`` file a
run's sinks wrote into ``RUN_DIR`` (orchestrator, local workers, remote
workers pointed at their own directories and copied in afterwards) and
prints:

* the per-stage/per-span time breakdown (count, total and mean wall clock);
* artifact-cache tier hit ratios *over time*, bucketed by engine
  generation — the line where "the store went warm" or "the mesh kicked
  in" becomes visible;
* the worker utilization table, from the ``fleet.worker`` events the
  coordinator records as workers forward their periodic
  :class:`~repro.distrib.protocol.TelemetrySummary` frames;
* the merged counter registry (the unified hit/miss metrics).

``--chrome-trace out.json`` exports every span as a Chrome trace-event
(``ph: "X"``) with microsecond timestamps on a shared wall-clock timeline,
loadable in ``chrome://tracing`` or https://ui.perfetto.dev.

Readers are deliberately forgiving: a malformed line (a crash mid-append, a
partial copy) is counted and skipped, never fatal — a truncated log must
still report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple


def load_events(run_dir) -> Tuple[List[Dict[str, object]], int]:
    """Parse every ``*.jsonl`` under ``run_dir`` into one event list.

    Each record gains ``pid`` and ``wall_ts`` (its file's ``meta`` epoch
    plus the record's monotonic ``ts``) so events from different processes
    sort onto one timeline.  Returns ``(events, skipped_line_count)``.
    """
    run_dir = Path(run_dir)
    events: List[Dict[str, object]] = []
    skipped = 0
    for path in sorted(run_dir.glob("*.jsonl")):
        pid = None
        wall_epoch = 0.0
        try:
            text = path.read_text()
        except OSError as exc:
            print(f"warning: cannot read {path}: {exc}", file=sys.stderr)
            skipped += 1
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            if record.get("type") == "meta":
                # A file appended to by several sessions restarts its
                # monotonic clock at each meta line; track the latest.
                pid = record.get("pid")
                try:
                    wall_epoch = float(record.get("wall_epoch", 0.0))
                except (TypeError, ValueError):
                    wall_epoch = 0.0
            record.setdefault("pid", pid if pid is not None else 0)
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                record["wall_ts"] = wall_epoch + float(ts)
            events.append(record)
    events.sort(key=lambda record: record.get("wall_ts", 0.0))
    return events, skipped


def _as_int(value, default: int = 0) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def _as_float(value, default: float = 0.0) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def spans(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    return [record for record in events if record.get("type") == "span"]


def span_breakdown(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Per-span-name totals, sorted by total duration, longest first."""
    totals: Dict[str, Dict[str, float]] = {}
    for record in spans(events):
        name = str(record.get("name"))
        entry = totals.setdefault(name, {"count": 0, "seconds": 0.0})
        entry["count"] += 1
        entry["seconds"] += _as_float(record.get("dur", 0.0))
    rows = [
        {
            "name": name,
            "count": int(entry["count"]),
            "seconds": entry["seconds"],
            "mean_ms": 1000.0 * entry["seconds"] / entry["count"] if entry["count"] else 0.0,
        }
        for name, entry in totals.items()
    ]
    rows.sort(key=lambda row: -row["seconds"])
    return rows


def tenant_breakdown(events: Sequence[Dict[str, object]]
                     ) -> List[Dict[str, object]]:
    """Per-tenant totals from the tuning service's tenant-tagged spans.

    The service stamps every ``service.job`` / ``service.generation`` span
    with a ``tenant`` attribute; this groups the generation spans by it —
    the telemetry-side view of the same fair-share accounting the service
    serves on ``/status``.  Empty for runs without a service (no such
    spans), so the table only appears when it has something to say.
    """
    totals: Dict[str, Dict[str, float]] = {}
    for record in spans(events):
        attrs = record.get("attrs")
        if not isinstance(attrs, dict) or "tenant" not in attrs:
            continue
        if record.get("name") != "service.generation":
            continue
        tenant = str(attrs["tenant"])
        entry = totals.setdefault(
            tenant, {"generations": 0, "seconds": 0.0, "jobs": set()}
        )
        entry["generations"] += 1
        entry["seconds"] += _as_float(record.get("dur", 0.0))
        entry["jobs"].add(str(attrs.get("job", "?")))
    rows = [
        {
            "tenant": tenant,
            "jobs": len(entry["jobs"]),
            "generations": int(entry["generations"]),
            "seconds": entry["seconds"],
        }
        for tenant, entry in totals.items()
    ]
    rows.sort(key=lambda row: (-row["seconds"], row["tenant"]))
    return rows


#: Attribute names of the per-generation artifact-tier deltas the engine
#: records on its ``engine.generation`` spans.
_TIER_FIELDS = (
    "artifact_hits", "artifact_store_hits", "artifact_mesh_hits", "artifact_misses",
)


def tier_ratio_rows(
    events: Sequence[Dict[str, object]], buckets: int = 8
) -> List[Dict[str, object]]:
    """Cache-tier hit ratios over time, from ``engine.generation`` spans.

    Generations are grouped into at most ``buckets`` contiguous windows in
    timeline order (interleaving every program of a campaign), each row
    reporting the share of stage lookups served per tier in that window.
    """
    generations = [
        record.get("attrs", {})
        for record in spans(events)
        if record.get("name") == "engine.generation"
    ]
    generations = [
        attrs for attrs in generations
        if isinstance(attrs, dict) and any(field in attrs for field in _TIER_FIELDS)
    ]
    if not generations:
        return []
    buckets = max(1, min(buckets, len(generations)))
    size, extra = divmod(len(generations), buckets)
    rows: List[Dict[str, object]] = []
    start = 0
    for index in range(buckets):
        width = size + (1 if index < extra else 0)
        window = generations[start:start + width]
        start += width
        sums = {field: sum(_as_int(attrs.get(field, 0)) for attrs in window)
                for field in _TIER_FIELDS}
        lookups = sum(sums.values())
        rows.append({
            "generations": f"{start - width + 1}-{start}",
            "lookups": lookups,
            "tier1_ratio": sums["artifact_hits"] / lookups if lookups else 0.0,
            "tier2_ratio": sums["artifact_store_hits"] / lookups if lookups else 0.0,
            "mesh_ratio": sums["artifact_mesh_hits"] / lookups if lookups else 0.0,
            "miss_ratio": sums["artifact_misses"] / lookups if lookups else 0.0,
        })
    return rows


def worker_rows(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Latest ``fleet.worker`` snapshot per worker id, ordered by id."""
    latest: Dict[int, Dict[str, object]] = {}
    for record in events:
        if record.get("type") != "event" or record.get("name") != "fleet.worker":
            continue
        attrs = record.get("attrs")
        if not isinstance(attrs, dict) or "worker_id" not in attrs:
            continue
        try:
            worker_id = int(attrs["worker_id"])
        except (TypeError, ValueError):
            continue
        latest[worker_id] = attrs
    rows = []
    for worker_id in sorted(latest):
        attrs = latest[worker_id]
        uptime = _as_float(attrs.get("uptime_seconds", 0.0))
        busy = _as_float(attrs.get("busy_seconds", 0.0))
        rows.append({
            "worker_id": worker_id,
            "peer": attrs.get("peer", "?"),
            "slots": _as_int(attrs.get("slots", 1), 1),
            "batches": _as_int(attrs.get("batches", 0)),
            "candidates": _as_int(attrs.get("candidates", 0)),
            "busy_seconds": busy,
            "uptime_seconds": uptime,
            "utilization": busy / uptime if uptime else 0.0,
            "mesh_bytes": _as_int(attrs.get("mesh_bytes_sent", 0))
            + _as_int(attrs.get("mesh_bytes_received", 0)),
        })
    return rows


def merged_counters(events: Sequence[Dict[str, object]]) -> Dict[str, float]:
    """Sum of every ``metrics`` snapshot's counters across processes."""
    totals: Dict[str, float] = {}
    for record in events:
        if record.get("type") != "metrics":
            continue
        counters = record.get("counters")
        if not isinstance(counters, dict):
            continue
        for name, value in counters.items():
            if isinstance(value, (int, float)):
                totals[name] = totals.get(name, 0) + value
    return totals


def latency_rows(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Span-duration percentiles from the ``metrics`` snapshots' histograms.

    Histograms from different processes share the fixed bucket bounds
    (:data:`~repro.telemetry.live.BUCKET_BOUNDS`), so the per-process
    snapshots merge bucket-for-bucket into fleet-wide distributions.
    """
    from repro.telemetry.live import Histogram

    merged: Dict[str, Histogram] = {}
    for record in events:
        if record.get("type") != "metrics":
            continue
        histograms = record.get("histograms")
        if not isinstance(histograms, dict):
            continue
        for name, snapshot in histograms.items():
            histogram = merged.get(name)
            if histogram is None:
                histogram = merged[name] = Histogram()
            histogram.merge(snapshot)
    rows = []
    for name in sorted(merged):
        histogram = merged[name]
        if not histogram.count:
            continue
        row = {"name": name, "count": histogram.count}
        row.update(histogram.percentiles())
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------

def chrome_trace(events: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Spans as Chrome trace-event JSON (complete events, ``ph: "X"``).

    Timestamps are microseconds from the earliest event on the merged
    wall-clock timeline, so spans from every process of a run line up in
    one view.  Each event carries the full required key set — ``name``,
    ``ph``, ``ts``, ``dur``, ``pid``, ``tid`` — plus the span's attributes
    as ``args``.
    """
    all_spans = spans(events)
    origin = min(
        (record.get("wall_ts", 0.0) for record in all_spans), default=0.0
    )
    trace_events = []
    for record in all_spans:
        entry = {
            "name": record.get("name", "?"),
            "cat": "repro",
            "ph": "X",
            "ts": round(1e6 * (_as_float(record.get("wall_ts", 0.0)) - origin), 3),
            "dur": round(1e6 * _as_float(record.get("dur", 0.0)), 3),
            "pid": _as_int(record.get("pid", 0)),
            "tid": _as_int(record.get("tid", 0)),
        }
        attrs = record.get("attrs")
        if isinstance(attrs, dict) and attrs:
            entry["args"] = attrs
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ---------------------------------------------------------------------------
# The CLI
# ---------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Report on (and export) a run's telemetry JSONL.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    report = sub.add_parser(
        "report", help="print the stage/tier/fleet breakdown of a telemetry dir"
    )
    report.add_argument("run_dir", type=Path,
                        help="a campaign --telemetry-dir (any directory of "
                             "telemetry *.jsonl files)")
    report.add_argument("--buckets", type=int, default=8,
                        help="time windows in the tier-ratio table (default: 8)")
    report.add_argument("--chrome-trace", type=Path, default=None, metavar="OUT.json",
                        help="additionally export every span in Chrome/Perfetto "
                             "trace-event format (load in chrome://tracing or "
                             "ui.perfetto.dev)")
    report.add_argument("--json", type=Path, default=None, dest="json_out",
                        help="write the report tables to this JSON file")
    tail = sub.add_parser(
        "tail", help="live in-place progress view of a running campaign's "
                     "/status endpoint"
    )
    tail.add_argument("address", metavar="HOST:PORT",
                      help="the --obs-port endpoint of a running campaign "
                           "(HOST:PORT or a full http:// URL)")
    tail.add_argument("--interval", type=float, default=1.0,
                      help="poll period in seconds (default: 1.0)")
    tail.add_argument("--max-polls", type=int, default=None,
                      help="stop after this many polls (default: until the "
                           "server goes away or the campaign finishes)")
    return parser


def report_main(args) -> int:
    events, skipped = load_events(args.run_dir)
    if not events:
        # An empty directory is what a crashed-before-first-flush or
        # not-yet-started run leaves behind; a report over it is vacuous,
        # not an error — scripts iterating run dirs must keep going.
        print(f"warning: no telemetry events under {args.run_dir} "
              f"(expected *.jsonl files); nothing to report",
              file=sys.stderr)
        return 0
    if not spans(events):
        print(f"warning: no spans under {args.run_dir}; time-breakdown "
              f"tables will be empty", file=sys.stderr)
    processes = sorted({_as_int(record.get("pid", 0)) for record in events})
    print(f"telemetry: {len(events)} records from {len(processes)} process(es) "
          f"under {args.run_dir}"
          + (f" ({skipped} malformed lines skipped)" if skipped else ""))

    breakdown = span_breakdown(events)
    if breakdown:
        print("\nper-stage time breakdown:")
        print(f"  {'span':24s} {'count':>7s} {'total s':>9s} {'mean ms':>9s}")
        for row in breakdown:
            print(f"  {row['name']:24s} {row['count']:7d} "
                  f"{row['seconds']:9.2f} {row['mean_ms']:9.2f}")

    tiers = tier_ratio_rows(events, buckets=args.buckets)
    if tiers:
        print("\nartifact tier hit ratios over time (per stage lookup):")
        print(f"  {'generations':>12s} {'lookups':>8s} {'tier-1':>7s} "
              f"{'tier-2':>7s} {'mesh':>7s} {'miss':>7s}")
        for row in tiers:
            print(f"  {row['generations']:>12s} {row['lookups']:8d} "
                  f"{row['tier1_ratio']:6.1%} {row['tier2_ratio']:6.1%} "
                  f"{row['mesh_ratio']:6.1%} {row['miss_ratio']:6.1%}")

    tenants = tenant_breakdown(events)
    if tenants:
        print("\nper-tenant service time (fair-share view):")
        print(f"  {'tenant':20s} {'jobs':>5s} {'generations':>12s} {'total s':>9s}")
        for row in tenants:
            print(f"  {row['tenant']:20s} {row['jobs']:5d} "
                  f"{row['generations']:12d} {row['seconds']:9.2f}")

    fleet = worker_rows(events)
    if fleet:
        print("\nworker utilization:")
        print(f"  {'worker':>6s} {'peer':20s} {'slots':>5s} {'batches':>7s} "
              f"{'cands':>6s} {'busy s':>7s} {'util':>6s} {'mesh B':>10s}")
        for row in fleet:
            print(f"  {row['worker_id']:6d} {str(row['peer']):20s} "
                  f"{row['slots']:5d} {row['batches']:7d} {row['candidates']:6d} "
                  f"{row['busy_seconds']:7.1f} {row['utilization']:5.1%} "
                  f"{row['mesh_bytes']:10d}")

    latencies = latency_rows(events)
    if latencies:
        print("\nlatency percentiles (merged across processes):")
        print(f"  {'histogram':28s} {'count':>7s} {'p50 ms':>9s} "
              f"{'p95 ms':>9s} {'p99 ms':>9s}")
        for row in latencies:
            print(f"  {row['name']:28s} {row['count']:7d} "
                  f"{1000.0 * row['p50']:9.2f} {1000.0 * row['p95']:9.2f} "
                  f"{1000.0 * row['p99']:9.2f}")

    counters = merged_counters(events)
    if counters:
        print("\ncounters (all processes):")
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            print(f"  {name:32s} {rendered}")

    if args.chrome_trace is not None:
        trace = chrome_trace(events)
        args.chrome_trace.write_text(json.dumps(trace))
        print(f"\nchrome trace: {len(trace['traceEvents'])} span(s) -> "
              f"{args.chrome_trace} (load in chrome://tracing or ui.perfetto.dev)")

    if args.json_out is not None:
        args.json_out.write_text(json.dumps({
            "records": len(events),
            "processes": processes,
            "breakdown": breakdown,
            "tier_ratios": tiers,
            "tenants": tenants,
            "fleet": fleet,
            "latency": latencies,
            "counters": counters,
        }, indent=2))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "report":
            return report_main(args)
        if args.command == "tail":
            from repro.telemetry.live import tail

            return tail(args.address, interval=args.interval,
                        max_polls=args.max_polls)
    except BrokenPipeError:
        # The reader left (``report ... | head``): the conventional quiet
        # exit, not a traceback.  Point stdout at devnull so the interpreter
        # teardown's implicit flush cannot raise the same error again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    except KeyboardInterrupt:
        # Ctrl-C is how a tail session ends; no traceback.
        return 130
    raise AssertionError(f"unhandled command {args.command!r}")
