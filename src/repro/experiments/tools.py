"""Figure 8: Precision@1 of prominent diffing tools under different settings."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.disassembler import disassemble
from repro.compilers import ObfuscatorLLVM
from repro.difftools import ALL_TOOLS, make_tool, precision_at_1
from repro.experiments.scores import make_compiler, tune_benchmark
from repro.tuner import BinTunerConfig
from repro.workloads import benchmark

#: Tool/setting layout of the two Figure 8 panels.
FIG8_PANELS = {
    "gcc:coreutils": {
        "tools": ["Asm2Vec", "VulSeeker", "IMF-SIM", "CoP", "Multi-MH", "BinSlayer"],
        "settings": ["O1", "O3", "Os", "BinTuner"],
    },
    "llvm:openssl": {
        "tools": ["Asm2Vec", "INNEREYE", "VulSeeker", "IMF-SIM", "CoP", "Multi-MH", "BinSlayer"],
        "settings": ["O1", "O3", "Obfuscator-LLVM", "BinTuner"],
    },
}


def run_fig8_tool_precision(
    panel: str = "llvm:openssl",
    tools: Optional[Sequence[str]] = None,
    settings: Optional[Sequence[str]] = None,
    config: Optional[BinTunerConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Precision@1 per tool per setting for one Figure 8 panel.

    The O0 build is the query side (functions are "trained"/taken from O0 and
    searched in the other build), mirroring the paper's Asm2Vec-style setup.
    """
    if panel not in FIG8_PANELS:
        raise KeyError(f"unknown panel {panel!r} (expected one of {sorted(FIG8_PANELS)})")
    family, bench_name = panel.split(":")
    layout = FIG8_PANELS[panel]
    tool_names = list(tools) if tools is not None else layout["tools"]
    setting_names = list(settings) if settings is not None else layout["settings"]

    compiler = make_compiler(family)
    workload = benchmark(bench_name)
    baseline = disassemble(compiler.compile_level(workload.source, "O0", name=bench_name).image)

    target_images = {}
    for setting in setting_names:
        if setting == "BinTuner":
            target_images[setting] = tune_benchmark(family, bench_name, config).best_image
        elif setting == "Obfuscator-LLVM":
            obfuscator = ObfuscatorLLVM()
            target_images[setting] = obfuscator.compile(
                workload.source, obfuscator.preset("O2"), name=bench_name
            ).image
        else:
            target_images[setting] = compiler.compile_level(
                workload.source, setting, name=bench_name
            ).image
    targets = {setting: disassemble(image) for setting, image in target_images.items()}

    results: Dict[str, Dict[str, float]] = {}
    for tool_name in tool_names:
        tool = make_tool(tool_name)
        results[tool_name] = {}
        for setting, target in targets.items():
            match = tool.compare_programs(baseline, target)
            results[tool_name][setting] = round(precision_at_1(match), 3)
    return results
