"""Table 3: execution speedup of -O3 and BinTuner builds over -O0, plus the
serial-vs-parallel evaluation-engine comparison that rides on the same bench.

The tuning half runs as one campaign per compiler family (shared pool,
sharded database) rather than a per-benchmark loop."""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.analysis.cost_model import CostModel
from repro.campaign import Campaign, CampaignConfig, ProgramJob
from repro.experiments.scores import make_compiler, tune_benchmark, tune_suite
from repro.tuner import ArtifactCache, BinTunerConfig
from repro.workloads import benchmark


def run_table3_speedup(
    families: Sequence[str] = ("gcc", "llvm"),
    benchmarks: Sequence[str] = ("462.libquantum", "429.mcf", "coreutils", "openssl"),
    config: Optional[BinTunerConfig] = None,
) -> List[Dict[str, object]]:
    """Average speedup (in %) of O3 and BinTuner builds relative to O0.

    The paper reports hardware wall-clock speedups; here the deterministic
    emulator cycle counts play that role.  The expected shape: BinTuner's
    outputs are usually a bit slower than -O3 (NCD is the only objective), the
    exception being crypto-style workloads where the extra unrolling pays off.
    """
    rows: List[Dict[str, object]] = []
    for family in families:
        tuned_suite = tune_suite(family, list(benchmarks), config)
        for name in benchmarks:
            compiler = make_compiler(family)
            workload = benchmark(name)
            model = CostModel(args=workload.arguments, inputs=workload.inputs)
            o0 = compiler.compile_level(workload.source, "O0", name=name).image
            o3 = compiler.compile_level(workload.source, "O3", name=name).image
            tuned = tuned_suite[name].best_image
            o3_speedup = model.speedup(o0, o3) - 1.0
            tuned_speedup = model.speedup(o0, tuned) - 1.0
            rows.append(
                {
                    "compiler": family,
                    "benchmark": name,
                    "O3 speedup": f"{o3_speedup:+.1%}",
                    "BinTuner speedup": f"{tuned_speedup:+.1%}",
                    "o3_speedup": o3_speedup,
                    "bintuner_speedup": tuned_speedup,
                }
            )
    return rows


def run_parallel_evaluation_speedup(
    family: str = "llvm",
    name: str = "462.libquantum",
    config: Optional[BinTunerConfig] = None,
    workers: int = 4,
) -> Dict[str, object]:
    """Serial vs. process-pool tuning of one benchmark with identical seeds.

    Returns wall-clock for both engine configurations, the engine's dedup
    counters (cache-hit ratios), and whether the two runs agreed bit-for-bit
    on ``best_flags`` and the fitness history — the evaluation engine's
    reproducibility contract.  On single-core CI hardware process spawn
    dominates and the wall-clock ratio can drop below 1.0; the cache-hit
    gains are the hardware-independent part of the win.
    """
    base = config or BinTunerConfig(max_iterations=40, stall_window=24)
    serial_config = replace(base, executor="serial", workers=1)
    parallel_config = replace(base, executor="process", workers=workers)

    started = time.perf_counter()
    serial = tune_benchmark(family, name, serial_config)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    parallel = tune_benchmark(family, name, parallel_config)
    parallel_seconds = time.perf_counter() - started

    stats = serial.evaluation_stats
    return {
        "compiler": family,
        "benchmark": name,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "wall_clock_speedup": serial_seconds / parallel_seconds if parallel_seconds else 0.0,
        "identical_best_flags": (
            serial.best_flags.sorted_names() == parallel.best_flags.sorted_names()
        ),
        "identical_history": serial.ncd_history() == parallel.ncd_history(),
        "requested": stats.requested if stats else 0,
        "evaluated": stats.evaluated if stats else 0,
        "cache_hits": stats.cache_hits if stats else 0,
        "cache_hit_ratio": stats.hit_ratio if stats else 0.0,
        "worker_seconds": stats.worker_seconds if stats else 0.0,
    }


def _run_mesh_join_comparison(
    jobs: Sequence[ProgramJob],
    base: BinTunerConfig,
    store_dir,
) -> Optional[Dict[str, object]]:
    """Cold join vs mesh join of a fresh machine, over a populated store.

    Two distributed runs of the same campaign, each served by one worker
    whose *local* store starts empty (the shape of a machine joining a
    running campaign): without the mesh it re-pays every compile; with the
    mesh serving ``store_dir`` its misses are fetched instead.  Returns
    ``None`` on sandboxes without AF_INET loopback (the distributed
    substrate cannot bind there at all).
    """
    import shutil
    import socket
    import tempfile
    import threading

    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
    except OSError:
        return None

    from repro.campaign import SharedWorkerPool
    from repro.distrib.worker import serve

    def joined_run(mesh: bool):
        worker_dir = tempfile.mkdtemp(prefix="repro-mesh-worker-")
        pool = SharedWorkerPool(
            dispatch="distributed", mesh_store=store_dir if mesh else None
        )
        try:
            worker = threading.Thread(
                target=serve,
                kwargs=dict(
                    connect=pool.address_string(), hard_exit=False,
                    store_dir=worker_dir,
                ),
                daemon=True,
            )
            worker.start()
            pool.wait_for_workers(1, timeout=30)
            campaign = Campaign(
                jobs,
                CampaignConfig(
                    tuner=base, pipeline="staged", warm_start=True,
                    store_dir=store_dir, dispatch="distributed", mesh=mesh,
                ),
            )
            started = time.perf_counter()
            result = campaign.run(pool=pool)
            seconds = time.perf_counter() - started
            mesh_stats = pool.mesh_stats()
        finally:
            pool.close()
            shutil.rmtree(worker_dir, ignore_errors=True)
        return result, seconds, mesh_stats

    cold, cold_seconds, _no_mesh = joined_run(mesh=False)
    warm, mesh_seconds, mesh_stats = joined_run(mesh=True)
    stats = warm.evaluation_stats()
    return {
        "cold_join_seconds": cold_seconds,
        "mesh_join_seconds": mesh_seconds,
        "mesh_join_speedup": cold_seconds / mesh_seconds if mesh_seconds else 0.0,
        "mesh_hits": stats.artifact_mesh_hits,
        "mesh_hit_ratio": stats.artifact_mesh_hit_ratio,
        "mesh_join_artifact_misses": stats.artifact_misses,
        "identical_fingerprints": cold.fingerprint() == warm.fingerprint(),
        "mesh": mesh_stats,
    }


def run_pipeline_comparison(
    family: str = "llvm",
    benchmarks: Sequence[str] = ("462.libquantum", "429.mcf"),
    config: Optional[BinTunerConfig] = None,
    store_dir: Optional[object] = None,
) -> Dict[str, object]:
    """Staged vs monolithic pipeline on a small warm-startable campaign.

    Four runs of the same seeded campaign: monolithic (the legacy opaque
    closure), staged cold (stage-split evaluation populating one shared
    :class:`ArtifactCache` backed by a disk store), staged *warm* — the same
    campaign rerun against the populated in-memory cache, the shape of a
    re-scoring or warm-started rerun — and staged *warm restart*: a fresh
    cache over the same disk store, the shape of a killed-and-restarted
    campaign whose only warmth is tier 2.  Reports wall clocks, the staged
    run's per-stage time split, tier-1/tier-2 artifact hit ratios, and the
    determinism verdict: all four database fingerprints must be identical.

    The report's ``mesh_join`` section (``None`` on sandboxes without
    loopback) extends the restart scenario across machines: a distributed
    worker with an *empty* local store joins once without the artifact mesh
    (cold join — it re-pays every compile) and once with the mesh serving
    the populated campaign store (its misses are fetched from past work
    instead), recording both wall clocks and the mesh hit ratio.

    ``store_dir`` defaults to a temporary directory cleaned up on return.
    """
    import shutil
    import tempfile

    base = config or BinTunerConfig(max_iterations=40, stall_window=24)
    jobs = [ProgramJob(family, name) for name in benchmarks]

    def run(pipeline: str, cache: Optional[ArtifactCache] = None, store=None,
            telemetry_dir=None):
        campaign = Campaign(
            jobs,
            CampaignConfig(
                tuner=base, pipeline=pipeline, warm_start=True, store_dir=store,
                telemetry_dir=telemetry_dir,
            ),
            artifact_cache=cache,
        )
        started = time.perf_counter()
        result = campaign.run()
        return result, time.perf_counter() - started

    own_store = store_dir is None
    if own_store:
        store_dir = tempfile.mkdtemp(prefix="repro-pipeline-store-")
    try:
        monolithic, monolithic_seconds = run("monolithic")
        cache = ArtifactCache(8192)
        cold, cold_seconds = run("staged", cache, store_dir)
        warm, warm_seconds = run("staged", cache, store_dir)
        # The restart: a fresh in-memory cache (a new process would have
        # nothing else) over the same on-disk store.
        restart_cache = ArtifactCache(8192)
        restart, restart_seconds = run("staged", restart_cache, store_dir)
        # Telemetry overhead: the same warm rerun twice more — once on the
        # default null sink, once with a JsonlSink recording every span —
        # so the report carries both wall clocks, the event volume, and the
        # observe-only verdict (identical fingerprints either way).
        telemetry_dir = tempfile.mkdtemp(prefix="repro-pipeline-telemetry-")
        try:
            plain, plain_seconds = run("staged", cache, store_dir)
            observed, observed_seconds = run(
                "staged", cache, store_dir, telemetry_dir=telemetry_dir
            )
            from repro.telemetry.report import load_events

            telemetry_events, _skipped = load_events(telemetry_dir)
        finally:
            shutil.rmtree(telemetry_dir, ignore_errors=True)
        telemetry_report = {
            "disabled_seconds": plain_seconds,
            "enabled_seconds": observed_seconds,
            "overhead_ratio": (
                observed_seconds / plain_seconds if plain_seconds else 0.0
            ),
            "events": len(telemetry_events),
            "identical_fingerprints": (
                plain.fingerprint() == observed.fingerprint() == cold.fingerprint()
            ),
        }
        # Live-observability overhead: the same warm rerun once more with
        # the registry-only sink (span-duration histograms, no disk) and a
        # loopback /metrics + /status server up, scraped once mid-flight.
        # The read-only contract makes this a pure tax measurement: the
        # fingerprint must not move.
        from repro import telemetry as telemetry_module
        from repro.telemetry.live import MetricsSink

        previous_sink = telemetry_module.get_sink()
        obs_server = None
        scrape_ok: Optional[bool] = None
        try:
            telemetry_module.set_sink(MetricsSink())
            try:
                from repro.distrib.obsserver import ObservabilityServer

                obs_server = ObservabilityServer()
            except OSError:
                obs_server = None  # no loopback in this sandbox
            live, live_seconds = run("staged", cache, store_dir)
            if obs_server is not None:
                import urllib.request

                with urllib.request.urlopen(
                    obs_server.url() + "/metrics", timeout=5.0
                ) as response:
                    body = response.read().decode("utf-8", "replace")
                scrape_ok = "engine_generation_seconds_count" in body
        finally:
            if obs_server is not None:
                obs_server.close()
            telemetry_module.set_sink(previous_sink)
        observability_report = {
            "disabled_seconds": plain_seconds,
            "enabled_seconds": live_seconds,
            "overhead_ratio": (
                live_seconds / plain_seconds if plain_seconds else 0.0
            ),
            "scrape_ok": scrape_ok,
            "identical_fingerprints": live.fingerprint() == cold.fingerprint(),
        }
        # The cross-machine variant of the restart, over the same populated
        # store (skipped where loopback is unavailable).
        mesh_join = _run_mesh_join_comparison(jobs, base, store_dir)
        # Snapshot every stat that scans the store directory before the
        # temp dir is deleted below.
        store_stats = (
            restart_cache.store.stats() if restart_cache.store is not None else None
        )
        cache_stats = cache.stats()
    finally:
        if own_store:
            shutil.rmtree(store_dir, ignore_errors=True)

    cold_stats = cold.evaluation_stats()
    warm_stats = warm.evaluation_stats()
    restart_stats = restart.evaluation_stats()
    return {
        "compiler": family,
        "benchmarks": list(benchmarks),
        "monolithic_seconds": monolithic_seconds,
        "staged_seconds": cold_seconds,
        "warm_rerun_seconds": warm_seconds,
        "warm_rerun_speedup": cold_seconds / warm_seconds if warm_seconds else 0.0,
        "warm_restart_seconds": restart_seconds,
        "warm_restart_speedup": (
            cold_seconds / restart_seconds if restart_seconds else 0.0
        ),
        "identical_fingerprints": (
            monolithic.fingerprint() == cold.fingerprint()
            == warm.fingerprint() == restart.fingerprint()
        ),
        "stage_seconds": {
            "compile": cold_stats.compile_seconds,
            "measure": cold_stats.measure_seconds,
            "score": cold_stats.score_seconds,
        },
        "evaluated": cold_stats.evaluated,
        "cold_artifact_hit_ratio": cold_stats.artifact_hit_ratio,
        "warm_artifact_hits": warm_stats.artifact_hits,
        "warm_artifact_hit_ratio": warm_stats.artifact_hit_ratio,
        "restart_tier2_hits": restart_stats.artifact_store_hits,
        "restart_tier2_hit_ratio": restart_stats.artifact_store_hit_ratio,
        "restart_artifact_misses": restart_stats.artifact_misses,
        "artifact_cache": cache_stats,
        "artifact_store": store_stats,
        "telemetry": telemetry_report,
        "observability": observability_report,
        "mesh_join": mesh_join,
    }


def run_emulator_dispatch_bench(
    family: str = "llvm",
    benchmark_names: Sequence[str] = ("462.libquantum", "429.mcf"),
    repeats: int = 3,
    ncd_rounds: int = 30,
    lane_rounds: int = 50,
) -> Dict[str, object]:
    """The hot-path engine report: dispatch, incremental NCD, compile lane.

    Three sections, all parity-checked:

    * ``dispatch`` — per-benchmark emulator wall clock and steps/sec under
      the reference engine vs. the table/superinstruction engine (best of
      ``repeats``), with field-for-field ``ExecutionResult`` equality;
    * ``ncd`` — joint-compression throughput of the exact one-shot path vs.
      the incremental primed-``compressobj`` lane per compressor, with
      value equality asserted;
    * ``lane`` — per-batch executor churn (the old per-generation
      ``ThreadPoolExecutor``) vs. submitting to the persistent shared
      compile lane.
    """
    import os as _os
    from concurrent.futures import ThreadPoolExecutor

    from repro.analysis.emulator import (
        DISPATCH_ENV,
        REFERENCE_DISPATCH,
        TABLE_DISPATCH,
        reset_decoded_programs,
        run_program,
    )
    from repro.difftools.ncd import _COMPRESSORS, NCD_EXACT_ENV, JointCompressor
    from repro.tuner.pipeline import shared_compile_lane

    def _timed(fn) -> float:
        best = None
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - started
            best = elapsed if best is None else min(best, elapsed)
        return best

    compiler = make_compiler(family)
    previous_mode = _os.environ.get(DISPATCH_ENV)
    dispatch_rows: List[Dict[str, object]] = []
    total_reference_seconds = 0.0
    total_table_seconds = 0.0
    total_steps = 0
    parity = True
    try:
        for name in benchmark_names:
            workload = benchmark(name)
            image = compiler.compile_level(workload.source, "O2", name=name).image
            run = lambda: run_program(  # noqa: E731
                image, args=workload.arguments, inputs=workload.inputs
            )
            _os.environ[DISPATCH_ENV] = REFERENCE_DISPATCH
            reference_result = run()
            reference_seconds = _timed(run)
            _os.environ[DISPATCH_ENV] = TABLE_DISPATCH
            reset_decoded_programs()
            table_result = run()  # includes the one-time decode; timed runs are warm
            table_seconds = _timed(run)
            row_parity = (
                reference_result.observable_state() == table_result.observable_state()
                and reference_result.steps == table_result.steps
                and reference_result.cycles == table_result.cycles
                and reference_result.exited == table_result.exited
                and reference_result.exit_code == table_result.exit_code
                and reference_result.assertion_failed == table_result.assertion_failed
            )
            parity = parity and row_parity
            total_reference_seconds += reference_seconds
            total_table_seconds += table_seconds
            total_steps += reference_result.steps
            dispatch_rows.append(
                {
                    "benchmark": name,
                    "steps": reference_result.steps,
                    "blocks": table_result.blocks,
                    "reference_seconds": reference_seconds,
                    "table_seconds": table_seconds,
                    "reference_steps_per_second": (
                        reference_result.steps / reference_seconds
                        if reference_seconds else 0.0
                    ),
                    "table_steps_per_second": (
                        table_result.steps / table_seconds if table_seconds else 0.0
                    ),
                    "speedup": (
                        reference_seconds / table_seconds if table_seconds else 0.0
                    ),
                    "identical_results": row_parity,
                }
            )
    finally:
        if previous_mode is None:
            _os.environ.pop(DISPATCH_ENV, None)
        else:
            _os.environ[DISPATCH_ENV] = previous_mode

    # -- incremental NCD ----------------------------------------------------
    ncd_workload = benchmark(benchmark_names[0])
    baseline_text = compiler.compile_level(
        ncd_workload.source, "O0", name="ncd-base"
    ).image.text
    candidate_texts = [
        compiler.compile_level(ncd_workload.source, level, name="ncd-cand").image.text
        for level in ("O1", "O2", "O3", "Os")
    ]
    previous_exact = _os.environ.get(NCD_EXACT_ENV)
    ncd_rows: List[Dict[str, object]] = []
    try:
        for compressor in sorted(_COMPRESSORS):
            joint = JointCompressor(baseline_text, compressor)

            def _score_all():
                for text in candidate_texts:
                    joint.joint_size(text)

            def _rounds():
                for _ in range(ncd_rounds):
                    _score_all()

            _os.environ[NCD_EXACT_ENV] = "1"
            exact_values = [joint.joint_size(text) for text in candidate_texts]
            exact_seconds = _timed(_rounds)
            _os.environ.pop(NCD_EXACT_ENV, None)
            incremental_values = [joint.joint_size(text) for text in candidate_texts]
            incremental_seconds = _timed(_rounds)
            ncd_rows.append(
                {
                    "compressor": compressor,
                    "incremental_available": joint.incremental_available,
                    "exact_seconds": exact_seconds,
                    "incremental_seconds": incremental_seconds,
                    "speedup": (
                        exact_seconds / incremental_seconds
                        if incremental_seconds else 0.0
                    ),
                    "identical_values": exact_values == incremental_values,
                }
            )
    finally:
        if previous_exact is None:
            _os.environ.pop(NCD_EXACT_ENV, None)
        else:
            _os.environ[NCD_EXACT_ENV] = previous_exact

    # -- compile lane -------------------------------------------------------
    def _noop() -> None:
        return None

    def _fresh_executor_per_batch():
        for _ in range(lane_rounds):
            executor = ThreadPoolExecutor(max_workers=2, thread_name_prefix="bench-lane")
            executor.submit(_noop).result()
            executor.shutdown(wait=False, cancel_futures=True)

    def _persistent_lane():
        lane = shared_compile_lane()
        for _ in range(lane_rounds):
            lane.submit(_noop).result()

    fresh_seconds = _timed(_fresh_executor_per_batch)
    persistent_seconds = _timed(_persistent_lane)

    aggregate_speedup = (
        total_reference_seconds / total_table_seconds if total_table_seconds else 0.0
    )
    return {
        "kind": "hot_path_engine",
        "compiler": family,
        "benchmarks": list(benchmark_names),
        "dispatch": {
            "rows": dispatch_rows,
            "total_steps": total_steps,
            "reference_seconds": total_reference_seconds,
            "table_seconds": total_table_seconds,
            "reference_steps_per_second": (
                total_steps / total_reference_seconds
                if total_reference_seconds else 0.0
            ),
            "table_steps_per_second": (
                total_steps / total_table_seconds if total_table_seconds else 0.0
            ),
            "aggregate_speedup": aggregate_speedup,
            "identical_results": parity,
        },
        "ncd": {
            "rows": ncd_rows,
            "identical_values": all(row["identical_values"] for row in ncd_rows),
        },
        "lane": {
            "rounds": lane_rounds,
            "fresh_executor_seconds": fresh_seconds,
            "persistent_lane_seconds": persistent_seconds,
            "speedup": (
                fresh_seconds / persistent_seconds if persistent_seconds else 0.0
            ),
        },
    }
