"""Table 3: execution speedup of -O3 and BinTuner builds over -O0."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.cost_model import CostModel
from repro.experiments.scores import make_compiler, tune_benchmark
from repro.tuner import BinTunerConfig
from repro.workloads import benchmark


def run_table3_speedup(
    families: Sequence[str] = ("gcc", "llvm"),
    benchmarks: Sequence[str] = ("462.libquantum", "429.mcf", "coreutils", "openssl"),
    config: Optional[BinTunerConfig] = None,
) -> List[Dict[str, object]]:
    """Average speedup (in %) of O3 and BinTuner builds relative to O0.

    The paper reports hardware wall-clock speedups; here the deterministic
    emulator cycle counts play that role.  The expected shape: BinTuner's
    outputs are usually a bit slower than -O3 (NCD is the only objective), the
    exception being crypto-style workloads where the extra unrolling pays off.
    """
    rows: List[Dict[str, object]] = []
    for family in families:
        for name in benchmarks:
            compiler = make_compiler(family)
            workload = benchmark(name)
            model = CostModel(args=workload.arguments, inputs=workload.inputs)
            o0 = compiler.compile_level(workload.source, "O0", name=name).image
            o3 = compiler.compile_level(workload.source, "O3", name=name).image
            tuned = tune_benchmark(family, name, config).best_image
            o3_speedup = model.speedup(o0, o3) - 1.0
            tuned_speedup = model.speedup(o0, tuned) - 1.0
            rows.append(
                {
                    "compiler": family,
                    "benchmark": name,
                    "O3 speedup": f"{o3_speedup:+.1%}",
                    "BinTuner speedup": f"{tuned_speedup:+.1%}",
                    "o3_speedup": o3_speedup,
                    "bintuner_speedup": tuned_speedup,
                }
            )
    return rows
