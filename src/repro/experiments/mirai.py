"""Figure 1: the Mirai compiler-provenance and detection study."""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.compilers import SimGCC
from repro.malware import build_scanner_fleet, malware_program
from repro.malware.samples import mirai_variant_stream
from repro.provenance import BinComp, ProvenanceLabel
from repro.tuner.constraints import ConstraintEngine


def _random_non_default_flags(compiler, rng: random.Random):
    engine = ConstraintEngine(compiler.registry)
    names = compiler.registry.flag_names()
    density = rng.uniform(0.2, 0.8)
    bits = [1 if rng.random() < density else 0 for _ in names]
    flags = engine.sanitize_bits(bits)
    # Reject (rare) collisions with a default preset.
    presets = {frozenset(compiler.preset(level).enabled) for level in compiler.registry.presets}
    if frozenset(flags.enabled) in presets:
        flags = engine.repair(flags.with_flag(names[rng.randrange(len(names))]))
    return flags


def run_fig1_mirai_study(
    sample_count: int = 60,
    scanner_count: int = 40,
    seed: int = 2019,
) -> Dict[str, object]:
    """Reproduce Figure 1's two panels.

    (a) monthly counts of default vs non-default provenance among Mirai-style
        variants, as labelled by a BinComp classifier trained on reference
        compilations;
    (b) the anti-virus detection count distribution for the two groups.
    """
    rng = random.Random(seed)
    compiler = SimGCC()
    stream = mirai_variant_stream(sample_count, seed=seed)

    # Train the provenance classifier on reference compilations of the family.
    training = []
    for variant in range(3):
        source = malware_program("mirai", "x86-32", variant).source
        for level in ("O0", "O1", "O2", "O3", "Os"):
            image = compiler.compile_level(source, level, name=f"mirai-train-{variant}-{level}").image
            training.append((image, ProvenanceLabel("gcc", "default")))
        for draw in range(2):
            flags = _random_non_default_flags(compiler, rng)
            image = compiler.compile(source, flags, name=f"mirai-train-{variant}-nd{draw}").image
            training.append((image, ProvenanceLabel("gcc", "non-default")))
    classifier = BinComp()
    classifier.fit(training)

    # Train the AV fleet on default builds of the family (what vendors see first).
    fleet = build_scanner_fleet(total=scanner_count)
    references = [
        compiler.compile_level(malware_program("mirai", "x86-32", variant).source, "O2",
                               name=f"mirai-ref-{variant}").image
        for variant in range(3)
    ]
    fleet.train(references)

    monthly: Dict[int, Dict[str, int]] = {month: {"default": 0, "non-default": 0} for month in range(1, 13)}
    detection_default: List[int] = []
    detection_non_default: List[int] = []
    provenance_correct = 0

    for descriptor in stream:
        program = malware_program("mirai", descriptor["architecture"], descriptor["variant"])
        if descriptor["non_default"]:
            flags = _random_non_default_flags(compiler, rng)
            image = compiler.compile(program.source, flags, name=program.name).image
            truth = "non-default"
        else:
            level = rng.choice(["O0", "O1", "O2", "O3", "Os"])
            image = compiler.compile_level(program.source, level, name=program.name).image
            truth = "default"
        predicted = classifier.predict(image).setting
        if predicted == truth:
            provenance_correct += 1
        monthly[descriptor["month"]][predicted] += 1
        detections = fleet.scan(image)
        if truth == "non-default":
            detection_non_default.append(detections)
        else:
            detection_default.append(detections)

    def _mean(values: List[int]) -> float:
        return sum(values) / len(values) if values else 0.0

    total_non_default = sum(counts["non-default"] for counts in monthly.values())
    return {
        "monthly_provenance": monthly,
        "non_default_share": total_non_default / sample_count,
        "provenance_accuracy": provenance_correct / sample_count,
        "detections_default": sorted(detection_default),
        "detections_non_default": sorted(detection_non_default),
        "mean_detection_default": _mean(detection_default),
        "mean_detection_non_default": _mean(detection_non_default),
        "scanner_count": len(fleet),
    }
