"""Experiment drivers: one entry point per table/figure of the paper.

Every driver returns plain dictionaries/lists so that the benchmark harness
(`benchmarks/`), the examples and EXPERIMENTS.md can all print the same rows
the paper reports.  All drivers accept a ``quick`` knob: the full-paper
settings run hundreds of compilations per benchmark, which is hours of work
even on the simulated substrate, so the default configuration uses reduced
iteration budgets and benchmark subsets while preserving the comparisons'
*shape* (who wins, and by roughly how much).

| Paper artefact | Driver |
|----------------|--------|
| Figure 1(a)(b) | :func:`repro.experiments.mirai.run_fig1_mirai_study` |
| Figure 5(a)(b) | :func:`repro.experiments.scores.run_fig5_binhunt_scores` |
| Table 1        | :func:`repro.experiments.scores.run_table1_search_cost` |
| Figure 6       | :func:`repro.experiments.scores.run_fig6_ncd_variation` |
| Figure 7       | :func:`repro.experiments.potency.run_fig7_flag_potency` |
| Figure 8(a)(b) | :func:`repro.experiments.tools.run_fig8_tool_precision` |
| Table 2        | :func:`repro.experiments.malware_eval.run_table2_malware_detection` |
| Table 3        | :func:`repro.experiments.speedup.run_table3_speedup` |
| Tables 4/5     | :func:`repro.experiments.scores.run_table45_cross_comparison` |
| Figure 10      | :func:`repro.experiments.scores.run_fig10_ncd_binhunt_correlation` |
| Tables 7/8     | :func:`repro.experiments.scores.run_table78_matched_ratios` |
"""

from repro.experiments.mirai import run_fig1_mirai_study
from repro.experiments.scores import (
    run_fig5_binhunt_scores,
    run_table1_search_cost,
    run_fig6_ncd_variation,
    run_table45_cross_comparison,
    run_fig10_ncd_binhunt_correlation,
    run_table78_matched_ratios,
    tune_benchmark,
    tune_suite,
)
from repro.experiments.potency import run_fig7_flag_potency
from repro.experiments.tools import run_fig8_tool_precision
from repro.experiments.malware_eval import run_table2_malware_detection
from repro.experiments.speedup import (
    run_emulator_dispatch_bench,
    run_parallel_evaluation_speedup,
    run_pipeline_comparison,
    run_table3_speedup,
)

__all__ = [
    "run_fig1_mirai_study",
    "run_fig5_binhunt_scores",
    "run_table1_search_cost",
    "run_fig6_ncd_variation",
    "run_table45_cross_comparison",
    "run_fig10_ncd_binhunt_correlation",
    "run_table78_matched_ratios",
    "tune_benchmark",
    "tune_suite",
    "run_fig7_flag_potency",
    "run_fig8_tool_precision",
    "run_table2_malware_detection",
    "run_table3_speedup",
    "run_parallel_evaluation_speedup",
    "run_pipeline_comparison",
    "run_emulator_dispatch_bench",
]
