"""Experiments built around BinTuner runs and BinHunt scores.

Covers Figure 5 (BinHunt difference scores of -Ox vs BinTuner), Table 1
(search cost), Figure 6 (NCD variation over iterations), Tables 4/5 (cross
comparisons), Figure 10 (NCD vs BinHunt correlation) and Tables 7/8 (matched
code-representation ratios).

Multi-benchmark drivers (Fig. 5, Table 1, Tables 7/8) run on the campaign
layer via :func:`tune_suite` — one shared worker pool and one sharded
database per suite — instead of hand-written per-benchmark loops.  Campaign
warm starting stays off in the drivers to preserve the paper's independent
per-program methodology.  Single-benchmark drivers keep
:func:`tune_benchmark`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.campaign import Campaign, CampaignConfig, ProgramJob, ProgramResult
from repro.compilers import SimGCC, SimLLVM
from repro.compilers.base import Compiler
from repro.difftools import BinHunt, matched_ratios, ncd_images
from repro.tuner import BinTuner, BinTunerConfig, BuildSpec, GAParameters, TuningResult
from repro.workloads import benchmark, suite_benchmarks, SUITES

#: Benchmarks used when ``quick`` mode trims the corpus.
QUICK_BENCHMARKS = ["462.libquantum", "429.mcf", "445.gobmk", "coreutils", "openssl"]

#: Default levels compared against the O0 baseline, per compiler.
LEVELS = {"gcc": ["Os", "O1", "O2", "O3"], "llvm": ["O1", "O2", "O3"]}


def make_compiler(family: str) -> Compiler:
    return SimGCC() if family == "gcc" else SimLLVM()


def quick_config(max_iterations: int = 60) -> BinTunerConfig:
    """A reduced-budget configuration preserving the experiment shape."""
    return BinTunerConfig(
        max_iterations=max_iterations,
        ga=GAParameters(population_size=12, elite_count=2),
        stall_window=30,
    )


def tune_benchmark(
    family: str,
    name: str,
    config: Optional[BinTunerConfig] = None,
) -> TuningResult:
    """Run BinTuner on one benchmark with one compiler family."""
    workload = benchmark(name)
    compiler = make_compiler(family)
    spec = BuildSpec(
        name=workload.name,
        source=workload.source,
        arguments=workload.arguments,
        inputs=workload.inputs,
    )
    tuner = BinTuner(compiler, spec, config or quick_config())
    return tuner.run()


def tune_suite(
    family: str,
    names: Sequence[str],
    config: Optional[BinTunerConfig] = None,
    workers: int = 1,
    warm_start: bool = False,
) -> Dict[str, ProgramResult]:
    """Tune several benchmarks as one campaign (the suite-scale replacement
    for per-benchmark ``tune_benchmark`` loops): one shared worker pool and
    one sharded database.  Warm starting defaults *off* here — the paper
    tunes every program independently, and Table 1's search costs would be
    understated if benchmark N were seeded with benchmarks 1..N-1's bests —
    so cross-program seeding is an explicit opt-in.  Returns one
    :class:`ProgramResult` per benchmark name."""
    campaign = Campaign(
        [ProgramJob(family, name) for name in names],
        CampaignConfig(
            tuner=config or quick_config(),
            executor="process" if workers > 1 else "serial",
            workers=workers,
            warm_start=warm_start,
        ),
    )
    result = campaign.run()
    return {program.job.program: program for program in result.programs}


@dataclass
class BenchmarkScores:
    """One bar group of Figure 5."""

    benchmark: str
    family: str
    level_scores: Dict[str, float]
    bintuner_score: float
    bintuner_vs_o3: float
    iterations: int
    hours: float
    improvement_over_o3: float

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {"benchmark": self.benchmark, "compiler": self.family}
        row.update({f"{level} vs O0": round(score, 3) for level, score in self.level_scores.items()})
        row["BinTuner vs O0"] = round(self.bintuner_score, 3)
        row["BinTuner vs O3"] = round(self.bintuner_vs_o3, 3)
        row["improvement over O3"] = f"{self.improvement_over_o3:+.1%}"
        row["iterations"] = self.iterations
        return row


def run_fig5_binhunt_scores(
    family: str = "llvm",
    benchmarks: Optional[Sequence[str]] = None,
    config: Optional[BinTunerConfig] = None,
) -> List[BenchmarkScores]:
    """Figure 5: BinHunt difference scores under -Ox and BinTuner settings."""
    names = list(benchmarks) if benchmarks is not None else QUICK_BENCHMARKS
    binhunt = BinHunt()
    tuned_suite = tune_suite(family, names, config)
    results: List[BenchmarkScores] = []
    for name in names:
        compiler = make_compiler(family)
        workload = benchmark(name)
        images = {
            level: compiler.compile_level(workload.source, level, name=name).image
            for level in ["O0"] + LEVELS[family]
        }
        tuned = tuned_suite[name]
        level_scores = {
            level: binhunt.difference(images["O0"], images[level]) for level in LEVELS[family]
        }
        bintuner_score = binhunt.difference(images["O0"], tuned.best_image)
        o3_score = level_scores.get("O3", max(level_scores.values()))
        results.append(
            BenchmarkScores(
                benchmark=name,
                family=family,
                level_scores=level_scores,
                bintuner_score=bintuner_score,
                bintuner_vs_o3=binhunt.difference(images["O3"], tuned.best_image),
                iterations=tuned.iterations,
                hours=tuned.elapsed_seconds / 3600.0,
                improvement_over_o3=(bintuner_score - o3_score) / o3_score if o3_score else 0.0,
            )
        )
    return results


def run_table1_search_cost(
    families: Sequence[str] = ("llvm", "gcc"),
    benchmarks: Optional[Sequence[str]] = None,
    config: Optional[BinTunerConfig] = None,
) -> List[Dict[str, object]]:
    """Table 1: iteration counts and wall-clock hours per suite (min/max/median)."""
    names = list(benchmarks) if benchmarks is not None else QUICK_BENCHMARKS
    rows: List[Dict[str, object]] = []
    for family in families:
        tuned_suite = tune_suite(family, names, config)
        iterations = [tuned_suite[name].iterations for name in names]
        hours = [tuned_suite[name].elapsed_seconds / 3600.0 for name in names]
        rows.append(
            {
                "compiler": family,
                "benchmarks": len(names),
                "iterations (min, max, median)": (
                    int(np.min(iterations)),
                    int(np.max(iterations)),
                    int(np.median(iterations)),
                ),
                "hours (min, max, median)": (
                    round(float(np.min(hours)), 4),
                    round(float(np.max(hours)), 4),
                    round(float(np.median(hours)), 4),
                ),
            }
        )
    return rows


def run_fig6_ncd_variation(
    cases: Sequence[Tuple[str, str]] = (
        ("llvm", "462.libquantum"),
        ("llvm", "445.gobmk"),
        ("gcc", "coreutils"),
        ("gcc", "429.mcf"),
    ),
    config: Optional[BinTunerConfig] = None,
) -> Dict[str, Dict[str, object]]:
    """Figure 6: best-so-far NCD over BinTuner iterations, with -Ox reference lines."""
    out: Dict[str, Dict[str, object]] = {}
    for family, name in cases:
        compiler = make_compiler(family)
        workload = benchmark(name)
        result = tune_benchmark(family, name, config)
        o0 = compiler.compile_level(workload.source, "O0", name=name).image
        reference_lines = {
            level: ncd_images(o0, compiler.compile_level(workload.source, level, name=name).image)
            for level in LEVELS[family]
        }
        out[f"{family}:{name}"] = {
            "ncd_curve": result.ncd_history(),
            "reference": {level: round(value, 4) for level, value in reference_lines.items()},
            "final": round(result.best_fitness, 4),
            "iterations": result.iterations,
        }
    return out


def run_table45_cross_comparison(
    family: str = "llvm",
    name: str = "462.libquantum",
    config: Optional[BinTunerConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Tables 4/5: all-pairs BinHunt cross comparison among -Ox and BinTuner."""
    compiler = make_compiler(family)
    workload = benchmark(name)
    levels = ["O0"] + LEVELS[family]
    images = {
        level: compiler.compile_level(workload.source, level, name=name).image for level in levels
    }
    images["BinTuner"] = tune_benchmark(family, name, config).best_image
    binhunt = BinHunt()
    matrix: Dict[str, Dict[str, float]] = {}
    for left in images:
        matrix[left] = {}
        for right in images:
            if left == right:
                continue
            matrix[left][right] = round(binhunt.difference(images[left], images[right]), 3)
        matrix[left]["Sum"] = round(sum(matrix[left].values()), 3)
    return matrix


def run_fig10_ncd_binhunt_correlation(
    cases: Sequence[Tuple[str, str]] = (("llvm", "462.libquantum"), ("gcc", "429.mcf")),
    samples: int = 24,
) -> Dict[str, float]:
    """Figure 10: Pearson correlation between NCD and BinHunt difference scores.

    Random valid flag vectors are compiled; both metrics are computed against
    the O0 baseline and correlated.
    """
    import random as _random

    from repro.tuner.constraints import ConstraintEngine

    out: Dict[str, float] = {}
    binhunt = BinHunt()
    for family, name in cases:
        compiler = make_compiler(family)
        workload = benchmark(name)
        baseline = compiler.compile_level(workload.source, "O0", name=name).image
        engine = ConstraintEngine(compiler.registry)
        rng = _random.Random(3 + hash(name) % 1000)
        ncd_values: List[float] = []
        binhunt_values: List[float] = []
        flag_names = compiler.registry.flag_names()
        for _ in range(samples):
            density = rng.uniform(0.15, 0.85)
            bits = [1 if rng.random() < density else 0 for _ in flag_names]
            flags = engine.sanitize_bits(bits)
            image = compiler.compile(workload.source, flags, name=name).image
            ncd_values.append(ncd_images(baseline, image))
            binhunt_values.append(binhunt.difference(baseline, image))
        if np.std(ncd_values) == 0 or np.std(binhunt_values) == 0:
            correlation = 0.0
        else:
            correlation = float(np.corrcoef(ncd_values, binhunt_values)[0, 1])
        out[f"{family}:{name}"] = round(correlation, 3)
    return out


def run_table78_matched_ratios(
    family: str = "llvm",
    benchmarks: Optional[Sequence[str]] = None,
    config: Optional[BinTunerConfig] = None,
) -> List[Dict[str, object]]:
    """Tables 7/8: matched basic-block / CFG-edge / function ratios per setting."""
    names = list(benchmarks) if benchmarks is not None else QUICK_BENCHMARKS[:3]
    binhunt = BinHunt()
    tuned_suite = tune_suite(family, names, config)
    rows: List[Dict[str, object]] = []
    for name in names:
        compiler = make_compiler(family)
        workload = benchmark(name)
        o0 = compiler.compile_level(workload.source, "O0", name=name).image
        row: Dict[str, object] = {"benchmark": name, "compiler": family}
        settings: Dict[str, object] = {
            level: compiler.compile_level(workload.source, level, name=name).image
            for level in LEVELS[family]
        }
        settings["BinTuner"] = tuned_suite[name].best_image
        for setting, image in settings.items():
            ratios = matched_ratios(binhunt.compare(o0, image))
            row[f"{setting} vs O0"] = ratios.as_tuple_text()
            row[f"{setting} vs O0 (block ratio)"] = round(ratios.block_ratio, 3)
        rows.append(row)
    return rows
