"""Figure 7: per-flag potency of BinTuner's best sequences."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.scores import make_compiler, tune_benchmark
from repro.tuner import BinTunerConfig, flag_potency
from repro.workloads import benchmark


def run_fig7_flag_potency(
    cases: Sequence[Tuple[str, str]] = (
        ("llvm", "462.libquantum"),
        ("gcc", "coreutils"),
    ),
    top: int = 10,
    config: Optional[BinTunerConfig] = None,
    max_flags: Optional[int] = 24,
) -> Dict[str, Dict[str, object]]:
    """Top-N most potent flags of the tuned sequence plus Jaccard(O3, BinTuner).

    ``max_flags`` bounds the number of leave-one-out recompilations per case
    (the full measurement compiles once per enabled flag).
    """
    out: Dict[str, Dict[str, object]] = {}
    for family, name in cases:
        compiler = make_compiler(family)
        workload = benchmark(name)
        tuned = tune_benchmark(family, name, config)
        potency = flag_potency(
            compiler,
            workload.source,
            tuned.best_flags,
            program_name=name,
            max_flags=max_flags,
        )
        out[f"{family}:{name}"] = {
            "top_flags": [(flag, round(share, 4)) for flag, share in potency.top(top)],
            "other_share": round(potency.other_share(top), 4),
            "jaccard_o3": round(potency.jaccard_with_o3, 3),
            "base_binhunt_score": round(potency.base_score, 3),
            "flag_count": len(tuned.best_flags),
        }
    return out
