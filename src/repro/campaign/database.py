"""The campaign database: per-program shards under one store.

The per-program :class:`~repro.tuner.database.TuningDatabase` stays the unit
of dedup — a flag key compiled for one program must never satisfy a lookup
for another, since the same flags produce different binaries per source —
but a campaign needs one store that owns all shards: it is what gets
checkpointed, resumed and aggregated.  The aggregations are the raw material
of the paper's cross-program artefacts: per-flag potency across best
configurations (Fig. 7) and best-config overlap between programs
(Tables 7/8's "how similar are tuned sequences" question).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.tuner.database import SIGNATURE_FIELDS, TuningDatabase, write_text_atomic

#: Shard key: (compiler family, program name).
ShardKey = Tuple[str, str]


def _shard_filename(key: ShardKey) -> str:
    family, program = key
    return f"{family}__{program}.json"


@dataclass
class CampaignDatabase:
    """All tuning databases of one campaign, sharded by (family, program)."""

    name: str = "campaign"
    shards: Dict[ShardKey, TuningDatabase] = field(default_factory=dict)

    # -- shard access -----------------------------------------------------------------

    def shard(self, family: str, program: str) -> TuningDatabase:
        """The (created-on-demand) tuning database of one program."""
        key = (family, program)
        if key not in self.shards:
            self.shards[key] = TuningDatabase(program=program, compiler=family)
        return self.shards[key]

    def shard_keys(self) -> List[ShardKey]:
        return sorted(self.shards)

    def __len__(self) -> int:
        return len(self.shards)

    def total_records(self) -> int:
        return sum(len(shard) for shard in self.shards.values())

    # -- cross-program aggregation ----------------------------------------------------

    def best_configs(self, family: Optional[str] = None) -> Dict[ShardKey, Tuple[str, ...]]:
        """Best flag tuple per shard (shards with no valid best are skipped)."""
        out: Dict[ShardKey, Tuple[str, ...]] = {}
        for key in self.shard_keys():
            if family is not None and key[0] != family:
                continue
            best = self.shards[key].best()
            if best is not None:
                out[key] = best.flag_key()
        return out

    def flag_frequency(self, family: Optional[str] = None) -> Dict[str, float]:
        """Share of programs whose *best* configuration enables each flag.

        This is the campaign-level potency signal: a flag enabled by the
        winning sequence of most programs is potent suite-wide, not just on
        one workload (Fig. 7's aggregation across benchmarks).
        """
        bests = self.best_configs(family)
        if not bests:
            return {}
        counts: Dict[str, int] = {}
        for flags in bests.values():
            for flag in flags:
                counts[flag] = counts.get(flag, 0) + 1
        return {flag: counts[flag] / len(bests) for flag in sorted(counts)}

    def best_overlap(self, family: Optional[str] = None) -> Dict[ShardKey, Dict[ShardKey, float]]:
        """Pairwise Jaccard index between programs' best flag sets."""
        bests = self.best_configs(family)
        matrix: Dict[ShardKey, Dict[ShardKey, float]] = {}
        for left, left_flags in bests.items():
            matrix[left] = {}
            for right, right_flags in bests.items():
                if left == right:
                    continue
                union = set(left_flags) | set(right_flags)
                inter = set(left_flags) & set(right_flags)
                matrix[left][right] = len(inter) / len(union) if union else 1.0
        return matrix

    def summary_rows(self) -> List[Dict[str, object]]:
        """One row per shard: the campaign CLI / experiment report table."""
        rows: List[Dict[str, object]] = []
        for family, program in self.shard_keys():
            shard = self.shards[(family, program)]
            best = shard.best()
            rows.append(
                {
                    "compiler": family,
                    "benchmark": program,
                    "iterations": len(shard),
                    "best_fitness": round(best.fitness, 4) if best else None,
                    "best_flag_count": len(best.flags) if best else 0,
                    "hours": round(shard.elapsed_hours(), 4),
                }
            )
        return rows

    # -- identity ---------------------------------------------------------------------

    def record_signatures(self) -> Dict[ShardKey, List[Tuple]]:
        """Per-shard record tuples over :data:`SIGNATURE_FIELDS`, in order."""
        return {key: self.shards[key].record_signatures() for key in self.shard_keys()}

    def fingerprint(self) -> str:
        """SHA-256 over every shard's ordered record signatures.

        Two campaigns with the same fingerprint evaluated the same candidates
        in the same order with the same outcomes — the resume-equivalence
        contract (timing fields excluded, see :data:`SIGNATURE_FIELDS`).
        """
        signatures = self.record_signatures()
        payload = json.dumps(
            [[key, signatures[key]] for key in self.shard_keys()],
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- persistence ------------------------------------------------------------------

    def _write_index(self, directory: Path) -> None:
        index = {
            "name": self.name,
            "shards": [
                {"compiler": family, "program": program,
                 "file": _shard_filename((family, program))}
                for family, program in self.shard_keys()
            ],
        }
        write_text_atomic(directory / "index.json", json.dumps(index, indent=2))

    def save(self, directory: Path) -> None:
        """Write one JSON file per shard plus an index under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for key in self.shard_keys():
            self.shards[key].save(directory / _shard_filename(key))
        self._write_index(directory)

    def save_shard(self, family: str, program: str, directory: Path) -> None:
        """Write a single shard (the per-generation checkpoint hot path).

        The index is refreshed too, so a campaign killed mid-program leaves a
        checkpoint that :meth:`load` accepts — the in-progress shard included.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        key = (family, program)
        self.shard(family, program).save(directory / _shard_filename(key))
        self._write_index(directory)

    @classmethod
    def load(cls, directory: Path) -> "CampaignDatabase":
        directory = Path(directory)
        index = json.loads((directory / "index.json").read_text())
        database = cls(name=index.get("name", "campaign"))
        for entry in index["shards"]:
            shard = TuningDatabase.load(directory / entry["file"])
            database.shards[(entry["compiler"], entry["program"])] = shard
        return database
