"""A worker pool shared by every program of a campaign.

PR 1's :class:`~repro.tuner.evaluation.ProcessPoolMapper` installs one
evaluator per pool at initializer time, which ties a pool to a single program.
A campaign tunes many programs, and spawning (and tearing down) a fresh
execution substrate per program would dominate the wall clock on short
searches — exactly the cost the shared pool amortizes.  One substrate
outlives all programs; ``dispatch`` picks which:

* ``"serial"`` — the deterministic in-process path (plain
  :class:`~repro.tuner.evaluation.SerialMapper` per program);
* ``"process"`` — one ``ProcessPoolExecutor`` for the whole campaign; each
  task carries the *identity* of its evaluator plus a pickle blob that
  workers deserialize once and cache (bounded, see
  :data:`~repro.tuner.evaluation.EVALUATOR_CACHE_LIMIT`);
* ``"thread"`` — one ``ThreadPoolExecutor``; threads share the process, so
  evaluators are called directly (free-threaded-build lane);
* ``"distributed"`` — one :class:`~repro.distrib.coordinator.Coordinator`
  listening on ``serve`` (``HOST:PORT``); workers started with
  ``python -m repro.distrib.worker --connect HOST:PORT`` — on this machine
  or any other — evaluate the campaign's candidates.

Determinism: every mapper returns results in submission order regardless of
completion order (``Executor.map`` for the local pools, index-slotted
replies for the distributed one), so the evaluation engine's bit-for-bit
reproducibility guarantee carries over unchanged to every mode.

Persistence: a staged evaluator's ``store_dir`` travels inside the pickle
blob, and its ``__setstate__`` re-attaches the disk-backed artifact store
(:mod:`repro.tuner.store`) on the worker side — so every process worker of
a campaign opens the same store, and a freshly spawned worker consults the
campaign's persisted compiles before paying for its own.
"""

from __future__ import annotations

import functools
import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.tuner.evaluation import (
    EVALUATOR_CACHE_LIMIT,
    CandidateEvaluator,
    CandidateResult,
    FlagKey,
    SerialMapper,
    evaluate_keys,
    map_pipelined,
    next_evaluator_id,
)

#: Worker-process global: evaluator id -> deserialized evaluator.  Ids come
#: from the process-wide monotonic counter
#: (:func:`~repro.tuner.evaluation.next_evaluator_id`), so they can never
#: alias.  The cache is bounded: campaign jobs run sequentially, so
#: evaluators of long-finished programs (each holding a source + baseline
#: image) would otherwise pile up in every worker for the campaign's life.
_POOL_EVALUATORS: Dict[int, CandidateEvaluator] = {}
_POOL_CACHE_LIMIT = EVALUATOR_CACHE_LIMIT


def _pool_evaluator(evaluator_id: int, blob: bytes) -> CandidateEvaluator:
    evaluator = _POOL_EVALUATORS.get(evaluator_id)
    if evaluator is None:
        evaluator = pickle.loads(blob)
        while len(_POOL_EVALUATORS) >= _POOL_CACHE_LIMIT:
            _POOL_EVALUATORS.pop(next(iter(_POOL_EVALUATORS)))
        _POOL_EVALUATORS[evaluator_id] = evaluator
    return evaluator


def _pool_call(task) -> CandidateResult:
    evaluator_id, blob, key = task
    return _pool_evaluator(evaluator_id, blob)(key)


def _pool_call_batch(evaluator_id: int, blob: bytes,
                     keys: Sequence[FlagKey]) -> List[CandidateResult]:
    """One task = one contiguous key chunk: a staged evaluator overlaps its
    compile lane with emulation across the chunk inside the worker process.
    Dispatched as ``functools.partial(_pool_call_batch, id, blob)`` so the
    chunk is the :func:`~repro.tuner.evaluation.map_pipelined` call shape."""
    return evaluate_keys(_pool_evaluator(evaluator_id, blob), list(keys))


class PooledMapper:
    """Mapper facade over a :class:`SharedWorkerPool` for one evaluator.

    ``close`` is deliberately a no-op: the pool belongs to the campaign and
    outlives the program, so the per-run ``engine.close()`` in
    :meth:`BinTuner.run` must not tear it down.
    """

    def __init__(self, pool: "SharedWorkerPool", evaluator_id: int,
                 evaluator: CandidateEvaluator) -> None:
        self._pool = pool
        self.evaluator_id = evaluator_id
        #: Pipeline-aware evaluators get per-worker chunks (in-worker compile
        #: overlap); monolithic ones keep key-granular dynamic balancing.
        self._pipelined = getattr(evaluator, "evaluate_batch", None) is not None
        # Pickled once per program; tasks ship the same bytes object, and
        # workers deserialize it at most once each.
        self._blob = pickle.dumps(evaluator)

    @property
    def workers(self) -> int:
        return self._pool.workers

    def map(self, keys: Sequence[FlagKey]) -> List[CandidateResult]:
        if not keys:
            return []
        executor = self._pool._ensure_executor()
        if not self._pipelined:
            tasks = [(self.evaluator_id, self._blob, key) for key in keys]
            return list(executor.map(_pool_call, tasks))
        return map_pipelined(
            executor,
            functools.partial(_pool_call_batch, self.evaluator_id, self._blob),
            keys,
            self._pool.workers,
        )

    def close(self) -> None:
        pass


class PooledThreadMapper:
    """Thread-lane sibling of :class:`PooledMapper`: the threads share the
    process, so the evaluator is called directly — no id, no pickle blob."""

    evaluator_id: Optional[int] = None

    def __init__(self, pool: "SharedWorkerPool", evaluator: CandidateEvaluator) -> None:
        self._pool = pool
        self._evaluator = evaluator

    @property
    def workers(self) -> int:
        return self._pool.workers

    def map(self, keys: Sequence[FlagKey]) -> List[CandidateResult]:
        if not keys:
            return []
        executor = self._pool._ensure_executor()
        if getattr(self._evaluator, "evaluate_batch", None) is not None:
            return map_pipelined(
                executor,
                functools.partial(evaluate_keys, self._evaluator),
                keys,
                self._pool.workers,
            )
        return list(executor.map(self._evaluator, keys))

    def close(self) -> None:
        pass


class SharedWorkerPool:
    """One execution substrate (or the serial path) spanning a whole campaign."""

    DISPATCH_MODES = ("serial", "process", "thread", "distributed")

    def __init__(
        self,
        executor: str = "serial",
        workers: int = 1,
        dispatch: Optional[str] = None,
        serve: Optional[str] = None,
        coordinator=None,
        authkey=None,
        mesh_store=None,
        mesh_budget_bytes: Optional[int] = None,
        obs_port: Optional[int] = None,
        obs_host: str = "127.0.0.1",
    ) -> None:
        mode = dispatch if dispatch is not None else executor
        if mode not in self.DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch {mode!r} (use one of {', '.join(self.DISPATCH_MODES)})"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if mode == "serial" and workers > 1:
            mode = "process"
        self.dispatch = mode
        #: Backward-compatible alias of :attr:`dispatch` (pre-distributed
        #: callers read ``pool.executor``).
        self.executor = mode
        self.workers = 1 if mode == "serial" else workers
        self._pool = None
        self._coordinator = coordinator
        self._own_coordinator = False
        if mode != "distributed" and mesh_store is not None:
            raise ValueError(
                f"the artifact mesh requires distributed dispatch, not {mode!r}"
            )
        if mode == "distributed" and self._coordinator is None:
            from repro.distrib.coordinator import Coordinator
            from repro.distrib.protocol import parse_address

            host, port = parse_address(serve) if serve else ("127.0.0.1", 0)
            # ``mesh_store`` (an ArtifactStore or a directory path) turns on
            # the coordinator's artifact plane: workers push fresh tier-2
            # entries here and fetch their misses from each other's work.
            # ``obs_port`` mounts the live /metrics + /status server on the
            # coordinator: its fleet-health view is pre-registered there.
            self._coordinator = Coordinator(
                host=host, port=port, authkey=authkey,
                artifact_store=mesh_store, mesh_budget_bytes=mesh_budget_bytes,
                obs_port=obs_port, obs_host=obs_host,
            )
            self._own_coordinator = True

    # -- distributed front ------------------------------------------------------------

    @property
    def coordinator(self):
        """The distributed coordinator (``None`` for local dispatch modes)."""
        return self._coordinator

    def address_string(self) -> str:
        if self._coordinator is None:
            raise ValueError(f"pool dispatch {self.dispatch!r} has no network address")
        return self._coordinator.address_string()

    def wait_for_workers(self, count: int, timeout: Optional[float] = None) -> int:
        """Block until ``count`` remote workers registered (distributed only)."""
        if self._coordinator is None:
            raise ValueError(f"pool dispatch {self.dispatch!r} has no remote workers")
        return self._coordinator.wait_for_workers(count, timeout)

    def mesh_stats(self) -> Optional[Dict[str, object]]:
        """The coordinator's artifact-plane counters, or ``None`` when this
        pool serves no mesh.  Capture before :meth:`close` — closing an
        owned coordinator drops it."""
        if self._coordinator is None:
            return None
        stats = getattr(self._coordinator, "mesh_stats", None)
        return stats() if stats is not None else None

    def fleet_telemetry(self) -> Optional[List[Dict[str, object]]]:
        """Latest per-worker telemetry rows, or ``None`` when this pool has
        no coordinator.  Capture before :meth:`close`, like
        :meth:`mesh_stats`."""
        if self._coordinator is None:
            return None
        fleet = getattr(self._coordinator, "fleet_telemetry", None)
        return fleet() if fleet is not None else None

    def fleet_status(self) -> Optional[List[Dict[str, object]]]:
        """Per-worker fleet rows with live health states, or ``None`` when
        this pool has no coordinator.  Capture before :meth:`close`."""
        if self._coordinator is None:
            return None
        status = getattr(self._coordinator, "fleet_status", None)
        return status() if status is not None else None

    @property
    def obs_server(self):
        """The coordinator's observability server (``None`` without one)."""
        if self._coordinator is None:
            return None
        return getattr(self._coordinator, "obs_server", None)

    # -- mapper construction ----------------------------------------------------------

    def _ensure_executor(self):
        if self._pool is None:
            if self.dispatch == "thread":
                from concurrent.futures import ThreadPoolExecutor

                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers, thread_name_prefix="campaign-pool"
                )
            else:
                from concurrent.futures import ProcessPoolExecutor

                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def mapper(self, evaluator: CandidateEvaluator):
        """A per-program mapper backed by this pool (serial: plain mapper)."""
        if self.dispatch == "serial":
            return SerialMapper(evaluator)
        if self.dispatch == "thread":
            return PooledThreadMapper(self, evaluator)
        if self.dispatch == "distributed":
            from repro.distrib.mapper import DistributedMapper

            # The pool owns the coordinator; the mapper's close is a no-op.
            return DistributedMapper(self._coordinator, evaluator)
        return PooledMapper(self, next_evaluator_id(), evaluator)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._own_coordinator and self._coordinator is not None:
            self._coordinator.close()
            self._coordinator = None

    def __enter__(self) -> "SharedWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
