"""A worker pool shared by every program of a campaign.

PR 1's :class:`~repro.tuner.evaluation.ProcessPoolMapper` installs one
evaluator per pool at initializer time, which ties a pool to a single program.
A campaign tunes many programs, and spawning (and tearing down) a fresh
process pool per program would dominate the wall clock on short searches —
exactly the cost the shared pool amortizes: one ``ProcessPoolExecutor``
outlives all programs, and each task carries the *identity* of its evaluator
plus a pickle blob that workers deserialize once and cache.

Determinism: ``map`` goes through ``Executor.map``, which yields results in
submission order regardless of completion order, so the evaluation engine's
bit-for-bit reproducibility guarantee carries over unchanged.
"""

from __future__ import annotations

import pickle
from typing import Dict, List, Sequence, Tuple

from repro.tuner.evaluation import (
    CandidateEvaluator,
    CandidateResult,
    FlagKey,
    SerialMapper,
)

#: Worker-process global: evaluator id -> deserialized evaluator.  Ids come
#: from a monotonic parent-process counter, so they can never alias.  The
#: cache is bounded: campaign jobs run sequentially, so evaluators of
#: long-finished programs (each holding a source + baseline image) would
#: otherwise pile up in every worker for the life of the campaign.
_POOL_EVALUATORS: Dict[int, CandidateEvaluator] = {}
_POOL_CACHE_LIMIT = 4

#: Parent-process counter behind :meth:`SharedWorkerPool.mapper` ids.
_NEXT_EVALUATOR_ID = 0


def _pool_call(task) -> CandidateResult:
    evaluator_id, blob, key = task
    evaluator = _POOL_EVALUATORS.get(evaluator_id)
    if evaluator is None:
        evaluator = pickle.loads(blob)
        while len(_POOL_EVALUATORS) >= _POOL_CACHE_LIMIT:
            _POOL_EVALUATORS.pop(next(iter(_POOL_EVALUATORS)))
        _POOL_EVALUATORS[evaluator_id] = evaluator
    return evaluator(key)


class PooledMapper:
    """Mapper facade over a :class:`SharedWorkerPool` for one evaluator.

    ``close`` is deliberately a no-op: the pool belongs to the campaign and
    outlives the program, so the per-run ``engine.close()`` in
    :meth:`BinTuner.run` must not tear it down.
    """

    def __init__(self, pool: "SharedWorkerPool", evaluator_id: int,
                 evaluator: CandidateEvaluator) -> None:
        self._pool = pool
        self._evaluator_id = evaluator_id
        # Pickled once per program; tasks ship the same bytes object, and
        # workers deserialize it at most once each.
        self._blob = pickle.dumps(evaluator)

    @property
    def workers(self) -> int:
        return self._pool.workers

    def map(self, keys: Sequence[FlagKey]) -> List[CandidateResult]:
        if not keys:
            return []
        executor = self._pool._ensure_executor()
        tasks = [(self._evaluator_id, self._blob, key) for key in keys]
        return list(executor.map(_pool_call, tasks))

    def close(self) -> None:
        pass


class SharedWorkerPool:
    """One process pool (or the serial path) spanning a whole campaign."""

    def __init__(self, executor: str = "serial", workers: int = 1) -> None:
        if executor not in ("serial", "process"):
            raise ValueError(f"unknown executor {executor!r} (use 'serial' or 'process')")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.executor = "process" if (executor == "process" or workers > 1) else "serial"
        self.workers = workers if self.executor == "process" else 1
        self._pool = None

    def _ensure_executor(self):
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def mapper(self, evaluator: CandidateEvaluator):
        """A per-program mapper backed by this pool (serial: plain mapper)."""
        if self.executor == "serial":
            return SerialMapper(evaluator)
        global _NEXT_EVALUATOR_ID
        _NEXT_EVALUATOR_ID += 1
        return PooledMapper(self, _NEXT_EVALUATOR_ID, evaluator)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "SharedWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
